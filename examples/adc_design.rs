// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Data-converter design example: the paper's 4-bit flash ADC (Table 5 /
//! Figure 3e) converting a ramp through the full transistor-level netlist,
//! plus the R-2R DAC driving a staircase.
//!
//! Run with `cargo run --release --example adc_design`.

use ape_repro::ape::module::{FlashAdc, R2rDac};
use ape_repro::netlist::Technology;
use ape_repro::spice::{dc_operating_point, measure, transient, TranOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = ape_repro::probe::install_from_env();
    let tech = Technology::default_1p2um();

    // --- 4-bit flash ADC ----------------------------------------------------
    let adc = FlashAdc::design(&tech, 4, 5e-6)?;
    println!("=== 4-bit flash ADC, 5 us conversion budget ===");
    println!(
        "comparators: {}, estimated delay {:.2} us, power {:.3} mW, area {:.0} um2",
        adc.comparator_count(),
        adc.perf.delay_s.unwrap_or(0.0) * 1e6,
        adc.perf.power_mw(),
        adc.perf.gate_area_um2()
    );

    println!("\n  vin [V]  code (sim)  code (ideal)");
    for k in 0..8 {
        let vin = 1.1 + 0.4 * k as f64;
        let code = adc.convert(&tech, vin)?;
        println!(
            "  {:>6.2}   {:>4}        {:>4}",
            vin,
            code,
            adc.ideal_code(vin)
        );
    }

    // Comparator step response (the delay the paper tabulates).
    let tb = adc.comparator.testbench_step(&tech, 1e-6)?;
    let op = dc_operating_point(&tb, &tech)?;
    let tr = transient(&tb, &tech, &op, TranOptions::new(5e-8, 16e-6))?;
    let out = tb.find_node("out").expect("testbench has out");
    let t_cross = measure::crossing_time(&tr, out, tech.vdd / 2.0, true).expect("comparator trips");
    println!(
        "\ncomparator simulated delay at half-LSB overdrive: {:.2} us (estimate {:.2} us)",
        (t_cross - 1e-6) * 1e6,
        adc.comparator.perf.delay_s.unwrap_or(0.0) * 1e6
    );

    // --- 4-bit R-2R DAC -------------------------------------------------------
    let dac = R2rDac::design(&tech, 4, 1e5)?;
    println!("\n=== 4-bit R-2R DAC ===");
    println!("  code  vout (sim)  vout (ideal)");
    for code in [0u32, 3, 7, 11, 15] {
        let v = dac.level(&tech, code)?;
        println!("  {:>4}  {:>9.3}  {:>11.3}", code, v, dac.ideal_level(code));
    }
    ape_repro::probe::finish();
    Ok(())
}
