// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Quickstart: the full VASE-style flow of Figure 1 on one op-amp.
//!
//! 1. specify requirements;
//! 2. APE sizes the circuit and estimates its performance (Figure 2
//!    hierarchy, bottom-up);
//! 3. the simulator verifies the emitted netlist;
//! 4. the synthesis engine refines the sizing inside ±20 % intervals.
//!
//! Run with `cargo run --release --example quickstart`.

use ape_repro::ape::basic::MirrorTopology;
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::Technology;
use ape_repro::oblx::{design_point_from_ape, synthesize, InitialPoint, SynthesisOptions};
use ape_repro::spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = ape_repro::probe::install_from_env();
    println!("=== APE hierarchy (paper Figure 2) ===");
    println!("level 4: analog modules      (amplifiers, filters, S&H, ADC, DAC)");
    println!("level 3: operational amps    (Miller two-stage, Wilson/simple bias, buffer)");
    println!("level 2: basic components    (mirrors, gain stages, followers, diff pairs)");
    println!("level 1: CMOS transistors    (Level 1/2/3/BSIM models + inverse sizing)");
    println!();

    // 1. The requirement set — one row of the paper's Table 1.
    let tech = Technology::default_1p2um();
    let spec = OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    };
    println!("=== Specification ===");
    println!(
        "gain >= {}, UGF >= {} MHz, area <= {} um2, Ibias = {} uA, CL = 10 pF",
        spec.gain,
        spec.ugf_hz * 1e-6,
        spec.area_max_m2 * 1e12,
        spec.ibias * 1e6
    );

    // 2. APE sizes and estimates — microseconds of work.
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
    let t0 = std::time::Instant::now();
    let amp = OpAmp::design(&tech, topo, spec)?;
    println!(
        "\n=== APE estimate ({:.1} us) ===",
        t0.elapsed().as_secs_f64() * 1e6
    );
    println!("{}", amp.perf);
    println!(
        "devices: pair W/L = {:.1}/{:.1} um, M6 W/L = {:.1}/{:.1} um, Cc = {:.2} pF",
        amp.stage1.input.geometry.w * 1e6,
        amp.stage1.input.geometry.l * 1e6,
        amp.m6.geometry.w * 1e6,
        amp.m6.geometry.l * 1e6,
        amp.cc * 1e12
    );

    // 3. Verify with the simulator (the paper's SPICE step).
    let tb = amp.testbench_open_loop(&tech)?;
    let op = dc_operating_point(&tb, &tech)?;
    let out = tb.find_node("out").expect("testbench has out");
    let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(100.0, 1e9, 8)?)?;
    println!("\n=== Simulation of the emitted netlist ===");
    println!(
        "gain = {:.0}, UGF = {:.2} MHz, PM = {:.0} deg, power = {:.3} mW",
        measure::dc_gain(&sweep, out).unwrap(),
        measure::unity_gain_frequency(&sweep, out)? * 1e-6,
        measure::phase_margin(&sweep, out)?,
        op.supply_power(&tb) * 1e3
    );

    // 4. Seeded synthesis: the Table 4 flow.
    let init = InitialPoint::ApeSeeded {
        point: design_point_from_ape(&tech, &amp),
        interval_frac: 0.2,
    };
    let opts = SynthesisOptions {
        max_evals: 200,
        seed: 7,
        ..SynthesisOptions::default()
    };
    let outcome = synthesize(&tech, topo, &spec, &init, &opts)?;
    println!("\n=== APE-seeded synthesis (+/-20% intervals) ===");
    println!(
        "evals = {}, wall = {:.2} s, meets spec = {}",
        outcome.evals,
        outcome.wall.as_secs_f64(),
        outcome.meets_spec()
    );
    if let Ok(audit) = &outcome.audit {
        println!(
            "audited: gain = {:.0}, UGF = {:.2} MHz, area = {:.0} um2",
            audit.measured.dc_gain.unwrap_or(0.0),
            audit.measured.ugf_hz.unwrap_or(0.0) * 1e-6,
            audit.measured.gate_area_um2()
        );
    }

    // The estimation graph — the paper's reusable "sized transistor
    // objects", memoized per node — accumulated across everything above.
    println!("\n=== {} ===", ape_repro::ape::graph::graph_report());

    // Bonus: the SPICE deck the flow hands to layout (--netlist to print).
    if std::env::args().any(|a| a == "--netlist") {
        println!("\n=== SPICE deck ===\n{}", tb.to_spice_deck(&tech));
    }
    ape_repro::probe::finish();
    Ok(())
}
