// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Active-filter design example: the paper's 4th-order Sallen-Key
//! Butterworth low-pass and 2nd-order band-pass (Table 5 / Figure 3c-3d),
//! with a small Bode table from the transistor-level simulation.
//!
//! Run with `cargo run --release --example filter_design`.

use ape_repro::ape::module::{SallenKeyBandPass, SallenKeyLowPass};
use ape_repro::netlist::Technology;
use ape_repro::spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = ape_repro::probe::install_from_env();
    let tech = Technology::default_1p2um();

    // --- 4th-order Butterworth low-pass at 1 kHz ---------------------------
    let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12)?;
    println!("=== Sallen-Key LPF: order 4, Butterworth, fc = 1 kHz ===");
    for (i, st) in lpf.stages.iter().enumerate() {
        println!(
            "stage {}: Q = {:.4}, K = {:.3}, R = {:.0} kohm, C = {:.2} nF",
            i,
            st.q,
            st.k,
            st.r * 1e-3,
            st.c * 1e9
        );
    }
    println!(
        "APE estimate: passband gain {:.2}, f3dB {:.0} Hz, f-20dB {:.0} Hz, area {:.0} um2",
        lpf.perf.dc_gain.unwrap_or(0.0),
        lpf.perf.bw_hz.unwrap_or(0.0),
        lpf.frequency_at_attenuation(20.0),
        lpf.perf.gate_area_um2()
    );

    let tb = lpf.testbench(&tech)?;
    let op = dc_operating_point(&tb, &tech)?;
    let out = tb.find_node("out").expect("testbench has out");
    let freqs = [100.0, 300.0, 700.0, 1e3, 1.5e3, 2e3, 5e3, 10e3];
    let sweep = ac_sweep(&tb, &tech, &op, &freqs)?;
    println!("\n  f [Hz]   |H| [dB]   (transistor-level simulation)");
    let a0 = sweep.magnitude(out)[0];
    for (k, f) in freqs.iter().enumerate() {
        let m = sweep.voltage(k, out).norm();
        println!("  {:>7.0}  {:>8.2}", f, 20.0 * (m / a0).log10());
    }
    let full = ac_sweep(&tb, &tech, &op, &decade_frequencies(10.0, 1e5, 20)?)?;
    println!(
        "simulated: gain {:.2}, f3dB {:.0} Hz",
        measure::dc_gain(&full, out).unwrap(),
        measure::bandwidth_3db(&full, out)?
    );

    // --- 2nd-order band-pass at 1 kHz, Q = 1 -------------------------------
    let bpf = SallenKeyBandPass::design(&tech, 1e3, 1.0, 10e-12)?;
    println!("\n=== Sallen-Key BPF: f0 = 1 kHz, Q = 1 ===");
    println!(
        "K = {:.3}, R = {:.0} kohm, C = {:.2} nF; APE estimate: centre gain {:.2}, BW {:.0} Hz",
        bpf.k,
        bpf.r * 1e-3,
        bpf.c * 1e9,
        bpf.perf.dc_gain.unwrap_or(0.0),
        bpf.perf.bw_hz.unwrap_or(0.0)
    );
    let tb = bpf.testbench(&tech)?;
    let op = dc_operating_point(&tb, &tech)?;
    let out = tb.find_node("out").expect("testbench has out");
    let freqs = [200.0, 500.0, 1e3, 2e3, 5e3];
    let sweep = ac_sweep(&tb, &tech, &op, &freqs)?;
    println!("\n  f [Hz]   |H|   (transistor-level simulation)");
    for (k, f) in freqs.iter().enumerate() {
        println!("  {:>7.0}  {:>6.3}", f, sweep.voltage(k, out).norm());
    }
    ape_repro::probe::finish();
    Ok(())
}
