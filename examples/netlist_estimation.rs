// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! The paper's §6 extensions in action:
//!
//! 1. performance estimation for a *user-level netlist* — a hand-written
//!    SPICE deck estimated without any frequency sweep, cross-checked
//!    against the full simulator;
//! 2. a new level-3 topology (folded-cascode OTA) built from the same
//!    lower levels, showing how the hierarchy extends.
//!
//! Run with `cargo run --release --example netlist_estimation`.

use ape_repro::ape::folded::{FoldedCascodeOta, FoldedCascodeSpec};
use ape_repro::ape::netest::estimate_netlist;
use ape_repro::netlist::{parse_spice, Technology};
use ape_repro::spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = ape_repro::probe::install_from_env();
    // --- 1. User netlist estimation ----------------------------------------
    let deck = "\
* user amplifier: common source + source follower
V1 in 0 DC 1.2 AC 1
VDD vdd 0 DC 5
RD1 vdd mid 50k
M1 mid in 0 0 CMOSN W=10u L=2.4u
M2 vdd mid out 0 CMOSN W=20u L=2.4u
RS out 0 20k
C1 out 0 5p
.end
";
    println!("=== User-level netlist estimation (paper section 6) ===");
    println!("{deck}");
    let (ckt, tech) = parse_spice(deck)?;
    let out = ckt.find_node("out").expect("deck has out");

    let t0 = std::time::Instant::now();
    let est = estimate_netlist(&ckt, &tech, out)?;
    let t_est = t0.elapsed();

    let t0 = std::time::Instant::now();
    let op = dc_operating_point(&ckt, &tech)?;
    let sweep = ac_sweep(&ckt, &tech, &op, &decade_frequencies(10.0, 1e9, 10)?)?;
    let t_sweep = t0.elapsed();

    println!(
        "moment estimate ({:>8.1} us): gain {:.2}, f3dB {:.2} MHz, stable = {}",
        t_est.as_secs_f64() * 1e6,
        est.perf.dc_gain.unwrap().abs(),
        est.perf.bw_hz.unwrap() * 1e-6,
        est.is_stable()
    );
    println!(
        "full AC sweep   ({:>8.1} us): gain {:.2}, f3dB {:.2} MHz",
        t_sweep.as_secs_f64() * 1e6,
        measure::dc_gain(&sweep, out).unwrap(),
        measure::bandwidth_3db(&sweep, out)? * 1e-6
    );

    // --- 2. A new topology from the same hierarchy -------------------------
    println!("\n=== Folded-cascode OTA (new level-3 component) ===");
    let tech = Technology::default_1p2um();
    let spec = FoldedCascodeSpec {
        gain: 2000.0,
        ugf_hz: 10e6,
        ibias: 10e-6,
        cl: 2e-12,
    };
    let ota = FoldedCascodeOta::design(&tech, spec)?;
    println!("APE estimate: {}", ota.perf);
    let tb = ota.testbench_open_loop(&tech)?;
    let op = dc_operating_point(&tb, &tech)?;
    let out = tb.find_node("out").expect("tb has out");
    let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(100.0, 2e9, 8)?)?;
    println!(
        "simulation:   gain {:.0}, UGF {:.2} MHz, PM {:.0} deg",
        measure::dc_gain(&sweep, out).unwrap(),
        measure::unity_gain_frequency(&sweep, out)? * 1e-6,
        measure::phase_margin(&sweep, out)?
    );

    // The netlist estimator also works on the emitted OTA netlist.
    let est = estimate_netlist(&tb, &tech, out)?;
    println!(
        "netlist estimate on the same OTA: gain {:.0}, stable = {}",
        est.perf.dc_gain.unwrap().abs(),
        est.is_stable()
    );
    ape_repro::probe::finish();
    Ok(())
}
