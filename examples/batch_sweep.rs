// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Batch design-space sweep: size 144 op-amp variants concurrently and
//! reduce them to an area/power/gain-error Pareto front.
//!
//! The grid is 4 gains × 4 UGFs × 3 loads × 3 topologies; the farm runs
//! it on a bounded-queue worker pool with a single-flight result cache,
//! then the report streams as JSON Lines (stdout unless a path is given).
//!
//! Run with `cargo run --release --example batch_sweep [-- output.jsonl]`.
//! Set `APE_TRACE=summary` to see the farm's probe counters and spans.

use ape_repro::farm::{Farm, FarmConfig, SweepPlan};
use ape_repro::netlist::Technology;
use std::io::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = ape_repro::probe::install_from_env();
    let tech = Technology::default_1p2um();
    let config = FarmConfig::default();
    let workers = config.workers;
    let plan = SweepPlan::example();
    eprintln!(
        "sweeping {} design points on {} worker(s) ...",
        plan.len(),
        workers
    );

    let t0 = std::time::Instant::now();
    let farm = Farm::new(tech, config);
    let report = plan.run(&farm);
    let elapsed = t0.elapsed();

    let ok = report.successes().count();
    let pareto = report.pareto_front().count();
    eprintln!(
        "{} points in {:.2} s ({:.0} designs/s): {} sized, {} failed, {} on the Pareto front",
        report.records.len(),
        elapsed.as_secs_f64(),
        report.records.len() as f64 / elapsed.as_secs_f64(),
        ok,
        report.records.len() - ok,
        pareto
    );
    eprint!("{}", farm.report());

    let jsonl = report.to_jsonl();
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &jsonl)?;
            eprintln!("wrote {path}");
        }
        None => std::io::stdout().write_all(jsonl.as_bytes())?,
    }

    // A sweep that sizes nothing (or finds no front) means the estimator
    // or the farm regressed; fail loudly so CI notices.
    if ok == 0 || pareto == 0 {
        eprintln!("error: empty sweep result (sized {ok}, pareto {pareto})");
        std::process::exit(1);
    }
    ape_repro::probe::finish();
    Ok(())
}
