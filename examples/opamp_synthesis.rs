// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Synthesis-effectiveness demo: one op-amp spec run through the stand-alone
//! engine (blind intervals, Table 1 mode) and the APE-seeded engine
//! (±20 % intervals, Table 4 mode), side by side.
//!
//! Run with `cargo run --release --example opamp_synthesis [evals]`.

use ape_repro::ape::basic::MirrorTopology;
use ape_repro::ape::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_repro::netlist::Technology;
use ape_repro::oblx::{
    design_point_from_ape, synthesize, InitialPoint, SynthesisOptions, SynthesisOutcome,
};

fn describe(label: &str, out: &SynthesisOutcome) {
    println!("--- {label} ---");
    println!(
        "evals = {}, wall = {:.2} s, annealing cost = {:.3}",
        out.evals,
        out.wall.as_secs_f64(),
        out.cost
    );
    match &out.audit {
        Ok(a) => {
            println!(
                "audited: gain = {:.0}, UGF = {:.2} MHz, area = {:.0} um2, PM = {:.0} deg",
                a.measured.dc_gain.unwrap_or(0.0),
                a.measured.ugf_hz.unwrap_or(0.0) * 1e-6,
                a.measured.gate_area_um2(),
                a.phase_margin_deg.unwrap_or(f64::NAN)
            );
            if a.meets_spec() {
                println!("verdict: MEETS SPEC");
            } else {
                println!("verdict: violates — {}", a.violations.join("; "));
            }
        }
        Err(f) => println!("verdict: doesn't work ({})", f.reason),
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _trace = ape_repro::probe::install_from_env();
    let evals: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let tech = Technology::default_1p2um();
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
    let spec = OpAmpSpec {
        gain: 200.0,
        ugf_hz: 8e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    };
    println!(
        "spec: gain >= {}, UGF >= {} MHz, area <= {} um2 | budget {evals} evaluations\n",
        spec.gain,
        spec.ugf_hz * 1e-6,
        spec.area_max_m2 * 1e12
    );

    let opts = SynthesisOptions {
        max_evals: evals,
        seed: 42,
        ..SynthesisOptions::default()
    };

    // Stand-alone: decade-wide intervals, centre start (Table 1 mode).
    let blind = synthesize(&tech, topo, &spec, &InitialPoint::Blind, &opts)?;
    describe("stand-alone (blind intervals)", &blind);

    // APE front-end, then ±20 % intervals (Table 4 mode).
    let t0 = std::time::Instant::now();
    let ape = OpAmp::design(&tech, topo, spec)?;
    println!(
        "APE sizing took {:.1} us; estimate: {}\n",
        t0.elapsed().as_secs_f64() * 1e6,
        ape.perf
    );
    let init = InitialPoint::ApeSeeded {
        point: design_point_from_ape(&tech, &ape),
        interval_frac: 0.2,
    };
    let seeded = synthesize(&tech, topo, &spec, &init, &opts)?;
    describe("APE-seeded (+/-20% intervals)", &seeded);

    println!(
        "search-effort ratio (blind/seeded evals): {:.0}x",
        blind.evals as f64 / seeded.evals.max(1) as f64
    );
    ape_repro::probe::finish();
    Ok(())
}
