// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Incremental == cold, bit for bit.
//!
//! The estimation graph's contract is that a warm memo never changes an
//! answer: every node's key is a bit-exact fingerprint of its inputs, so
//! re-estimating after a delta (a warm graph with some subtrees still
//! valid) must produce results identical to a cold, from-scratch run.
//!
//! `f64`'s `Debug` rendering is the shortest string that round-trips
//! uniquely, so comparing `format!("{:?}")` of two results is a bit-exact
//! comparison of every float they carry.

use ape_core::basic::MirrorTopology;
use ape_core::folded::{FoldedCascodeOta, FoldedCascodeSpec};
use ape_core::graph::reset_thread_graph;
use ape_core::module::{
    AudioAmplifier, Comparator, FlashAdc, Integrator, InvertingAmplifier, NonInvertingAmplifier,
    R2rDac, SallenKeyBandPass, SallenKeyLowPass, SampleHold, SummingAmplifier,
};
use ape_core::netest::{estimate_netlist, estimate_netlist_incremental};
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology, SpecDelta};
use ape_netlist::{Circuit, SourceWaveform, Technology};
use std::fmt::Debug;

fn spec() -> OpAmpSpec {
    OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    }
}

fn all_topologies() -> Vec<OpAmpTopology> {
    let mut v = Vec::new();
    for mirror in [
        MirrorTopology::Simple,
        MirrorTopology::Wilson,
        MirrorTopology::Cascode,
    ] {
        for buffer in [false, true] {
            v.push(OpAmpTopology::miller(mirror, buffer));
        }
    }
    v
}

/// Runs `build` against a graph warmed by `warm_up`, then against a cold
/// graph, and requires the two results to render identically (bit-exact
/// for every float; errors must match message for message).
fn assert_warm_equals_cold<T: Debug, E: Debug>(
    warm_up: impl Fn(),
    build: impl Fn() -> Result<T, E>,
    label: &str,
) {
    reset_thread_graph();
    warm_up();
    let warm = build();
    reset_thread_graph();
    let cold = build();
    assert_eq!(
        format!("{warm:?}"),
        format!("{cold:?}"),
        "warm result diverged from cold for {label}"
    );
}

#[test]
fn incremental_redesign_is_bit_identical_across_topologies_and_deltas() {
    let tech = Technology::default_1p2um();
    let deltas = [
        SpecDelta {
            gain: Some(250.0),
            ..SpecDelta::default()
        },
        SpecDelta {
            ugf_hz: Some(6e6),
            ..SpecDelta::default()
        },
        SpecDelta {
            area_max_m2: Some(6000e-12),
            ..SpecDelta::default()
        },
        SpecDelta {
            ibias: Some(12e-6),
            ..SpecDelta::default()
        },
        SpecDelta {
            zout_ohm: Some(Some(2e3)),
            ..SpecDelta::default()
        },
        SpecDelta {
            cl: Some(12e-12),
            ..SpecDelta::default()
        },
    ];
    for topology in all_topologies() {
        for delta in &deltas {
            // Incremental: design the base spec (warming every subtree),
            // then redesign with the delta on the warm graph.
            reset_thread_graph();
            let base = OpAmp::design(&tech, topology, spec());
            let warm = base
                .as_ref()
                .map(|amp| OpAmp::redesign(&tech, amp, delta))
                .ok();
            // Cold: one from-scratch design of the post-delta spec.
            reset_thread_graph();
            let cold = OpAmp::design(&tech, topology, delta.apply(&spec()));
            if let Some(warm) = warm {
                assert_eq!(
                    format!("{warm:?}"),
                    format!("{cold:?}"),
                    "incremental redesign diverged for {topology:?} {delta:?}"
                );
            } else {
                // The base spec itself failed on this topology; the delta
                // path is vacuous, but the cold result must agree that the
                // base fails too (same inputs).
                reset_thread_graph();
                let base2 = OpAmp::design(&tech, topology, spec());
                assert_eq!(format!("{base:?}"), format!("{base2:?}"));
            }
        }
    }
}

#[test]
fn folded_cascode_warm_equals_cold() {
    let tech = Technology::default_1p2um();
    let fspec = FoldedCascodeSpec {
        gain: 300.0,
        ugf_hz: 8e6,
        ibias: 20e-6,
        cl: 5e-12,
    };
    let mut warm_spec = fspec;
    warm_spec.ugf_hz = 7e6;
    assert_warm_equals_cold(
        || {
            let _ = FoldedCascodeOta::design(&tech, warm_spec);
        },
        || FoldedCascodeOta::design(&tech, fspec),
        "folded cascode",
    );
}

#[test]
fn l4_modules_warm_equals_cold() {
    let tech = Technology::default_1p2um();

    assert_warm_equals_cold(
        || {
            let _ = InvertingAmplifier::design(&tech, 5.0, 50e3, 10e-12);
        },
        || InvertingAmplifier::design(&tech, 4.0, 50e3, 10e-12),
        "inverting amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = NonInvertingAmplifier::design(&tech, 2.0, 25e3, 10e-12);
        },
        || NonInvertingAmplifier::design(&tech, 2.0, 20e3, 10e-12),
        "non-inverting amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = AudioAmplifier::design(&tech, 100.0, 25e3, 10e-12);
        },
        || AudioAmplifier::design(&tech, 100.0, 20e3, 10e-12),
        "audio amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = Comparator::design(&tech, 0.2, 1e-6);
        },
        || Comparator::design(&tech, 0.1, 1e-6),
        "comparator",
    );
    assert_warm_equals_cold(
        || {
            let _ = FlashAdc::design(&tech, 3, 1e-6);
        },
        || FlashAdc::design(&tech, 4, 1e-6),
        "flash adc",
    );
    assert_warm_equals_cold(
        || {
            let _ = R2rDac::design(&tech, 6, 1e5);
        },
        || R2rDac::design(&tech, 4, 1e5),
        "r-2r dac",
    );
    assert_warm_equals_cold(
        || {
            let _ = SallenKeyLowPass::design(&tech, 2e3, 4, 10e-12);
        },
        || SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12),
        "sallen-key low-pass",
    );
    assert_warm_equals_cold(
        || {
            let _ = SallenKeyBandPass::design(&tech, 1e3, 2.0, 10e-12);
        },
        || SallenKeyBandPass::design(&tech, 1e3, 3.0, 10e-12),
        "sallen-key band-pass",
    );
    assert_warm_equals_cold(
        || {
            let _ = Integrator::design(&tech, 20e3, 10e-12);
        },
        || Integrator::design(&tech, 10e3, 10e-12),
        "integrator",
    );
    assert_warm_equals_cold(
        || {
            let _ = SummingAmplifier::design(&tech, &[1.0, 2.0], 20e3, 10e-12);
        },
        || SummingAmplifier::design(&tech, &[1.0, 2.0, 3.0], 20e3, 10e-12),
        "summing amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = SampleHold::design(&tech, 2.0, 50e3, 10e-12);
        },
        || SampleHold::design(&tech, 2.0, 40e3, 10e-12),
        "sample-and-hold",
    );
}

/// The shared cross-thread memo is a pure read-through cache: a graph
/// served entirely out of another thread's published results must produce
/// bit-identical designs to a cold, isolated run.
#[test]
fn shared_memo_results_are_bit_identical_to_cold() {
    use ape_core::graph::{set_thread_shared_memo, SharedMemo};
    use std::sync::Arc;

    let tech = Technology::default_1p2um();
    let store = Arc::new(SharedMemo::new());

    // Publisher thread: designs every topology cold, filling the store.
    let publisher = {
        let tech = tech.clone();
        let store = store.clone();
        std::thread::spawn(move || {
            set_thread_shared_memo(Some(store));
            all_topologies()
                .into_iter()
                .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
                .collect::<Vec<_>>()
        })
    };
    let published = publisher.join().expect("publisher thread");
    assert!(!store.is_empty(), "publisher populated the shared store");

    // Reader thread: same designs through the shared store.
    let reader = {
        let tech = tech.clone();
        let store = store.clone();
        std::thread::spawn(move || {
            set_thread_shared_memo(Some(store));
            let rendered = all_topologies()
                .into_iter()
                .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
                .collect::<Vec<_>>();
            let shared_hits = ape_core::graph::with_thread_graph(&tech, |g| g.totals().shared_hits);
            (rendered, shared_hits)
        })
    };
    let (read_back, shared_hits) = reader.join().expect("reader thread");
    assert!(
        shared_hits > 0,
        "reader must have been served from the shared store"
    );

    // Cold oracle: no shared store at all.
    reset_thread_graph();
    let cold: Vec<String> = all_topologies()
        .into_iter()
        .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
        .collect();

    assert_eq!(published, cold, "publisher diverged from cold");
    assert_eq!(read_back, cold, "shared-store reader diverged from cold");
}

fn rc_ladder(r: f64, stages: usize) -> Circuit {
    let mut c = Circuit::new("ladder");
    let mut prev = c.node("n0");
    c.add_vsource("VIN", prev, Circuit::GROUND, 1.0, 1.0, SourceWaveform::Dc)
        .unwrap();
    for k in 1..=stages {
        let next = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, next, r).unwrap();
        c.add_capacitor(&format!("C{k}"), next, Circuit::GROUND, 10e-12)
            .unwrap();
        prev = next;
    }
    c
}

#[test]
fn netlist_incremental_short_circuits_and_stays_exact() {
    let tech = Technology::default_1p2um();
    let ckt = rc_ladder(1e3, 6);
    let out = ckt.find_node("n6").unwrap();

    reset_thread_graph();
    let first = estimate_netlist(&ckt, &tech, out).unwrap();

    // Unchanged circuit: the incremental path answers from the previous
    // estimate (same input fingerprint) and must be identical.
    let again = estimate_netlist_incremental(&ckt, &tech, out, &first).unwrap();
    assert_eq!(format!("{first:?}"), format!("{again:?}"));

    // Changed circuit: the incremental path must fall through to a fresh
    // estimate that matches a cold one bit for bit.
    let changed = rc_ladder(2e3, 6);
    let out2 = changed.find_node("n6").unwrap();
    let incr = estimate_netlist_incremental(&changed, &tech, out2, &first).unwrap();
    reset_thread_graph();
    let cold = estimate_netlist(&changed, &tech, out2).unwrap();
    assert_eq!(format!("{incr:?}"), format!("{cold:?}"));
    assert_ne!(
        first.input_fingerprint, cold.input_fingerprint,
        "distinct circuits must have distinct input fingerprints"
    );
}
