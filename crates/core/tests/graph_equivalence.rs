// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Incremental == cold, bit for bit.
//!
//! The estimation graph's contract is that a warm memo never changes an
//! answer: every node's key is a bit-exact fingerprint of its inputs, so
//! re-estimating after a delta (a warm graph with some subtrees still
//! valid) must produce results identical to a cold, from-scratch run.
//!
//! `f64`'s `Debug` rendering is the shortest string that round-trips
//! uniquely, so comparing `format!("{:?}")` of two results is a bit-exact
//! comparison of every float they carry.

use ape_core::basic::MirrorTopology;
use ape_core::folded::{FoldedCascodeOta, FoldedCascodeSpec};
use ape_core::graph::reset_thread_graph;
use ape_core::module::{
    AudioAmplifier, Comparator, FlashAdc, Integrator, InvertingAmplifier, NonInvertingAmplifier,
    R2rDac, SallenKeyBandPass, SallenKeyLowPass, SampleHold, SummingAmplifier,
};
use ape_core::netest::{estimate_netlist, estimate_netlist_incremental};
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology, SpecDelta};
use ape_netlist::{Circuit, SourceWaveform, Technology};
use std::fmt::Debug;

fn spec() -> OpAmpSpec {
    OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    }
}

fn all_topologies() -> Vec<OpAmpTopology> {
    let mut v = Vec::new();
    for mirror in [
        MirrorTopology::Simple,
        MirrorTopology::Wilson,
        MirrorTopology::Cascode,
    ] {
        for buffer in [false, true] {
            v.push(OpAmpTopology::miller(mirror, buffer));
        }
    }
    v
}

/// Runs `build` against a graph warmed by `warm_up`, then against a cold
/// graph, and requires the two results to render identically (bit-exact
/// for every float; errors must match message for message).
fn assert_warm_equals_cold<T: Debug, E: Debug>(
    warm_up: impl Fn(),
    build: impl Fn() -> Result<T, E>,
    label: &str,
) {
    reset_thread_graph();
    warm_up();
    let warm = build();
    reset_thread_graph();
    let cold = build();
    assert_eq!(
        format!("{warm:?}"),
        format!("{cold:?}"),
        "warm result diverged from cold for {label}"
    );
}

#[test]
fn incremental_redesign_is_bit_identical_across_topologies_and_deltas() {
    let tech = Technology::default_1p2um();
    let deltas = [
        SpecDelta {
            gain: Some(250.0),
            ..SpecDelta::default()
        },
        SpecDelta {
            ugf_hz: Some(6e6),
            ..SpecDelta::default()
        },
        SpecDelta {
            area_max_m2: Some(6000e-12),
            ..SpecDelta::default()
        },
        SpecDelta {
            ibias: Some(12e-6),
            ..SpecDelta::default()
        },
        SpecDelta {
            zout_ohm: Some(Some(2e3)),
            ..SpecDelta::default()
        },
        SpecDelta {
            cl: Some(12e-12),
            ..SpecDelta::default()
        },
    ];
    for topology in all_topologies() {
        for delta in &deltas {
            // Incremental: design the base spec (warming every subtree),
            // then redesign with the delta on the warm graph.
            reset_thread_graph();
            let base = OpAmp::design(&tech, topology, spec());
            let warm = base
                .as_ref()
                .map(|amp| OpAmp::redesign(&tech, amp, delta))
                .ok();
            // Cold: one from-scratch design of the post-delta spec.
            reset_thread_graph();
            let cold = OpAmp::design(&tech, topology, delta.apply(&spec()));
            if let Some(warm) = warm {
                assert_eq!(
                    format!("{warm:?}"),
                    format!("{cold:?}"),
                    "incremental redesign diverged for {topology:?} {delta:?}"
                );
            } else {
                // The base spec itself failed on this topology; the delta
                // path is vacuous, but the cold result must agree that the
                // base fails too (same inputs).
                reset_thread_graph();
                let base2 = OpAmp::design(&tech, topology, spec());
                assert_eq!(format!("{base:?}"), format!("{base2:?}"));
            }
        }
    }
}

#[test]
fn folded_cascode_warm_equals_cold() {
    let tech = Technology::default_1p2um();
    let fspec = FoldedCascodeSpec {
        gain: 300.0,
        ugf_hz: 8e6,
        ibias: 20e-6,
        cl: 5e-12,
    };
    let mut warm_spec = fspec;
    warm_spec.ugf_hz = 7e6;
    assert_warm_equals_cold(
        || {
            let _ = FoldedCascodeOta::design(&tech, warm_spec);
        },
        || FoldedCascodeOta::design(&tech, fspec),
        "folded cascode",
    );
}

#[test]
fn l4_modules_warm_equals_cold() {
    let tech = Technology::default_1p2um();

    assert_warm_equals_cold(
        || {
            let _ = InvertingAmplifier::design(&tech, 5.0, 50e3, 10e-12);
        },
        || InvertingAmplifier::design(&tech, 4.0, 50e3, 10e-12),
        "inverting amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = NonInvertingAmplifier::design(&tech, 2.0, 25e3, 10e-12);
        },
        || NonInvertingAmplifier::design(&tech, 2.0, 20e3, 10e-12),
        "non-inverting amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = AudioAmplifier::design(&tech, 100.0, 25e3, 10e-12);
        },
        || AudioAmplifier::design(&tech, 100.0, 20e3, 10e-12),
        "audio amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = Comparator::design(&tech, 0.2, 1e-6);
        },
        || Comparator::design(&tech, 0.1, 1e-6),
        "comparator",
    );
    assert_warm_equals_cold(
        || {
            let _ = FlashAdc::design(&tech, 3, 1e-6);
        },
        || FlashAdc::design(&tech, 4, 1e-6),
        "flash adc",
    );
    assert_warm_equals_cold(
        || {
            let _ = R2rDac::design(&tech, 6, 1e5);
        },
        || R2rDac::design(&tech, 4, 1e5),
        "r-2r dac",
    );
    assert_warm_equals_cold(
        || {
            let _ = SallenKeyLowPass::design(&tech, 2e3, 4, 10e-12);
        },
        || SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12),
        "sallen-key low-pass",
    );
    assert_warm_equals_cold(
        || {
            let _ = SallenKeyBandPass::design(&tech, 1e3, 2.0, 10e-12);
        },
        || SallenKeyBandPass::design(&tech, 1e3, 3.0, 10e-12),
        "sallen-key band-pass",
    );
    assert_warm_equals_cold(
        || {
            let _ = Integrator::design(&tech, 20e3, 10e-12);
        },
        || Integrator::design(&tech, 10e3, 10e-12),
        "integrator",
    );
    assert_warm_equals_cold(
        || {
            let _ = SummingAmplifier::design(&tech, &[1.0, 2.0], 20e3, 10e-12);
        },
        || SummingAmplifier::design(&tech, &[1.0, 2.0, 3.0], 20e3, 10e-12),
        "summing amplifier",
    );
    assert_warm_equals_cold(
        || {
            let _ = SampleHold::design(&tech, 2.0, 50e3, 10e-12);
        },
        || SampleHold::design(&tech, 2.0, 40e3, 10e-12),
        "sample-and-hold",
    );
}

/// The shared cross-thread memo is a pure read-through cache: a graph
/// served entirely out of another thread's published results must produce
/// bit-identical designs to a cold, isolated run.
#[test]
fn shared_memo_results_are_bit_identical_to_cold() {
    use ape_core::graph::{set_thread_shared_memo, SharedMemo};
    use std::sync::Arc;

    let tech = Technology::default_1p2um();
    let store = Arc::new(SharedMemo::new());

    // Publisher thread: designs every topology cold, filling the store.
    let publisher = {
        let tech = tech.clone();
        let store = store.clone();
        std::thread::spawn(move || {
            set_thread_shared_memo(Some(store));
            all_topologies()
                .into_iter()
                .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
                .collect::<Vec<_>>()
        })
    };
    let published = publisher.join().expect("publisher thread");
    assert!(!store.is_empty(), "publisher populated the shared store");

    // Reader thread: same designs through the shared store.
    let reader = {
        let tech = tech.clone();
        let store = store.clone();
        std::thread::spawn(move || {
            set_thread_shared_memo(Some(store));
            let rendered = all_topologies()
                .into_iter()
                .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
                .collect::<Vec<_>>();
            let shared_hits = ape_core::graph::with_thread_graph(&tech, |g| g.totals().shared_hits);
            (rendered, shared_hits)
        })
    };
    let (read_back, shared_hits) = reader.join().expect("reader thread");
    assert!(
        shared_hits > 0,
        "reader must have been served from the shared store"
    );

    // Cold oracle: no shared store at all.
    reset_thread_graph();
    let cold: Vec<String> = all_topologies()
        .into_iter()
        .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
        .collect();

    assert_eq!(published, cold, "publisher diverged from cold");
    assert_eq!(read_back, cold, "shared-store reader diverged from cold");
}

/// The executor fan-out contract: `OpAmp::design_many_on` must agree slot
/// for slot, bit for bit, with the sequential `OpAmp::design` loop at
/// every worker count — scheduling is a performance knob, never an
/// observable one. Executors are built explicitly so real cross-thread
/// stealing happens even on a single-core machine.
#[test]
fn design_many_is_bit_identical_to_sequential_at_any_worker_count() {
    let tech = Technology::default_1p2um();
    let requests: Vec<(OpAmpTopology, OpAmpSpec)> =
        all_topologies().into_iter().map(|t| (t, spec())).collect();

    reset_thread_graph();
    let sequential: Vec<String> = requests
        .iter()
        .map(|&(t, s)| format!("{:?}", OpAmp::design(&tech, t, s)))
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let exec = ape_exec::Executor::new(workers);
        reset_thread_graph();
        let parallel = OpAmp::design_many_on(&exec, &tech, &requests);
        reset_thread_graph();
        for (k, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                *seq,
                format!("{par:?}"),
                "slot {k} diverged at {workers} workers"
            );
        }
    }
}

/// Same contract one level down: raw `evaluate_many` over a grid of
/// public level-1 sizing nodes, against the sequential per-node loop.
#[test]
fn evaluate_many_l1_grid_is_bit_identical_to_sequential() {
    use ape_core::graph::{evaluate_many, with_thread_graph, SizeForIdVov};

    let tech = Technology::default_1p2um();
    let nodes: Vec<SizeForIdVov> = (1..=24)
        .map(|k| SizeForIdVov {
            pmos: k % 2 == 0,
            id: k as f64 * 5e-6,
            vov: 0.2 + 0.01 * k as f64,
            l: 2.4e-6,
            vds: 1.2,
            vsb: 0.0,
        })
        .collect();

    reset_thread_graph();
    let sequential: Vec<String> = nodes
        .iter()
        .map(|n| format!("{:?}", with_thread_graph(&tech, |g| g.evaluate(n))))
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let exec = ape_exec::Executor::new(workers);
        reset_thread_graph();
        let parallel = evaluate_many(&exec, &tech, &nodes);
        reset_thread_graph();
        for (k, (seq, par)) in sequential.iter().zip(&parallel).enumerate() {
            assert_eq!(
                *seq,
                format!("{par:?}"),
                "L1 node {k} diverged at {workers} workers"
            );
        }
    }
}

/// Level-4 modules behind a store warmed *by the executor fan-out*: a
/// `design_many_on` run publishes its l1/l2/l3 subtrees into a
/// [`SharedMemo`], and module designs reading through that store must
/// still match a cold, storeless run bit for bit.
#[test]
fn l4_modules_are_unchanged_by_parallel_warm_up() {
    use ape_core::graph::{set_thread_shared_memo, SharedMemo};
    use std::sync::Arc;

    type ModuleRender = fn(&Technology) -> String;
    let tech = Technology::default_1p2um();
    let modules: [(&str, ModuleRender); 4] = [
        ("inverting amplifier", |t| {
            format!("{:?}", InvertingAmplifier::design(t, 5.0, 50e3, 10e-12))
        }),
        ("audio amplifier", |t| {
            format!("{:?}", AudioAmplifier::design(t, 100.0, 25e3, 10e-12))
        }),
        ("sallen-key low-pass", |t| {
            format!("{:?}", SallenKeyLowPass::design(t, 2e3, 4, 10e-12))
        }),
        ("sample-and-hold", |t| {
            format!("{:?}", SampleHold::design(t, 2.0, 50e3, 10e-12))
        }),
    ];

    // Cold oracle: no store, fresh graph per module.
    set_thread_shared_memo(None);
    let cold: Vec<String> = modules
        .iter()
        .map(|(_, build)| {
            reset_thread_graph();
            build(&tech)
        })
        .collect();

    // Warm the store through the executor: every task publishes its
    // subtrees, then the module designs read through them.
    let store = Arc::new(SharedMemo::new());
    set_thread_shared_memo(Some(store.clone()));
    let requests: Vec<(OpAmpTopology, OpAmpSpec)> =
        all_topologies().into_iter().map(|t| (t, spec())).collect();
    let exec = ape_exec::Executor::new(4);
    let _ = OpAmp::design_many_on(&exec, &tech, &requests);
    assert!(!store.is_empty(), "fan-out populated the shared store");
    let warm: Vec<String> = modules
        .iter()
        .map(|(_, build)| {
            reset_thread_graph();
            build(&tech)
        })
        .collect();
    set_thread_shared_memo(None);
    reset_thread_graph();

    for (((name, _), c), w) in modules.iter().zip(&cold).zip(&warm) {
        assert_eq!(c, w, "{name} diverged behind the executor-warmed store");
    }
}

fn rc_ladder(r: f64, stages: usize) -> Circuit {
    let mut c = Circuit::new("ladder");
    let mut prev = c.node("n0");
    c.add_vsource("VIN", prev, Circuit::GROUND, 1.0, 1.0, SourceWaveform::Dc)
        .unwrap();
    for k in 1..=stages {
        let next = c.node(&format!("n{k}"));
        c.add_resistor(&format!("R{k}"), prev, next, r).unwrap();
        c.add_capacitor(&format!("C{k}"), next, Circuit::GROUND, 10e-12)
            .unwrap();
        prev = next;
    }
    c
}

#[test]
fn netlist_incremental_short_circuits_and_stays_exact() {
    let tech = Technology::default_1p2um();
    let ckt = rc_ladder(1e3, 6);
    let out = ckt.find_node("n6").unwrap();

    reset_thread_graph();
    let first = estimate_netlist(&ckt, &tech, out).unwrap();

    // Unchanged circuit: the incremental path answers from the previous
    // estimate (same input fingerprint) and must be identical.
    let again = estimate_netlist_incremental(&ckt, &tech, out, &first).unwrap();
    assert_eq!(format!("{first:?}"), format!("{again:?}"));

    // Changed circuit: the incremental path must fall through to a fresh
    // estimate that matches a cold one bit for bit.
    let changed = rc_ladder(2e3, 6);
    let out2 = changed.find_node("n6").unwrap();
    let incr = estimate_netlist_incremental(&changed, &tech, out2, &first).unwrap();
    reset_thread_graph();
    let cold = estimate_netlist(&changed, &tech, out2).unwrap();
    assert_eq!(format!("{incr:?}"), format!("{cold:?}"));
    assert_ne!(
        first.input_fingerprint, cold.input_fingerprint,
        "distinct circuits must have distinct input fingerprints"
    );
}

/// An identity calibration table (registered but empty) must be provably
/// bit-identical to running with no table at all: corrections are keyed
/// into every memo entry, but an empty table corrects nothing.
#[test]
fn identity_calibration_is_bit_identical_to_uncalibrated() {
    use ape_calib::Calibration;
    use ape_core::graph::set_thread_calibration;
    use std::sync::Arc;

    let tech = Technology::default_1p2um();

    set_thread_calibration(None);
    reset_thread_graph();
    let plain: Vec<String> = all_topologies()
        .into_iter()
        .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
        .collect();
    let plain_modules = format!(
        "{:?} {:?}",
        AudioAmplifier::design(&tech, 100.0, 25e3, 10e-12),
        SallenKeyLowPass::design(&tech, 2e3, 4, 10e-12)
    );

    let identity = Calibration::identity(tech.fingerprint(), "identity");
    assert!(identity.is_empty());
    set_thread_calibration(Some(Arc::new(identity)));
    reset_thread_graph();
    let calibrated: Vec<String> = all_topologies()
        .into_iter()
        .map(|t| format!("{:?}", OpAmp::design(&tech, t, spec())))
        .collect();
    let calibrated_modules = format!(
        "{:?} {:?}",
        AudioAmplifier::design(&tech, 100.0, 25e3, 10e-12),
        SallenKeyLowPass::design(&tech, 2e3, 4, 10e-12)
    );
    set_thread_calibration(None);
    reset_thread_graph();

    assert_eq!(plain, calibrated, "identity table changed an op-amp design");
    assert_eq!(
        plain_modules, calibrated_modules,
        "identity table changed a module design"
    );
}

/// Re-registering a different table under the same technology must
/// invalidate every memoized estimate: answers under table B match a cold
/// run under B even when the thread graph is still warm from table A.
#[test]
fn reregistered_calibration_invalidates_warm_memo() {
    use ape_calib::Calibration;
    use ape_core::graph::set_thread_calibration;
    use std::sync::Arc;

    let tech = Technology::default_1p2um();
    let table = |factor: f64| {
        let mut t = Calibration::identity(tech.fingerprint(), "swap");
        t.set("l3.opamp", "dc_gain", factor, &[]).unwrap();
        Arc::new(t)
    };
    let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);

    // Cold oracle under table B only.
    set_thread_calibration(Some(table(1.5)));
    reset_thread_graph();
    let cold_b = format!("{:?}", OpAmp::design(&tech, topo, spec()));

    // Warm under A, then swap to B without resetting the thread graph.
    set_thread_calibration(Some(table(1.25)));
    reset_thread_graph();
    let under_a = format!("{:?}", OpAmp::design(&tech, topo, spec()));
    set_thread_calibration(Some(table(1.5)));
    let under_b = format!("{:?}", OpAmp::design(&tech, topo, spec()));
    set_thread_calibration(None);
    reset_thread_graph();

    assert_ne!(under_a, under_b, "different tables must change the answer");
    assert_eq!(
        under_b, cold_b,
        "warm memo from table A leaked into table B's answers"
    );
}

/// Persistence round-trip: a saved table loads back with the same content
/// fingerprint, and estimates under the reloaded table are bit-identical
/// to the original — sequentially and fanned out on 1 and 8 workers over
/// a shared memo.
#[test]
fn calibration_persistence_round_trip_is_bit_identical() {
    use ape_calib::Calibration;
    use ape_core::graph::{set_thread_calibration, set_thread_shared_memo, SharedMemo};
    use std::sync::Arc;

    let tech = Technology::default_1p2um();
    let mut table = Calibration::identity(tech.fingerprint(), "round-trip");
    table
        .set("l3.opamp", "dc_gain", 1.07, &[0.013, -0.008])
        .unwrap();
    table.set("l3.opamp", "ugf_hz", 0.91, &[]).unwrap();
    table.set("l2.mirror", "power_w", 1.02, &[]).unwrap();
    table
        .set("l4.audio_amp", "bw_hz", 0.83, &[0.05, 0.0])
        .unwrap();

    let reloaded = Calibration::parse(&table.render()).expect("canonical text parses");
    assert_eq!(
        reloaded.fingerprint(),
        table.fingerprint(),
        "render → parse must recover the table bit-exactly"
    );

    let requests: Vec<(OpAmpTopology, OpAmpSpec)> =
        all_topologies().into_iter().map(|t| (t, spec())).collect();
    let run = |cal: &Arc<Calibration>, workers: usize| -> Vec<String> {
        set_thread_shared_memo(Some(Arc::new(SharedMemo::new())));
        set_thread_calibration(Some(cal.clone()));
        reset_thread_graph();
        let out = if workers == 0 {
            requests
                .iter()
                .map(|&(t, s)| format!("{:?}", OpAmp::design(&tech, t, s)))
                .collect()
        } else {
            let exec = ape_exec::Executor::new(workers);
            OpAmp::design_many_on(&exec, &tech, &requests)
                .iter()
                .map(|r| format!("{r:?}"))
                .collect()
        };
        set_thread_calibration(None);
        set_thread_shared_memo(None);
        reset_thread_graph();
        out
    };

    let original = Arc::new(table);
    let reloaded = Arc::new(reloaded);
    let baseline = run(&original, 0);
    for workers in [1usize, 8] {
        assert_eq!(
            run(&original, workers),
            baseline,
            "original table diverged at {workers} workers"
        );
        assert_eq!(
            run(&reloaded, workers),
            baseline,
            "reloaded table diverged at {workers} workers"
        );
    }
}
