// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! End-to-end check that the estimator emits probe telemetry: designing a
//! diff pair under a `SummarySink` must produce level-1 and level-2 spans
//! with the expected nesting, and a repeated solve must hit the estimation
//! graph's memo.
//!
//! The probe sink is process-global, so everything lives in one `#[test]`
//! to avoid cross-test interference under the parallel test runner.

use ape_core::basic::{DiffPair, DiffTopology};
use ape_core::graph;
use ape_netlist::Technology;
use ape_probe::SummarySink;
use std::sync::Arc;

#[test]
fn diffpair_design_emits_spans_and_graph_counters() {
    let tech = Technology::default_1p2um();
    graph::reset_thread_graph();

    let sink = Arc::new(SummarySink::new());
    ape_probe::install(sink.clone());

    DiffPair::design(&tech, DiffTopology::MirrorLoad, 20.0, 100e-6, 0.0)
        .expect("diff pair designs");
    // Same spec again: the whole l2 node is now a memo hit.
    DiffPair::design(&tech, DiffTopology::MirrorLoad, 20.0, 100e-6, 0.0)
        .expect("diff pair designs twice");

    ape_probe::uninstall();

    let spans = sink.spans();
    let l2 = spans
        .get("ape.l2.diffpair")
        .expect("level-2 diffpair span recorded");
    assert_eq!(l2.count, 2, "one span per design call");

    // Level-1 sizing spans come from the first (graph-cold) solve only:
    // the second solve answers the whole diff-pair node from the memo
    // without re-entering the solver.
    let l1: Vec<_> = spans
        .iter()
        .filter(|(name, _)| name.starts_with("ape.l1."))
        .map(|(_, agg)| *agg)
        .collect();
    let l1_total: u64 = l1.iter().map(|a| a.count).sum();
    assert!(
        l1_total >= 2,
        "cold solve sizes several devices, got {l1_total}"
    );
    for agg in &l1 {
        assert!(
            agg.min_depth > l2.min_depth,
            "l1 spans nest under l2: depth {} vs {}",
            agg.min_depth,
            l2.min_depth
        );
    }

    let counters = sink.counters();
    let hits = counters.get("ape.graph.hit").copied().unwrap_or(0);
    let misses = counters.get("ape.graph.miss").copied().unwrap_or(0);
    assert!(misses > 0, "first solve populates the graph");
    assert!(hits > 0, "second solve hits the graph memo");
    // Per-kind counters break the totals down; the l2 diff-pair node's own
    // hit is the second design call.
    let l2_hits = counters
        .get("ape.graph.l2.diffpair.hit")
        .copied()
        .unwrap_or(0);
    assert!(
        l2_hits >= 1,
        "repeat design hits the l2 node, got {l2_hits}"
    );

    let totals = graph::thread_graph_totals();
    assert_eq!(
        totals.hits as u64, hits,
        "probe counter mirrors graph stats"
    );
    assert_eq!(
        totals.misses as u64, misses,
        "probe counter mirrors graph stats"
    );
    assert!(graph::thread_graph_len() > 0);

    // The report names its span section entries.
    let report = sink.report();
    assert!(report.contains("ape.l2.diffpair"), "report:\n{report}");
}
