//! Error type for the estimator.

use ape_mos::MosError;
use ape_netlist::NetlistError;
use std::error::Error;
use std::fmt;

/// Errors produced while sizing or estimating a component.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApeError {
    /// A specification value is non-physical or out of the supported range.
    BadSpec {
        /// Which parameter.
        param: &'static str,
        /// Explanation.
        message: String,
    },
    /// The specification is internally inconsistent or unreachable in this
    /// technology (e.g. gain requiring a subthreshold gm beyond `Id/(n·VT)`).
    Infeasible {
        /// Which component could not be sized.
        component: &'static str,
        /// Explanation.
        message: String,
    },
    /// A device-level sizing call failed.
    Device(MosError),
    /// Netlist emission failed (programming error in a topology template).
    Netlist(NetlistError),
    /// The technology lacks a required model card.
    MissingModel(&'static str),
    /// The work was abandoned because its cancellation token fired (batch
    /// shutdown or an expired per-job deadline) — see [`crate::cancel`].
    Cancelled,
    /// A composed performance figure came out NaN or infinite. The inputs
    /// passed their individual range checks but their combination collapsed
    /// (division by a vanishing conductance, sqrt of a negative gain
    /// budget, overflow) — reported instead of returning poisoned numbers.
    NonFinite {
        /// Which composition stage produced the non-finite value.
        stage: &'static str,
        /// Which figure went non-finite.
        what: &'static str,
    },
}

impl fmt::Display for ApeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApeError::BadSpec { param, message } => write!(f, "bad spec `{param}`: {message}"),
            ApeError::Infeasible { component, message } => {
                write!(f, "infeasible spec for {component}: {message}")
            }
            ApeError::Device(e) => write!(f, "device sizing failed: {e}"),
            ApeError::Netlist(e) => write!(f, "netlist emission failed: {e}"),
            ApeError::MissingModel(kind) => write!(f, "technology lacks a {kind} model card"),
            ApeError::Cancelled => write!(f, "work cancelled (token fired or deadline expired)"),
            ApeError::NonFinite { stage, what } => {
                write!(f, "{stage} produced a non-finite {what}")
            }
        }
    }
}

impl Error for ApeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApeError::Device(e) => Some(e),
            ApeError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<MosError> for ApeError {
    fn from(e: MosError) -> Self {
        ApeError::Device(e)
    }
}

#[doc(hidden)]
impl From<NetlistError> for ApeError {
    fn from(e: NetlistError) -> Self {
        ApeError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits_and_source() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<ApeError>();
        let e = ApeError::Device(MosError::InvalidInput("x".into()));
        assert!(e.source().is_some());
    }
}
