//! Level 2 of the APE hierarchy: the basic analog component library.
//!
//! Paper §4.2: *"A library of basic components is the next level in the APE.
//! Some of these components are DC-bias voltages, current sources, gain
//! amplifiers, output buffers, differential amplifiers and
//! differential-to-single-ended converters."*
//!
//! Every component follows the same pattern:
//!
//! 1. a `design` constructor solves the component's symbolic equations for
//!    the transistor-level constraints, then calls the level-1 sizing
//!    solvers in `ape-mos`;
//! 2. the sized object carries its devices and a [`Performance`](crate::attrs::Performance)
//!    attribute sheet composed from their small-signal parameters;
//! 3. `testbench()` emits a self-contained SPICE-ready `Circuit` whose
//!    conventions (`VDD` rail element, `out` node, `VIN` AC drive) the
//!    verification harness relies on.

mod bias;
mod diffpair;
mod follower;
mod gain;
mod mirror;

pub use bias::DcVolt;
pub use diffpair::{DiffPair, DiffTopology};
pub use follower::Follower;
pub use gain::{GainStage, GainTopology};
pub use mirror::{CurrentMirror, MirrorTopology};

use crate::error::ApeError;
use ape_netlist::{MosModelCard, Technology};

/// Default analog channel length for bias devices, metres.
pub(crate) const L_BIAS: f64 = 2.4e-6;
/// Default overdrive for mirror/bias devices, volts.
pub(crate) const VOV_MIRROR: f64 = 0.35;
/// Subthreshold slope factor used in feasibility checks.
pub(crate) const N_SUB: f64 = 1.45;

/// The NMOS/PMOS card pair of a CMOS technology.
pub(crate) struct Cards<'a> {
    pub n: &'a MosModelCard,
    pub p: &'a MosModelCard,
}

/// Fetches both cards or reports which is missing.
pub(crate) fn cards(tech: &Technology) -> Result<Cards<'_>, ApeError> {
    Ok(Cards {
        n: tech.nmos().ok_or(ApeError::MissingModel("NMOS"))?,
        p: tech.pmos().ok_or(ApeError::MissingModel("PMOS"))?,
    })
}

/// Largest transconductance a MOSFET can deliver at drain current `id`
/// (weak-inversion limit `gm ≤ Id/(n·VT)`).
pub(crate) fn gm_max(id: f64) -> f64 {
    id / (N_SUB * ape_mos::VT_THERMAL)
}

/// Picks the overdrive that yields `gm` at `id`, checking feasibility
/// against the weak-inversion limit.
///
/// Returns the strong-inversion value `2·id/gm`, clamped away from deep
/// weak inversion so the closed-form seed stays in the solver's domain.
pub(crate) fn vov_for_gm_id(component: &'static str, gm: f64, id: f64) -> Result<f64, ApeError> {
    if gm > 0.92 * gm_max(id) {
        return Err(ApeError::Infeasible {
            component,
            message: format!(
                "needs gm = {gm:.3e} S at Id = {id:.3e} A, above the weak-inversion \
                 limit {:.3e} S; raise the bias current",
                gm_max(id)
            ),
        });
    }
    Ok((2.0 * id / gm).clamp(0.04, 3.0))
}

/// Channel length whose effective channel-length modulation supports a
/// single-stage gain of `a` at overdrive `vov`:
/// `A = gm/(gds_n+gds_p) = 2/(vov·(λn+λp)_eff)` with `λ_eff = λ·Lref/L`.
pub(crate) fn length_for_gain(a: f64, vov: f64, lam_sum: f64, tech: &Technology) -> f64 {
    let l = 0.5 * a.abs() * vov * lam_sum * ape_mos::LAMBDA_REF_LENGTH;
    l.clamp(tech.lmin, 40e-6)
}

/// Stretches a candidate channel length so the width implied by the aspect
/// ratio `w_over_l` stays at or above the technology minimum width
/// (capped at 60 µm — beyond that the sub-minimum width is accepted).
///
/// Low-current, low-gm devices otherwise solve to unrealisable widths of a
/// few tens of nanometres; lengthening the channel keeps the same electrical
/// point with manufacturable geometry.
pub(crate) fn length_for_min_width(w_over_l: f64, l_floor: f64, tech: &Technology) -> f64 {
    if !(w_over_l.is_finite() && w_over_l > 0.0) {
        return l_floor;
    }
    let l_needed = tech.wmin / w_over_l;
    l_floor.max(l_needed.min(60e-6))
}

/// Square-law aspect ratio implied by hitting `gm` at `id`.
pub(crate) fn aspect_for_gm_id(card: &MosModelCard, gm: f64, id: f64) -> f64 {
    gm * gm / (2.0 * card.kp * id)
}

/// Square-law aspect ratio implied by carrying `id` at overdrive `vov`.
pub(crate) fn aspect_for_id_vov(card: &MosModelCard, id: f64, vov: f64) -> f64 {
    2.0 * id / (card.kp * vov * vov)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_max_is_weak_inversion_limit() {
        // 1 µA → ≈ 26.7 µS at n = 1.45.
        let g = gm_max(1e-6);
        assert!((g - 26.7e-6).abs() / 26.7e-6 < 0.02, "gm_max {g}");
    }

    #[test]
    fn infeasible_gm_reported() {
        let err = vov_for_gm_id("test", 1e-3, 1e-6).unwrap_err();
        assert!(matches!(err, ApeError::Infeasible { .. }));
        assert!(err.to_string().contains("weak-inversion"));
    }

    #[test]
    fn length_for_gain_scales_linearly() {
        let tech = Technology::default_1p2um();
        let l1 = length_for_gain(100.0, 0.2, 0.09, &tech);
        let l2 = length_for_gain(200.0, 0.2, 0.09, &tech);
        assert!((l2 / l1 - 2.0).abs() < 1e-9);
        // Clamped at technology minimum for tiny gains.
        assert_eq!(length_for_gain(1.0, 0.05, 0.09, &tech), tech.lmin);
    }
}
