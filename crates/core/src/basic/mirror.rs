//! Current sources / mirrors: simple, Wilson and cascode topologies.
//!
//! The paper's topology choices (`CurrSrc ∈ {Wilson, Mirror}` in Table 1)
//! select among these.

use super::{cards, L_BIAS, VOV_MIRROR};
use crate::attrs::Performance;
use crate::cache::cached_size_for_id_vov_at;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::SizedMos;
use ape_netlist::{Circuit, MosPolarity, Technology};

/// Mirror circuit topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MirrorTopology {
    /// Two-transistor mirror.
    Simple,
    /// Three-transistor Wilson mirror (feedback-boosted output resistance).
    Wilson,
    /// Four-transistor cascode mirror.
    Cascode,
}

impl MirrorTopology {
    /// Stable one-byte tag for estimation-graph fingerprints.
    pub(crate) fn fingerprint_tag(&self) -> u8 {
        match self {
            MirrorTopology::Simple => 0,
            MirrorTopology::Wilson => 1,
            MirrorTopology::Cascode => 2,
        }
    }
}

/// Estimation-graph node for a [`CurrentMirror`] design.
#[derive(Debug, Clone, Copy)]
struct MirrorNode {
    topology: MirrorTopology,
    iref: f64,
    ratio: f64,
}

impl Component for MirrorNode {
    type Output = CurrentMirror;

    fn kind(&self) -> &'static str {
        "l2.mirror"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .u8(self.topology.fingerprint_tag())
            .f64(self.iref)
            .f64(self.ratio)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l1.id_vov"]
    }

    fn calibrate(
        &self,
        out: &mut CurrentMirror,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l2.mirror",
            &[
                crate::calibrate::ln_or_zero(self.iref),
                crate::calibrate::ln_or_zero(self.ratio),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<CurrentMirror, ApeError> {
        CurrentMirror::design_uncached(graph.technology(), self.topology, self.iref, self.ratio)
    }
}

impl std::fmt::Display for MirrorTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MirrorTopology::Simple => write!(f, "CurrMirr"),
            MirrorTopology::Wilson => write!(f, "Wilson"),
            MirrorTopology::Cascode => write!(f, "Cascode"),
        }
    }
}

/// A sized NMOS current mirror (sinking).
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::basic::{CurrentMirror, MirrorTopology};
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let wilson = CurrentMirror::design(&tech, MirrorTopology::Wilson, 100e-6, 1.0)?;
/// let simple = CurrentMirror::design(&tech, MirrorTopology::Simple, 100e-6, 1.0)?;
/// // Feedback boosts output impedance by roughly gm·ro/2.
/// assert!(wilson.perf.zout_ohm.unwrap() > 10.0 * simple.perf.zout_ohm.unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CurrentMirror {
    /// Selected topology.
    pub topology: MirrorTopology,
    /// Reference current, amperes.
    pub iref: f64,
    /// Output/reference current ratio.
    pub ratio: f64,
    /// Sized devices (2, 3 or 4 depending on topology).
    pub devices: Vec<SizedMos>,
    /// Composed performance attributes.
    pub perf: Performance,
}

impl CurrentMirror {
    /// Sizes a mirror for reference current `iref` and output ratio `ratio`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for non-positive `iref` or `ratio`.
    /// * [`ApeError::Device`] when a device cannot be sized.
    pub fn design(
        tech: &Technology,
        topology: MirrorTopology,
        iref: f64,
        ratio: f64,
    ) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l2.mirror");
        with_thread_graph(tech, |g| {
            g.evaluate(&MirrorNode {
                topology,
                iref,
                ratio,
            })
        })
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(
        tech: &Technology,
        topology: MirrorTopology,
        iref: f64,
        ratio: f64,
    ) -> Result<Self, ApeError> {
        cards(tech)?;
        if !(iref.is_finite() && iref > 0.0) {
            return Err(ApeError::BadSpec {
                param: "iref",
                message: format!("must be positive, got {iref}"),
            });
        }
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(ApeError::BadSpec {
                param: "ratio",
                message: format!("must be positive, got {ratio}"),
            });
        }
        let iout = iref * ratio;
        let m_in = cached_size_for_id_vov_at(tech, false, iref, VOV_MIRROR, L_BIAS, 2.5, 0.0)?;
        let m_out = cached_size_for_id_vov_at(tech, false, iout, VOV_MIRROR, L_BIAS, 2.5, 0.0)?;
        let mut devices = vec![m_in, m_out];
        let zout = match topology {
            MirrorTopology::Simple => 1.0 / m_out.gds,
            MirrorTopology::Wilson => {
                // The feedback loop multiplies ro by the cascode device's
                // intrinsic gain (÷2 from the diode in the loop).
                let m_casc =
                    cached_size_for_id_vov_at(tech, false, iout, VOV_MIRROR, L_BIAS, 1.5, 1.1)?;
                devices.push(m_casc);
                m_casc.gm / (m_casc.gds * m_out.gds) / 2.0
            }
            MirrorTopology::Cascode => {
                let m_casc_ref =
                    cached_size_for_id_vov_at(tech, false, iref, VOV_MIRROR, L_BIAS, 1.1, 1.1)?;
                let m_casc_out =
                    cached_size_for_id_vov_at(tech, false, iout, VOV_MIRROR, L_BIAS, 1.5, 1.1)?;
                devices.push(m_casc_ref);
                devices.push(m_casc_out);
                m_casc_out.gm / (m_casc_out.gds * m_out.gds)
            }
        };
        let perf = Performance {
            ibias_a: Some(iout),
            power_w: tech.vdd * iref,
            gate_area_m2: devices.iter().map(|d| d.gate_area()).sum(),
            zout_ohm: Some(zout),
            ..Performance::default()
        };
        Ok(CurrentMirror {
            topology,
            iref,
            ratio,
            devices,
            perf,
        })
    }

    /// Emits a testbench: reference current pulled from `VDD` through an
    /// ideal source into the mirror input; the output sinks from a 2.5 V
    /// measurement source `VMEAS`, so `I(VMEAS)` is the mirrored current.
    ///
    /// # Errors
    ///
    /// Returns an error if a template card is rejected by the netlist layer.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new(&format!("{}-tb", self.topology));
        let vdd = ckt.node("vdd");
        let inn = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_idc("IREF", vdd, inn, self.iref)?;
        ckt.add_vdc("VMEAS", out, Circuit::GROUND, tech.vdd / 2.0)?;
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        let mos = |ckt: &mut Circuit, name: &str, d, g, s, m: &SizedMos| {
            ckt.add_mosfet(
                name,
                d,
                g,
                s,
                Circuit::GROUND,
                MosPolarity::Nmos,
                &n_name,
                m.geometry,
            )
        };
        match self.topology {
            MirrorTopology::Simple => {
                mos(&mut ckt, "MIN", inn, inn, Circuit::GROUND, &self.devices[0])?;
                mos(
                    &mut ckt,
                    "MOUT",
                    out,
                    inn,
                    Circuit::GROUND,
                    &self.devices[1],
                )?;
            }
            MirrorTopology::Wilson => {
                // in = gate of the output cascode; feedback through the
                // diode at node y.
                let y = ckt.node("y");
                mos(&mut ckt, "MIN", inn, y, Circuit::GROUND, &self.devices[0])?;
                mos(&mut ckt, "MDIODE", y, y, Circuit::GROUND, &self.devices[1])?;
                mos(&mut ckt, "MCASC", out, inn, y, &self.devices[2])?;
            }
            MirrorTopology::Cascode => {
                let y = ckt.node("y");
                let z = ckt.node("z");
                mos(&mut ckt, "MIN", y, y, Circuit::GROUND, &self.devices[0])?;
                mos(&mut ckt, "MCREF", inn, inn, y, &self.devices[2])?;
                mos(&mut ckt, "MOUT", z, y, Circuit::GROUND, &self.devices[1])?;
                mos(&mut ckt, "MCOUT", out, inn, z, &self.devices[3])?;
            }
        }
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::dc_operating_point;

    fn sim_iout(m: &CurrentMirror, tech: &Technology) -> f64 {
        let tb = m.testbench(tech).unwrap();
        let op = dc_operating_point(&tb, tech).unwrap();
        // The mirror pulls current out of VMEAS's + terminal, so the branch
        // current (defined + → − through the source) is negative.
        -op.branch_current("VMEAS").unwrap()
    }

    #[test]
    fn simple_mirror_copies_with_clm_error() {
        let tech = Technology::default_1p2um();
        let m = CurrentMirror::design(&tech, MirrorTopology::Simple, 100e-6, 1.0).unwrap();
        let i = sim_iout(&m, &tech);
        assert!((i - 100e-6).abs() / 100e-6 < 0.2, "iout {i}");
    }

    #[test]
    fn wilson_copies_more_accurately_than_simple() {
        let tech = Technology::default_1p2um();
        let simple = CurrentMirror::design(&tech, MirrorTopology::Simple, 100e-6, 1.0).unwrap();
        let wilson = CurrentMirror::design(&tech, MirrorTopology::Wilson, 100e-6, 1.0).unwrap();
        let ei_simple = (sim_iout(&simple, &tech) - 100e-6).abs();
        let ei_wilson = (sim_iout(&wilson, &tech) - 100e-6).abs();
        assert!(
            ei_wilson < ei_simple,
            "wilson error {ei_wilson} vs simple {ei_simple}"
        );
    }

    #[test]
    fn cascode_output_compliance() {
        let tech = Technology::default_1p2um();
        let m = CurrentMirror::design(&tech, MirrorTopology::Cascode, 50e-6, 1.0).unwrap();
        let i = sim_iout(&m, &tech);
        assert!((i - 50e-6).abs() / 50e-6 < 0.1, "iout {i}");
        assert_eq!(m.devices.len(), 4);
    }

    #[test]
    fn ratio_scales_output() {
        let tech = Technology::default_1p2um();
        let m = CurrentMirror::design(&tech, MirrorTopology::Simple, 20e-6, 4.0).unwrap();
        let i = sim_iout(&m, &tech);
        assert!((i - 80e-6).abs() / 80e-6 < 0.25, "iout {i}");
        assert_eq!(m.perf.ibias_a, Some(80e-6));
    }

    #[test]
    fn area_ordering_by_topology() {
        let tech = Technology::default_1p2um();
        let s = CurrentMirror::design(&tech, MirrorTopology::Simple, 100e-6, 1.0).unwrap();
        let w = CurrentMirror::design(&tech, MirrorTopology::Wilson, 100e-6, 1.0).unwrap();
        let c = CurrentMirror::design(&tech, MirrorTopology::Cascode, 100e-6, 1.0).unwrap();
        assert!(s.perf.gate_area_m2 < w.perf.gate_area_m2);
        assert!(w.perf.gate_area_m2 < c.perf.gate_area_m2);
    }

    #[test]
    fn bad_specs_rejected() {
        let tech = Technology::default_1p2um();
        assert!(CurrentMirror::design(&tech, MirrorTopology::Simple, -1.0, 1.0).is_err());
        assert!(CurrentMirror::design(&tech, MirrorTopology::Simple, 1e-6, 0.0).is_err());
    }
}
