//! DC bias-voltage generator (`DCVolt` in the paper's Table 2).
//!
//! Two stacked diode-connected NMOS devices form a nonlinear divider whose
//! midpoint delivers the requested voltage at the requested branch current.

use super::{cards, L_BIAS};
use crate::attrs::Performance;
use crate::cache::cached_size_for_id_vov_at;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::{threshold, SizedMos};
use ape_netlist::{Circuit, MosPolarity, Technology};

/// Estimation-graph node for a [`DcVolt`] design.
#[derive(Debug, Clone, Copy)]
struct DcVoltNode {
    vout: f64,
    ibias: f64,
}

impl Component for DcVoltNode {
    type Output = DcVolt;

    fn kind(&self) -> &'static str {
        "l2.bias"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new().f64(self.vout).f64(self.ibias).finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l1.id_vov"]
    }

    fn calibrate(&self, out: &mut DcVolt, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l2.bias",
            &[
                crate::calibrate::ln_or_zero(self.vout),
                crate::calibrate::ln_or_zero(self.ibias),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<DcVolt, ApeError> {
        DcVolt::design_uncached(graph.technology(), self.vout, self.ibias)
    }
}

/// A sized DC bias-voltage generator.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::basic::DcVolt;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let bias = DcVolt::design(&tech, 2.5, 100e-6)?;
/// assert!((bias.perf.vout_v.unwrap() - 2.5).abs() < 1e-9);
/// assert!(bias.perf.power_mw() > 0.4); // 5 V · 100 µA
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DcVolt {
    /// Requested output voltage, volts.
    pub vout: f64,
    /// Branch current, amperes.
    pub ibias: f64,
    /// Lower diode device (source at ground).
    pub m_low: SizedMos,
    /// Upper diode device (drain at VDD).
    pub m_high: SizedMos,
    /// Composed performance attributes.
    pub perf: Performance,
}

impl DcVolt {
    /// Sizes the generator for output `vout` at branch current `ibias`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] when `vout` leaves no headroom for either
    ///   diode (needs `vth + 50 mV` on both sides of the rail).
    /// * [`ApeError::Device`] when a device cannot be sized.
    pub fn design(tech: &Technology, vout: f64, ibias: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l2.bias");
        with_thread_graph(tech, |g| g.evaluate(&DcVoltNode { vout, ibias }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, vout: f64, ibias: f64) -> Result<Self, ApeError> {
        let c = cards(tech)?;
        if !(ibias.is_finite() && ibias > 0.0) {
            return Err(ApeError::BadSpec {
                param: "ibias",
                message: format!("must be positive, got {ibias}"),
            });
        }
        // Lower device: vgs = vout (no body effect).
        let vth_low = threshold(c.n, 0.0);
        let vov_low = vout - vth_low;
        // Upper device: vgs = vdd − vout, source rides at vout → body effect.
        let vth_high = threshold(c.n, vout);
        let vov_high = tech.vdd - vout - vth_high;
        if vov_low < 0.05 || vov_high < 0.05 {
            return Err(ApeError::BadSpec {
                param: "vout",
                message: format!(
                    "vout = {vout} V leaves overdrives {vov_low:.2}/{vov_high:.2} V; \
                     both diodes need at least 50 mV"
                ),
            });
        }
        let m_low = cached_size_for_id_vov_at(tech, false, ibias, vov_low, L_BIAS, 2.5, 0.0)?;
        let m_high =
            cached_size_for_id_vov_at(tech, false, ibias, vov_high, L_BIAS, tech.vdd - vout, vout)?;
        let perf = Performance {
            vout_v: Some(vout),
            ibias_a: Some(ibias),
            power_w: tech.vdd * ibias,
            gate_area_m2: m_low.gate_area() + m_high.gate_area(),
            // Looking into the midpoint: two diodes in parallel.
            zout_ohm: Some(1.0 / (m_low.gm + m_high.gm)),
            ..Performance::default()
        };
        Ok(DcVolt {
            vout,
            ibias,
            m_low,
            m_high,
            perf,
        })
    }

    /// Emits a self-contained testbench: `VDD` rail, the two diodes, output
    /// node `out`.
    ///
    /// # Errors
    ///
    /// Returns an error if a template card is rejected by the netlist layer.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("dcvolt-tb");
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        ckt.add_mosfet(
            "MHI",
            vdd,
            vdd,
            out,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.m_high.geometry,
        )?;
        ckt.add_mosfet(
            "MLO",
            out,
            out,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.m_low.geometry,
        )?;
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::dc_operating_point;

    #[test]
    fn estimate_matches_simulation() {
        let tech = Technology::default_1p2um();
        let bias = DcVolt::design(&tech, 2.5, 100e-6).unwrap();
        let tb = bias.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let v_sim = op.voltage(tb.find_node("out").unwrap());
        assert!(
            (v_sim - 2.5).abs() < 0.15,
            "simulated bias voltage {v_sim} vs 2.5"
        );
        let p_sim = op.supply_power(&tb);
        assert!(
            (p_sim - bias.perf.power_w).abs() / bias.perf.power_w < 0.15,
            "power sim {p_sim} vs est {}",
            bias.perf.power_w
        );
    }

    #[test]
    fn rejects_headroom_violations() {
        let tech = Technology::default_1p2um();
        assert!(DcVolt::design(&tech, 0.3, 10e-6).is_err());
        assert!(DcVolt::design(&tech, 4.9, 10e-6).is_err());
        assert!(DcVolt::design(&tech, 2.5, -1.0).is_err());
    }

    #[test]
    fn area_grows_with_current() {
        let tech = Technology::default_1p2um();
        let small = DcVolt::design(&tech, 2.5, 10e-6).unwrap();
        let big = DcVolt::design(&tech, 2.5, 200e-6).unwrap();
        assert!(big.perf.gate_area_m2 > small.perf.gate_area_m2);
    }
}
