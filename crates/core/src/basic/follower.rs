//! Source follower / output buffer.
//!
//! The paper's `Follower` row (Table 2) and the optional output-buffer stage
//! of the op-amps (Table 1 `Buff` column). An NMOS source follower with an
//! NMOS mirror current sink: gain slightly below 1, low output impedance.

use super::{cards, L_BIAS, VOV_MIRROR};
use crate::attrs::Performance;
use crate::cache::cached_size_for_id_vov_at;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::{threshold, SizedMos};
use ape_netlist::{Circuit, MosPolarity, SourceWaveform, Technology};

/// Estimation-graph node for a [`Follower`] design.
#[derive(Debug, Clone, Copy)]
struct FollowerNode {
    ibias: f64,
    cl: f64,
}

impl Component for FollowerNode {
    type Output = Follower;

    fn kind(&self) -> &'static str {
        "l2.follower"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new().f64(self.ibias).f64(self.cl).finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l1.id_vov"]
    }

    fn calibrate(&self, out: &mut Follower, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l2.follower",
            &[
                crate::calibrate::ln_or_zero(self.ibias),
                crate::calibrate::ln_or_zero(self.cl),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<Follower, ApeError> {
        Follower::design_uncached(graph.technology(), self.ibias, self.cl)
    }
}

/// A sized source-follower buffer.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::basic::Follower;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let buf = Follower::design(&tech, 100e-6, 10e-12)?;
/// let a = buf.perf.dc_gain.unwrap();
/// assert!(a > 0.7 && a < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Follower {
    /// Bias current, amperes.
    pub ibias: f64,
    /// Load capacitance, farads.
    pub cl: f64,
    /// Follower device.
    pub driver: SizedMos,
    /// Mirror reference (diode) device.
    pub sink_ref: SizedMos,
    /// Mirror output (sink) device.
    pub sink_out: SizedMos,
    /// Quiescent output voltage, volts.
    pub vout_q: f64,
    /// Input DC bias, volts.
    pub vin_bias: f64,
    /// Composed performance attributes.
    pub perf: Performance,
}

impl Follower {
    /// Sizes the follower for bias current `ibias` driving `cl`, with the
    /// output quiescent point at 40 % of the rail.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for a non-positive bias current.
    /// * [`ApeError::Device`] when a device cannot be sized.
    pub fn design(tech: &Technology, ibias: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l2.follower");
        with_thread_graph(tech, |g| g.evaluate(&FollowerNode { ibias, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, ibias: f64, cl: f64) -> Result<Self, ApeError> {
        let c = cards(tech)?;
        if !(ibias.is_finite() && ibias > 0.0) {
            return Err(ApeError::BadSpec {
                param: "ibias",
                message: format!("must be positive, got {ibias}"),
            });
        }
        let vout_q = 0.4 * tech.vdd;
        // Driver: moderate overdrive for gm (gain ≈ gm/(gm+gmb) wants gm
        // large, area wants it small; 0.25 V is the classic compromise).
        let vov1 = 0.25;
        let driver =
            cached_size_for_id_vov_at(tech, false, ibias, vov1, L_BIAS, tech.vdd - vout_q, vout_q)?;
        let vin_bias = vout_q + threshold(c.n, vout_q) + vov1;
        // Mirror sink.
        let sink_ref = cached_size_for_id_vov_at(tech, false, ibias, VOV_MIRROR, L_BIAS, 1.0, 0.0)?;
        let sink_out =
            cached_size_for_id_vov_at(tech, false, ibias, VOV_MIRROR, L_BIAS, vout_q, 0.0)?;

        let gl = sink_out.gds;
        let a = driver.gm / (driver.gm + driver.gmb + driver.gds + gl);
        let zout = 1.0 / (driver.gm + driver.gmb + driver.gds + gl);
        let c_par = driver.caps.csb + sink_out.caps.cdb;
        let bw = 1.0 / (2.0 * std::f64::consts::PI * zout * (cl + c_par));
        let perf = Performance {
            dc_gain: Some(a),
            bw_hz: Some(bw),
            power_w: tech.vdd * 2.0 * ibias, // reference + output branches
            gate_area_m2: driver.gate_area() + sink_ref.gate_area() + sink_out.gate_area(),
            zout_ohm: Some(zout),
            ibias_a: Some(ibias),
            slew_v_per_s: Some(ibias / (cl + c_par).max(1e-18)),
            ..Performance::default()
        };
        Ok(Follower {
            ibias,
            cl,
            driver,
            sink_ref,
            sink_out,
            vout_q,
            vin_bias,
            perf,
        })
    }

    /// Emits a testbench: `VDD`, AC-driven `VIN`, follower + mirror sink,
    /// output node `out` loaded by `cl`.
    ///
    /// # Errors
    ///
    /// Returns an error if a template card is rejected by the netlist layer.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("follower-tb");
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let bias = ckt.node("bias");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            self.vin_bias,
            1.0,
            SourceWaveform::Dc,
        )?;
        ckt.add_idc("IREF", vdd, bias, self.ibias)?;
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        ckt.add_mosfet(
            "MDRV",
            vdd,
            vin,
            out,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.driver.geometry,
        )?;
        ckt.add_mosfet(
            "MREF",
            bias,
            bias,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.sink_ref.geometry,
        )?;
        ckt.add_mosfet(
            "MSINK",
            out,
            bias,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.sink_out.geometry,
        )?;
        if self.cl > 0.0 {
            ckt.add_capacitor("CL", out, Circuit::GROUND, self.cl)?;
        }
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, measure};

    #[test]
    fn est_vs_sim_gain_and_level() {
        let tech = Technology::default_1p2um();
        let buf = Follower::design(&tech, 100e-6, 10e-12).unwrap();
        let tb = buf.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let v_q = op.voltage(out);
        assert!(
            (v_q - buf.vout_q).abs() < 0.3,
            "quiescent output {v_q} vs design {}",
            buf.vout_q
        );
        let sweep = ac_sweep(&tb, &tech, &op, &[100.0]).unwrap();
        let a_sim = measure::dc_gain(&sweep, out).unwrap();
        let a_est = buf.perf.dc_gain.unwrap();
        assert!(
            (a_sim - a_est).abs() / a_est < 0.1,
            "gain sim {a_sim} vs est {a_est}"
        );
    }

    #[test]
    fn low_output_impedance() {
        let tech = Technology::default_1p2um();
        let buf = Follower::design(&tech, 100e-6, 0.0).unwrap();
        // 1/gm at gm ≈ 2·100µ/0.25 = 0.8 mS → ~1.2 kΩ with gmb.
        let z = buf.perf.zout_ohm.unwrap();
        assert!(z < 3e3, "zout {z}");
    }

    #[test]
    fn power_counts_both_branches() {
        let tech = Technology::default_1p2um();
        let buf = Follower::design(&tech, 100e-6, 0.0).unwrap();
        assert!((buf.perf.power_w - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_bias() {
        let tech = Technology::default_1p2um();
        assert!(Follower::design(&tech, 0.0, 1e-12).is_err());
    }
}
