//! Differential amplifiers: `DiffNMOS` and `DiffCMOS`.
//!
//! Both use an NMOS input pair; they differ in the load:
//!
//! * [`DiffTopology::DiodeLoad`] (`DiffNMOS`) — diode-connected PMOS loads,
//!   gain `−gm_i/gm_l` (modest, set by a transconductance ratio), fully
//!   differential outputs;
//! * [`DiffTopology::MirrorLoad`] (`DiffCMOS`) — PMOS current-mirror load
//!   folding the signal to a single-ended output, realising the full
//!   `Adm ≈ gm_i/(gd_l + gd_i)` of paper equation (5). This topology
//!   doubles as the paper's differential-to-single-ended converter.
//!
//! Paper equations (6)–(7) give the common-mode gain and CMRR, composed
//! here from the sized devices.

use super::{cards, length_for_gain, vov_for_gm_id, L_BIAS};
use crate::attrs::Performance;
use crate::cache::{cached_size_for_gm_id_at, cached_size_for_id_vov_at};
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::{threshold, SizedMos};
use ape_netlist::{Circuit, MosPolarity, SourceWaveform, Technology};

/// Load topology of the differential pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffTopology {
    /// Diode-connected PMOS loads (`DiffNMOS`): gain `−gm_i/gm_l`, ratio-set.
    DiodeLoad,
    /// PMOS current-mirror load (`DiffCMOS`): single-ended output, gain
    /// `gm_i/(gd_i+gd_l)` — also the differential-to-single-ended converter.
    MirrorLoad,
}

impl DiffTopology {
    /// Stable one-byte tag for estimation-graph fingerprints.
    pub(crate) fn fingerprint_tag(&self) -> u8 {
        match self {
            DiffTopology::DiodeLoad => 0,
            DiffTopology::MirrorLoad => 1,
        }
    }
}

/// Estimation-graph node for a [`DiffPair`] design.
#[derive(Debug, Clone, Copy)]
struct DiffPairNode {
    topology: DiffTopology,
    adm: f64,
    itail: f64,
    cl: f64,
    vov_i_sel: f64,
}

impl Component for DiffPairNode {
    type Output = DiffPair;

    fn kind(&self) -> &'static str {
        "l2.diffpair"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .u8(self.topology.fingerprint_tag())
            .f64(self.adm)
            .f64(self.itail)
            .f64(self.cl)
            .f64(self.vov_i_sel)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l1.gm_id", "l1.id_vov"]
    }

    fn calibrate(&self, out: &mut DiffPair, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l2.diffpair",
            &[
                crate::calibrate::ln_or_zero(self.adm),
                crate::calibrate::ln_or_zero(self.itail),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<DiffPair, ApeError> {
        DiffPair::design_uncached(
            graph.technology(),
            self.topology,
            self.adm,
            self.itail,
            self.cl,
            self.vov_i_sel,
        )
    }
}

impl std::fmt::Display for DiffTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffTopology::DiodeLoad => write!(f, "DiffNMOS"),
            DiffTopology::MirrorLoad => write!(f, "DiffCMOS"),
        }
    }
}

/// A sized differential amplifier.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::basic::{DiffPair, DiffTopology};
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let pair = DiffPair::design(&tech, DiffTopology::MirrorLoad, 1000.0, 1e-6, 1e-12)?;
/// assert!(pair.perf.dc_gain.unwrap() > 500.0);
/// assert!(pair.perf.cmrr_db.unwrap() > 60.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiffPair {
    /// Load topology.
    pub topology: DiffTopology,
    /// Requested differential gain magnitude.
    pub adm: f64,
    /// Tail current, amperes.
    pub itail: f64,
    /// Load capacitance, farads.
    pub cl: f64,
    /// Input devices (each carries `itail/2`).
    pub input: SizedMos,
    /// Load devices.
    pub load: SizedMos,
    /// Input common-mode bias, volts.
    pub vcm: f64,
    /// Tail-node conductance assumed for CMRR composition, siemens.
    pub gtail: f64,
    /// Composed performance attributes.
    pub perf: Performance,
}

impl DiffPair {
    /// Sizes a differential amplifier for differential gain magnitude `adm`
    /// at tail current `itail`, driving `cl` single-ended.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for non-positive gain or current.
    /// * [`ApeError::Infeasible`] when `adm` needs more gm than half the
    ///   tail current can deliver, or exceeds the diode-load topology reach.
    pub fn design(
        tech: &Technology,
        topology: DiffTopology,
        adm: f64,
        itail: f64,
        cl: f64,
    ) -> Result<Self, ApeError> {
        Self::design_with_overdrive(tech, topology, adm, itail, cl, 0.25)
    }

    /// Like [`DiffPair::design`] with an explicit input-pair overdrive for
    /// the mirror-loaded topology (the op-amp level trades overdrive for
    /// area under tight budgets). The diode-load topology sets its own
    /// overdrives from the gain ratio and ignores `vov_i`.
    ///
    /// # Errors
    ///
    /// Same as [`DiffPair::design`].
    pub fn design_with_overdrive(
        tech: &Technology,
        topology: DiffTopology,
        adm: f64,
        itail: f64,
        cl: f64,
        vov_i_sel: f64,
    ) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l2.diffpair");
        with_thread_graph(tech, |g| {
            g.evaluate(&DiffPairNode {
                topology,
                adm,
                itail,
                cl,
                vov_i_sel,
            })
        })
    }

    /// [`design_with_overdrive`](Self::design_with_overdrive) without the
    /// graph memo — the node's compute body.
    fn design_uncached(
        tech: &Technology,
        topology: DiffTopology,
        adm: f64,
        itail: f64,
        cl: f64,
        vov_i_sel: f64,
    ) -> Result<Self, ApeError> {
        let c = cards(tech)?;
        if !(adm.is_finite() && adm > 1.0) {
            return Err(ApeError::BadSpec {
                param: "adm",
                message: format!("need |Adm| > 1, got {adm}"),
            });
        }
        if !(itail.is_finite() && itail > 0.0) {
            return Err(ApeError::BadSpec {
                param: "itail",
                message: format!("must be positive, got {itail}"),
            });
        }
        let id = itail / 2.0;
        let vcm = 0.5 * tech.vdd;

        let (input, load, a_est) = match topology {
            DiffTopology::DiodeLoad => {
                // The load gm must sit adm× below the input gm, so push the
                // input toward its weak-inversion cap and derive the load.
                let gm_i = (2.0 * id / 0.12).min(0.8 * super::gm_max(id));
                vov_for_gm_id("DiffNMOS", gm_i, id)?;
                let gm_l = gm_i / adm;
                let vov_l = 2.0 * id / gm_l;
                if vov_l > tech.vdd - 1.5 {
                    return Err(ApeError::Infeasible {
                        component: "DiffNMOS",
                        message: format!(
                            "gain {adm} needs a diode-load overdrive of {vov_l:.2} V; \
                             no headroom — use the mirror-loaded topology"
                        ),
                    });
                }
                // A weak load wants a tiny aspect ratio; realise it with a
                // long channel at minimum width.
                let aspect = gm_l * gm_l / (2.0 * c.p.kp * id);
                let l_load = (tech.wmin / aspect).clamp(L_BIAS, 60e-6);
                let vgs_guess = threshold(c.p, 0.0) + vov_l;
                let mut load =
                    cached_size_for_gm_id_at(tech, true, gm_l, id, l_load, vgs_guess, 0.0)?;
                load = cached_size_for_gm_id_at(tech, true, gm_l, id, l_load, load.vgs.abs(), 0.0)?;
                if load.geometry.w < 0.4 * tech.wmin {
                    return Err(ApeError::Infeasible {
                        component: "DiffNMOS",
                        message: format!(
                            "gain {adm} at {itail:.1e} A needs an unrealisably weak \
                             load (W = {:.2e} m); use the mirror-loaded topology",
                            load.geometry.w
                        ),
                    });
                }
                let vout_q = tech.vdd - load.vgs.abs();
                let input = cached_size_for_gm_id_at(
                    tech,
                    false,
                    gm_i,
                    id,
                    L_BIAS,
                    (vout_q - 1.2).max(0.3),
                    1.2,
                )?;
                let a = input.gm / (load.gm + input.gds + load.gds);
                (input, load, a)
            }
            DiffTopology::MirrorLoad => {
                // Mirror load: Adm = gm_i/(gds_i+gds_l). Choose (vov, L);
                // stretch L so low currents keep manufacturable widths.
                let vov_i = vov_i_sel.clamp(0.05, 1.0);
                let gm_i = 2.0 * id / vov_i;
                vov_for_gm_id("DiffCMOS", gm_i, id)?;
                let lam_sum = c.n.lambda + c.p.lambda;
                let l_gain = length_for_gain(adm, vov_i, lam_sum, tech);
                let l = super::length_for_min_width(
                    super::aspect_for_gm_id(c.n, gm_i, id),
                    l_gain,
                    tech,
                );
                let l_load =
                    super::length_for_min_width(super::aspect_for_id_vov(c.p, id, 0.35), l, tech);
                let input = cached_size_for_gm_id_at(tech, false, gm_i, id, l, vcm - 1.2, 1.2)?;
                let load = cached_size_for_id_vov_at(tech, true, id, 0.35, l_load, 1.0, 0.0)?;
                if input.geometry.w < 0.4 * tech.wmin || load.geometry.w < 0.4 * tech.wmin {
                    return Err(ApeError::Infeasible {
                        component: "DiffCMOS",
                        message: format!(
                            "tail current {itail:.1e} A needs sub-minimum widths                              (input W = {:.2e} m) even at maximum channel length",
                            input.geometry.w
                        ),
                    });
                }
                let a = input.gm / (input.gds + load.gds);
                (input, load, a)
            }
        };

        // Tail conductance: assume the tail is a simple mirror at the same
        // current (the op-amp level replaces this with the real bias network).
        let l_tail =
            super::length_for_min_width(super::aspect_for_id_vov(c.n, itail, 0.35), L_BIAS, tech);
        let tail_dev = cached_size_for_id_vov_at(tech, false, itail, 0.35, l_tail, 1.0, 0.0)?;
        let gtail = tail_dev.gds;

        // Paper eq (6): Acm ≈ g0·gdi / (2·gml·(gdl+gdi)); eq (7):
        // CMRR ≈ 2·gmi·gml/(g0·gdi).
        let cmrr = 2.0 * input.gm * load.gm / (gtail * input.gds);
        let cmrr_db = 20.0 * cmrr.abs().max(1.0).log10();

        let c_par = input.caps.cdb + load.caps.cdb + load.caps.cgd;
        let c_tot = cl + c_par;
        let gout = match topology {
            DiffTopology::DiodeLoad => load.gm + input.gds + load.gds,
            DiffTopology::MirrorLoad => input.gds + load.gds,
        };
        let bw = gout / (2.0 * std::f64::consts::PI * c_tot);
        let signed_gain = match topology {
            DiffTopology::DiodeLoad => -a_est,
            DiffTopology::MirrorLoad => a_est,
        };
        let perf = Performance {
            dc_gain: Some(signed_gain),
            ugf_hz: Some(input.gm / (2.0 * std::f64::consts::PI * c_tot)),
            bw_hz: Some(bw),
            // Standalone component power counts the mirror reference branch
            // plus the tail branch, as the testbench realises them.
            power_w: tech.vdd * 2.0 * itail,
            gate_area_m2: 2.0 * input.gate_area() + 2.0 * load.gate_area(),
            zout_ohm: Some(1.0 / gout),
            cmrr_db: Some(cmrr_db),
            ibias_a: Some(itail),
            slew_v_per_s: Some(itail / c_tot),
            ..Performance::default()
        };
        Ok(DiffPair {
            topology,
            adm,
            itail,
            cl,
            input,
            load,
            vcm,
            gtail,
            perf,
        })
    }

    /// Emits a testbench with a mirror tail, differential AC drive
    /// (`VINP` carries +½, `VINN` −½), output node `out`.
    ///
    /// # Errors
    ///
    /// Returns an error when the technology lacks device cards or the tail
    /// device cannot be sized for this pair's bias.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        self.testbench_mode(tech, false)
    }

    /// Like [`DiffPair::testbench`] but driving both inputs with the same
    /// AC phase, for common-mode gain measurement.
    ///
    /// # Errors
    ///
    /// See [`DiffPair::testbench`].
    pub fn testbench_common_mode(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        self.testbench_mode(tech, true)
    }

    fn testbench_mode(&self, tech: &Technology, common_mode: bool) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new(&format!("{}-tb", self.topology));
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        let outb = ckt.node("outb");
        let tail = ckt.node("tail");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        let (acp, acn) = if common_mode { (1.0, 1.0) } else { (0.5, -0.5) };
        ckt.add_vsource(
            "VINP",
            inp,
            Circuit::GROUND,
            self.vcm,
            acp,
            SourceWaveform::Dc,
        )?;
        ckt.add_vsource(
            "VINN",
            inn,
            Circuit::GROUND,
            self.vcm,
            acn,
            SourceWaveform::Dc,
        )?;
        // Real tail device biased by an ideal mirror reference, so the
        // common-mode rejection is finite as the estimate assumes.
        let bias = ckt.node("bias");
        ckt.add_idc("IBIAS", vdd, bias, self.itail)?;
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        let p_name = tech.pmos().map(|c| c.name.clone()).unwrap_or_default();
        // Tail mirror (same geometry both sides).
        let c = cards(tech)?;
        let l_tail = super::length_for_min_width(
            super::aspect_for_id_vov(c.n, self.itail, 0.35),
            L_BIAS,
            tech,
        );
        let tail_dev = cached_size_for_id_vov_at(tech, false, self.itail, 0.35, l_tail, 1.0, 0.0)?;
        ckt.add_mosfet(
            "MTREF",
            bias,
            bias,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            tail_dev.geometry,
        )?;
        ckt.add_mosfet(
            "MTAIL",
            tail,
            bias,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            tail_dev.geometry,
        )?;
        // Input pair: M1 (inp → outb side), M2 (inn → out side).
        ckt.add_mosfet(
            "M1",
            outb,
            inp,
            tail,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.input.geometry,
        )?;
        ckt.add_mosfet(
            "M2",
            out,
            inn,
            tail,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.input.geometry,
        )?;
        match self.topology {
            DiffTopology::DiodeLoad => {
                for (name, node) in [("ML1", outb), ("ML2", out)] {
                    ckt.add_mosfet(
                        name,
                        node,
                        node,
                        vdd,
                        vdd,
                        MosPolarity::Pmos,
                        &p_name,
                        self.load.geometry,
                    )?;
                }
            }
            DiffTopology::MirrorLoad => {
                ckt.add_mosfet(
                    "ML1",
                    outb,
                    outb,
                    vdd,
                    vdd,
                    MosPolarity::Pmos,
                    &p_name,
                    self.load.geometry,
                )?;
                ckt.add_mosfet(
                    "ML2",
                    out,
                    outb,
                    vdd,
                    vdd,
                    MosPolarity::Pmos,
                    &p_name,
                    self.load.geometry,
                )?;
            }
        }
        if self.cl > 0.0 {
            ckt.add_capacitor("CL", out, Circuit::GROUND, self.cl)?;
            // A fully differential pair needs balanced loading, or the
            // unloaded side dominates the high-frequency response.
            if self.topology == DiffTopology::DiodeLoad {
                ckt.add_capacitor("CLB", outb, Circuit::GROUND, self.cl)?;
            }
        }
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, measure};

    fn sim_adm(pair: &DiffPair, tech: &Technology) -> f64 {
        let tb = pair.testbench(tech).unwrap();
        let op = dc_operating_point(&tb, tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, tech, &op, &[10.0]).unwrap();
        measure::dc_gain(&sweep, out).unwrap()
    }

    #[test]
    fn diff_nmos_gain_est_vs_sim() {
        let tech = Technology::default_1p2um();
        let pair = DiffPair::design(&tech, DiffTopology::DiodeLoad, 10.0, 1e-6, 1e-12).unwrap();
        // The diode-load pair is fully differential: the estimate is the
        // differential-in → differential-out gain, so measure out − outb.
        let tb = pair.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let outb = tb.find_node("outb").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[10.0]).unwrap();
        let a_sim = (sweep.voltage(0, out) - sweep.voltage(0, outb)).norm();
        let a_est = pair.perf.dc_gain.unwrap().abs();
        assert!(
            (a_sim - a_est).abs() / a_est < 0.35,
            "sim {a_sim} vs est {a_est}"
        );
    }

    #[test]
    fn diff_cmos_high_gain() {
        let tech = Technology::default_1p2um();
        let pair = DiffPair::design(&tech, DiffTopology::MirrorLoad, 1000.0, 1e-6, 1e-12).unwrap();
        let a_sim = sim_adm(&pair, &tech);
        let a_est = pair.perf.dc_gain.unwrap();
        assert!(a_sim > 300.0, "sim gain {a_sim} too low");
        assert!(
            (a_sim - a_est).abs() / a_est < 0.6,
            "sim {a_sim} vs est {a_est}"
        );
    }

    #[test]
    fn cmrr_positive_and_large() {
        let tech = Technology::default_1p2um();
        let pair = DiffPair::design(&tech, DiffTopology::MirrorLoad, 500.0, 2e-6, 1e-12).unwrap();
        let tb_dm = pair.testbench(&tech).unwrap();
        let tb_cm = pair.testbench_common_mode(&tech).unwrap();
        let out = tb_dm.find_node("out").unwrap();
        let op_dm = dc_operating_point(&tb_dm, &tech).unwrap();
        let op_cm = dc_operating_point(&tb_cm, &tech).unwrap();
        let adm =
            measure::dc_gain(&ac_sweep(&tb_dm, &tech, &op_dm, &[10.0]).unwrap(), out).unwrap();
        let acm =
            measure::dc_gain(&ac_sweep(&tb_cm, &tech, &op_cm, &[10.0]).unwrap(), out).unwrap();
        let cmrr_sim_db = 20.0 * (adm / acm.max(1e-12)).log10();
        assert!(cmrr_sim_db > 40.0, "sim CMRR {cmrr_sim_db} dB");
    }

    #[test]
    fn infeasible_gain_at_tiny_current() {
        let tech = Technology::default_1p2um();
        // Mirror-load gain 1000 at 10 nA needs gm beyond the weak-inversion
        // limit for the chosen overdrive.
        let r = DiffPair::design(&tech, DiffTopology::MirrorLoad, 1000.0, 10e-9, 0.0);
        assert!(r.is_err());
    }

    #[test]
    fn diode_load_gain_ceiling_reported() {
        let tech = Technology::default_1p2um();
        let r = DiffPair::design(&tech, DiffTopology::DiodeLoad, 500.0, 1e-6, 0.0);
        assert!(matches!(r, Err(ApeError::Infeasible { .. })));
    }

    #[test]
    fn bad_specs_rejected() {
        let tech = Technology::default_1p2um();
        assert!(DiffPair::design(&tech, DiffTopology::DiodeLoad, 0.5, 1e-6, 0.0).is_err());
        assert!(DiffPair::design(&tech, DiffTopology::DiodeLoad, 10.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn power_counts_reference_and_tail() {
        let tech = Technology::default_1p2um();
        let pair = DiffPair::design(&tech, DiffTopology::MirrorLoad, 100.0, 1e-6, 0.0).unwrap();
        assert!((pair.perf.power_w - 10e-6).abs() < 1e-12);
    }
}
