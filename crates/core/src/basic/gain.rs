//! Single-ended gain stages: `GainNMOS`, `GainCMOS`, `GainCMOSH`.
//!
//! Three inverting common-source amplifiers distinguished by their load:
//!
//! * [`GainTopology::NmosLoad`] — NMOS diode (enhancement) load:
//!   `A = −gm1/(gm2+gmb2)`; low gain, wide bandwidth.
//! * [`GainTopology::CmosActive`] — PMOS current-source load:
//!   `A = −gm1/(gds1+gds2)`; the high-gain choice.
//! * [`GainTopology::CmosDiode`] — PMOS diode load ("GainCMOSH"):
//!   `A = −gm1/gm2`; no body effect on the load, lowest power headroom.

use super::{cards, length_for_gain, vov_for_gm_id, L_BIAS, VOV_MIRROR};
use crate::attrs::Performance;
use crate::cache::{cached_size_for_gm_id_at, cached_size_for_id_vov_at};
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::{threshold, SizedMos};
use ape_netlist::{Circuit, MosPolarity, SourceWaveform, Technology};

/// Load topology of a common-source gain stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GainTopology {
    /// NMOS diode load (`GainNMOS`).
    NmosLoad,
    /// PMOS current-source load (`GainCMOS`).
    CmosActive,
    /// PMOS diode load (`GainCMOSH`).
    CmosDiode,
}

impl GainTopology {
    /// Stable one-byte tag for estimation-graph fingerprints.
    pub(crate) fn fingerprint_tag(&self) -> u8 {
        match self {
            GainTopology::NmosLoad => 0,
            GainTopology::CmosActive => 1,
            GainTopology::CmosDiode => 2,
        }
    }
}

/// Estimation-graph node for a [`GainStage`] design.
#[derive(Debug, Clone, Copy)]
struct GainNode {
    topology: GainTopology,
    gain: f64,
    ibias: f64,
    cl: f64,
}

impl Component for GainNode {
    type Output = GainStage;

    fn kind(&self) -> &'static str {
        "l2.gain"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .u8(self.topology.fingerprint_tag())
            .f64(self.gain)
            .f64(self.ibias)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l1.gm_id", "l1.id_vov"]
    }

    fn calibrate(&self, out: &mut GainStage, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l2.gain",
            &[
                crate::calibrate::ln_or_zero(self.gain.abs()),
                crate::calibrate::ln_or_zero(self.ibias),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<GainStage, ApeError> {
        GainStage::design_uncached(
            graph.technology(),
            self.topology,
            self.gain,
            self.ibias,
            self.cl,
        )
    }
}

impl std::fmt::Display for GainTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GainTopology::NmosLoad => write!(f, "GainNMOS"),
            GainTopology::CmosActive => write!(f, "GainCMOS"),
            GainTopology::CmosDiode => write!(f, "GainCMOSH"),
        }
    }
}

/// A sized common-source gain stage.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::basic::{GainStage, GainTopology};
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let stage = GainStage::design(&tech, GainTopology::CmosActive, -19.0, 120e-6, 1e-12)?;
/// let a = stage.perf.dc_gain.unwrap();
/// assert!(a < -15.0 && a > -25.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GainStage {
    /// Load topology.
    pub topology: GainTopology,
    /// Requested voltage gain (negative, inverting).
    pub gain: f64,
    /// Stage bias current, amperes.
    pub ibias: f64,
    /// Load capacitance the stage drives, farads.
    pub cl: f64,
    /// Common-source driver device.
    pub driver: SizedMos,
    /// Load device.
    pub load: SizedMos,
    /// Input DC bias voltage applied to the driver gate, volts.
    pub vin_bias: f64,
    /// Gate bias for a current-source load, volts (`None` for diode loads).
    pub vload_bias: Option<f64>,
    /// Composed performance attributes.
    pub perf: Performance,
}

impl GainStage {
    /// Sizes a gain stage for voltage gain `gain` (negative) at bias
    /// current `ibias`, driving `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for non-negative gain or non-positive bias.
    /// * [`ApeError::Infeasible`] when the gain requires more gm than the
    ///   bias current can deliver, or exceeds the topology's reach.
    pub fn design(
        tech: &Technology,
        topology: GainTopology,
        gain: f64,
        ibias: f64,
        cl: f64,
    ) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l2.gain");
        with_thread_graph(tech, |g| {
            g.evaluate(&GainNode {
                topology,
                gain,
                ibias,
                cl,
            })
        })
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(
        tech: &Technology,
        topology: GainTopology,
        gain: f64,
        ibias: f64,
        cl: f64,
    ) -> Result<Self, ApeError> {
        let c = cards(tech)?;
        if gain >= -1.0 {
            return Err(ApeError::BadSpec {
                param: "gain",
                message: format!("common-source stages invert; need gain < -1, got {gain}"),
            });
        }
        if !(ibias.is_finite() && ibias > 0.0) {
            return Err(ApeError::BadSpec {
                param: "ibias",
                message: format!("must be positive, got {ibias}"),
            });
        }
        let a = gain.abs();
        let vout_q = tech.vdd / 2.0;

        let (driver, load, vin_bias, vload_bias, a_est) = match topology {
            GainTopology::NmosLoad => {
                // Load diode NMOS from VDD: vgs2 = vdd − vout_q, body effect
                // at the output node.
                let vth2 = threshold(c.n, vout_q);
                let vov2 = tech.vdd - vout_q - vth2;
                if vov2 < 0.05 {
                    return Err(ApeError::Infeasible {
                        component: "GainNMOS",
                        message: "no load headroom at mid-rail output".into(),
                    });
                }
                let load = cached_size_for_id_vov_at(
                    tech,
                    false,
                    ibias,
                    vov2,
                    L_BIAS,
                    tech.vdd - vout_q,
                    vout_q,
                )?;
                // Gain −gm1/(gm2+gmb2).
                let gm1 = a * (load.gm + load.gmb);
                vov_for_gm_id("GainNMOS", gm1, ibias)?;
                let driver =
                    cached_size_for_gm_id_at(tech, false, gm1, ibias, L_BIAS, vout_q, 0.0)?;
                let a_est = driver.gm / (load.gm + load.gmb + driver.gds + load.gds);
                (driver, load, driver.vgs, None, a_est)
            }
            GainTopology::CmosActive => {
                // Gain −gm1/(gds1+gds2): choose (vov1, L) to meet it.
                let vov1 = (2.0 / (a * (c.n.lambda + c.p.lambda))).clamp(0.08, 1.5);
                let gm1 = 2.0 * ibias / vov1;
                vov_for_gm_id("GainCMOS", gm1, ibias)?;
                let lam_sum = c.n.lambda + c.p.lambda;
                let l = length_for_gain(a, 2.0 * ibias / gm1, lam_sum, tech);
                let driver = cached_size_for_gm_id_at(tech, false, gm1, ibias, l, vout_q, 0.0)?;
                let load = cached_size_for_id_vov_at(
                    tech,
                    true,
                    ibias,
                    VOV_MIRROR,
                    l,
                    tech.vdd - vout_q,
                    0.0,
                )?;
                let a_est = driver.gm / (driver.gds + load.gds);
                // PMOS gate bias for the requested current.
                let vth_p = threshold(c.p, 0.0);
                let vload = tech.vdd - vth_p - VOV_MIRROR;
                (driver, load, driver.vgs, Some(vload), a_est)
            }
            GainTopology::CmosDiode => {
                // Load diode PMOS: gain −gm1/gm2, no body effect.
                let vov2 = VOV_MIRROR
                    .max(tech.vdd - vout_q - threshold(c.p, 0.0))
                    .min(1.5);
                let load = cached_size_for_id_vov_at(
                    tech,
                    true,
                    ibias,
                    vov2,
                    L_BIAS,
                    tech.vdd - vout_q,
                    0.0,
                )?;
                let gm1 = a * load.gm;
                vov_for_gm_id("GainCMOSH", gm1, ibias)?;
                let driver =
                    cached_size_for_gm_id_at(tech, false, gm1, ibias, L_BIAS, vout_q, 0.0)?;
                let a_est = driver.gm / (load.gm + driver.gds + load.gds);
                (driver, load, driver.vgs, None, a_est)
            }
        };

        // Output pole sets both bandwidth and (for A·f3db) the UGF.
        let c_par = driver.caps.cdb + load.caps.cdb + load.caps.cgd + driver.caps.cgd;
        let c_tot = cl + c_par;
        let gout = match topology {
            GainTopology::NmosLoad => load.gm + load.gmb + driver.gds + load.gds,
            GainTopology::CmosActive => driver.gds + load.gds,
            GainTopology::CmosDiode => load.gm + driver.gds + load.gds,
        };
        let f3db = gout / (2.0 * std::f64::consts::PI * c_tot);
        let ugf = driver.gm / (2.0 * std::f64::consts::PI * c_tot);
        let perf = Performance {
            dc_gain: Some(-a_est),
            ugf_hz: Some(ugf),
            bw_hz: Some(f3db),
            power_w: tech.vdd * ibias,
            gate_area_m2: driver.gate_area() + load.gate_area(),
            zout_ohm: Some(1.0 / gout),
            ibias_a: Some(ibias),
            slew_v_per_s: Some(ibias / c_tot),
            ..Performance::default()
        };
        Ok(GainStage {
            topology,
            gain,
            ibias,
            cl,
            driver,
            load,
            vin_bias,
            vload_bias,
            perf,
        })
    }

    /// Emits a testbench: `VDD`, AC-driven input `VIN`, the stage, and the
    /// load capacitor on node `out`.
    ///
    /// # Errors
    ///
    /// Returns an error if the stage is internally inconsistent (e.g. an
    /// active load without a bias voltage) or a template card is rejected.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new(&format!("{}-tb", self.topology));
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            self.vin_bias,
            1.0,
            SourceWaveform::Dc,
        )?;
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        let p_name = tech.pmos().map(|c| c.name.clone()).unwrap_or_default();
        ckt.add_mosfet(
            "MDRV",
            out,
            vin,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            &n_name,
            self.driver.geometry,
        )?;
        match self.topology {
            GainTopology::NmosLoad => {
                ckt.add_mosfet(
                    "MLOAD",
                    vdd,
                    vdd,
                    out,
                    Circuit::GROUND,
                    MosPolarity::Nmos,
                    &n_name,
                    self.load.geometry,
                )?;
            }
            GainTopology::CmosActive => {
                let vb = ckt.node("pbias");
                let vload_bias = self.vload_bias.ok_or_else(|| ApeError::Infeasible {
                    component: "gain-stage",
                    message: "active load has no bias voltage".to_string(),
                })?;
                ckt.add_vdc("VB", vb, Circuit::GROUND, vload_bias)?;
                ckt.add_mosfet(
                    "MLOAD",
                    out,
                    vb,
                    vdd,
                    vdd,
                    MosPolarity::Pmos,
                    &p_name,
                    self.load.geometry,
                )?;
            }
            GainTopology::CmosDiode => {
                ckt.add_mosfet(
                    "MLOAD",
                    out,
                    out,
                    vdd,
                    vdd,
                    MosPolarity::Pmos,
                    &p_name,
                    self.load.geometry,
                )?;
            }
        }
        if self.cl > 0.0 {
            ckt.add_capacitor("CL", out, Circuit::GROUND, self.cl)?;
        }
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    fn sim_gain(stage: &GainStage, tech: &Technology) -> (f64, f64) {
        let tb = stage.testbench(tech).unwrap();
        let op = dc_operating_point(&tb, tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let freqs = decade_frequencies(10.0, 1e9, 10).unwrap();
        let sweep = ac_sweep(&tb, tech, &op, &freqs).unwrap();
        let a = measure::dc_gain(&sweep, out).unwrap();
        let u = measure::unity_gain_frequency(&sweep, out).unwrap_or(0.0);
        (a, u)
    }

    #[test]
    fn gain_nmos_est_vs_sim() {
        let tech = Technology::default_1p2um();
        let stage = GainStage::design(&tech, GainTopology::NmosLoad, -8.5, 120e-6, 1e-12).unwrap();
        let (a_sim, _) = sim_gain(&stage, &tech);
        let a_est = stage.perf.dc_gain.unwrap().abs();
        assert!(
            (a_sim - a_est).abs() / a_est < 0.3,
            "sim {a_sim} vs est {a_est}"
        );
        assert!((a_est - 8.5).abs() / 8.5 < 0.25, "est {a_est} vs spec 8.5");
    }

    #[test]
    fn gain_cmos_est_vs_sim() {
        let tech = Technology::default_1p2um();
        let stage =
            GainStage::design(&tech, GainTopology::CmosActive, -19.0, 120e-6, 1e-12).unwrap();
        let (a_sim, u_sim) = sim_gain(&stage, &tech);
        let a_est = stage.perf.dc_gain.unwrap().abs();
        assert!(
            (a_sim - a_est).abs() / a_est < 0.5,
            "sim {a_sim} vs est {a_est}"
        );
        let u_est = stage.perf.ugf_hz.unwrap();
        assert!(
            (u_sim - u_est).abs() / u_est < 0.5,
            "ugf sim {u_sim} vs est {u_est}"
        );
    }

    #[test]
    fn gain_cmosh_low_gain() {
        let tech = Technology::default_1p2um();
        let stage = GainStage::design(&tech, GainTopology::CmosDiode, -5.1, 46e-6, 1e-12).unwrap();
        let (a_sim, _) = sim_gain(&stage, &tech);
        assert!((a_sim - 5.1).abs() / 5.1 < 0.35, "sim gain {a_sim}");
    }

    #[test]
    fn bad_specs_rejected() {
        let tech = Technology::default_1p2um();
        assert!(GainStage::design(&tech, GainTopology::NmosLoad, 5.0, 1e-6, 0.0).is_err());
        assert!(GainStage::design(&tech, GainTopology::NmosLoad, -5.0, -1e-6, 0.0).is_err());
        // Gain beyond the weak-inversion gm limit at tiny current.
        assert!(GainStage::design(&tech, GainTopology::NmosLoad, -500.0, 1e-7, 0.0).is_err());
    }

    #[test]
    fn power_is_rail_times_bias() {
        let tech = Technology::default_1p2um();
        let stage =
            GainStage::design(&tech, GainTopology::CmosActive, -20.0, 100e-6, 1e-12).unwrap();
        assert!((stage.perf.power_w - 0.5e-3).abs() < 1e-9);
    }
}
