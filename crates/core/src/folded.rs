//! A second level-3 topology: the folded-cascode OTA.
//!
//! The paper stresses that the hierarchy "allows to easily add new
//! components to APE, making use of lower levels in the structure" (§6).
//! This module exercises that claim: a single-stage folded-cascode
//! operational transconductance amplifier built from the same level-1/2
//! primitives as the Miller two-stage, with its own composition equations:
//!
//! * `UGF = gm₁ / (2π·C_L)` — load-compensated, no Miller capacitor;
//! * `A = gm₁ / g_out` with both output paths cascoded:
//!   `g_out = gds_c·(gds_p+gds₁)/gm_c + gds_nc·gds_n/gm_nc`;
//! * `SR = I_fold / C_L`;
//! * phase margin set by the fold-node pole `gm_c / C_fold`, far above UGF.
//!
//! Topology (NMOS input):
//!
//! ```text
//!  VDD ──┬─────────────┬──────────
//!     MP1 ⊣ (I0+I1)  MP2 ⊣  gate VBCS
//!        x│            y│
//!  in+ ─M1┤  pair  M2├─ in-     fold nodes x,y
//!        x│            y│
//!     MC1 ⊣ (PMOS casc) MC2 ⊣   gate VBCP
//!        d│            out│
//!     MN1 ⊢ diode     MN2 ⊢    bottom mirror
//!  GND ──┴─────────────┴──────────
//! ```

use crate::attrs::Performance;
use crate::basic::{cards, vov_for_gm_id, L_BIAS};
use crate::cache::{cached_size_for_gm_id_at, cached_size_for_id_vov_at};
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::{threshold, SizedMos};
use ape_netlist::{Circuit, MosPolarity, NodeId, SourceWaveform, Technology};

/// Estimation-graph node for a [`FoldedCascodeOta`] design.
#[derive(Debug, Clone, Copy)]
struct FoldedNode {
    spec: FoldedCascodeSpec,
}

impl Component for FoldedNode {
    type Output = FoldedCascodeOta;

    fn kind(&self) -> &'static str {
        "l3.folded"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.spec.gain)
            .f64(self.spec.ugf_hz)
            .f64(self.spec.ibias)
            .f64(self.spec.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l1.gm_id", "l1.id_vov"]
    }

    fn calibrate(
        &self,
        out: &mut FoldedCascodeOta,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l3.folded",
            &[
                crate::calibrate::ln_or_zero(self.spec.gain),
                crate::calibrate::ln_or_zero(self.spec.ugf_hz),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<FoldedCascodeOta, ApeError> {
        FoldedCascodeOta::design_uncached(graph.technology(), self.spec)
    }
}

/// Specification for a folded-cascode OTA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldedCascodeSpec {
    /// Required DC gain magnitude.
    pub gain: f64,
    /// Required unity-gain frequency, hertz.
    pub ugf_hz: f64,
    /// Reference bias current, amperes.
    pub ibias: f64,
    /// Load capacitance, farads (also the compensation).
    pub cl: f64,
}

/// A sized folded-cascode OTA.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::folded::{FoldedCascodeOta, FoldedCascodeSpec};
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let spec = FoldedCascodeSpec { gain: 2000.0, ugf_hz: 10e6, ibias: 10e-6, cl: 2e-12 };
/// let ota = FoldedCascodeOta::design(&tech, spec)?;
/// assert!(ota.perf.dc_gain.unwrap() >= 2000.0 * 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FoldedCascodeOta {
    /// The specification.
    pub spec: FoldedCascodeSpec,
    /// Input pair device.
    pub m_pair: SizedMos,
    /// Tail current sink (carries `2·I0`).
    pub m_tail: SizedMos,
    /// Bias reference diode.
    pub mb1: SizedMos,
    /// PMOS current sources (carry `I0 + I1`).
    pub m_src: SizedMos,
    /// PMOS cascode devices (carry `I1`).
    pub m_casc: SizedMos,
    /// Bottom mirror devices (carry `I1`).
    pub m_mirror: SizedMos,
    /// Bottom NMOS cascode devices (carry `I1`).
    pub m_mcasc: SizedMos,
    /// Pair-side current, amperes.
    pub i0: f64,
    /// Fold-branch current, amperes.
    pub i1: f64,
    /// PMOS source gate bias, volts.
    pub vb_src: f64,
    /// PMOS cascode gate bias, volts.
    pub vb_casc: f64,
    /// Bottom NMOS cascode gate bias, volts.
    pub vb_ncasc: f64,
    /// Composed performance attributes.
    pub perf: Performance,
}

impl FoldedCascodeOta {
    /// Sizes a folded-cascode OTA for `spec`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for non-positive requirements.
    /// * [`ApeError::Infeasible`] when the gain or gm allocation fails.
    pub fn design(tech: &Technology, spec: FoldedCascodeSpec) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l3.folded");
        with_thread_graph(tech, |g| g.evaluate(&FoldedNode { spec }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, spec: FoldedCascodeSpec) -> Result<Self, ApeError> {
        let c = cards(tech)?;
        if !(spec.gain > 1.0 && spec.ugf_hz > 0.0 && spec.ibias > 0.0 && spec.cl > 0.0)
            || !(spec.gain.is_finite()
                && spec.ugf_hz.is_finite()
                && spec.ibias.is_finite()
                && spec.cl.is_finite())
        {
            return Err(ApeError::BadSpec {
                param: "spec",
                message: format!("{spec:?} has a non-positive or non-finite field"),
            });
        }
        // Load compensation with 15 % UGF margin.
        let gm1 = 2.0 * std::f64::consts::PI * 1.15 * spec.ugf_hz * spec.cl;
        let vov = 0.25;
        let i0 = gm1 * vov / 2.0;
        vov_for_gm_id("FoldedCascode", gm1, i0)?;
        let i1 = i0;

        // Both output paths are cascoded, so moderate channel lengths give
        // gain in the thousands and the bottom mirror stays fast (its
        // devices are small → high mirror pole, which protects the UGF).
        let l_mirror = crate::basic::length_for_min_width(
            crate::basic::aspect_for_id_vov(c.n, i1, vov),
            L_BIAS,
            tech,
        );

        // Devices. Pair: gm1 at i0 (fold nodes sit ~1 vgs_p below VDD).
        let l_pair = crate::basic::length_for_min_width(
            crate::basic::aspect_for_gm_id(c.n, gm1, i0),
            tech.lmin.max(1.2e-6),
            tech,
        );
        let m_pair = cached_size_for_gm_id_at(tech, false, gm1, i0, l_pair, tech.vdd / 2.0, 1.0)?;
        let l_bias = |id: f64, card: &ape_netlist::MosModelCard| {
            crate::basic::length_for_min_width(
                crate::basic::aspect_for_id_vov(card, id, 0.35),
                L_BIAS,
                tech,
            )
        };
        let mb1 = cached_size_for_id_vov_at(
            tech,
            false,
            spec.ibias,
            0.35,
            l_bias(spec.ibias, c.n),
            1.1,
            0.0,
        )?;
        let m_tail = cached_size_for_id_vov_at(
            tech,
            false,
            2.0 * i0,
            0.35,
            l_bias(2.0 * i0, c.n),
            1.0,
            0.0,
        )?;
        // PMOS sources carry i0+i1; long-ish channel for output resistance.
        let m_src = cached_size_for_id_vov_at(
            tech,
            true,
            i0 + i1,
            0.35,
            l_bias(i0 + i1, c.p).max(2.0 * L_BIAS),
            1.0,
            0.0,
        )?;
        let m_casc = cached_size_for_id_vov_at(tech, true, i1, 0.3, l_bias(i1, c.p), 1.0, 0.5)?;
        let m_mirror = cached_size_for_id_vov_at(tech, false, i1, vov, l_mirror, 0.3, 0.0)?;
        let m_mcasc = cached_size_for_id_vov_at(
            tech,
            false,
            i1,
            0.3,
            crate::basic::length_for_min_width(
                crate::basic::aspect_for_id_vov(c.n, i1, 0.3),
                L_BIAS,
                tech,
            ),
            1.0,
            0.3,
        )?;

        // Gate biases.
        let vth_p = threshold(c.p, 0.0);
        let vb_src = tech.vdd - vth_p - 0.35;
        let vb_casc = tech.vdd - 2.0 * (vth_p + 0.35);
        let vb_ncasc = threshold(c.n, 0.3) + 0.3 + 0.3;

        // Composition: both paths cascoded.
        let g_up = m_casc.gds * (m_src.gds + m_pair.gds) / m_casc.gm;
        let g_down = m_mcasc.gds * m_mirror.gds / m_mcasc.gm;
        let g_out = g_down + g_up;
        let a = gm1 / g_out;
        let ugf = gm1 / (2.0 * std::f64::consts::PI * spec.cl);
        let power = tech.vdd * (spec.ibias + 2.0 * (i0 + i1));
        let area = 2.0 * m_pair.gate_area()
            + m_tail.gate_area()
            + mb1.gate_area()
            + 2.0 * m_src.gate_area()
            + 2.0 * m_casc.gate_area()
            + 2.0 * m_mirror.gate_area()
            + 2.0 * m_mcasc.gate_area();
        let perf = Performance {
            dc_gain: Some(a),
            ugf_hz: Some(ugf),
            bw_hz: Some(ugf / a),
            power_w: power,
            gate_area_m2: area,
            zout_ohm: Some(1.0 / g_out),
            slew_v_per_s: Some(i1 / spec.cl),
            ibias_a: Some(spec.ibias),
            ..Performance::default()
        };
        Ok(FoldedCascodeOta {
            spec,
            m_pair,
            m_tail,
            mb1,
            m_src,
            m_casc,
            m_mirror,
            m_mcasc,
            i0,
            i1,
            vb_src,
            vb_casc,
            vb_ncasc,
            perf,
        })
    }

    /// Emits the OTA into `ckt` with prefixed element names. Gate biases for
    /// the PMOS branch come from ideal sources added per instance.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    #[allow(clippy::too_many_arguments)]
    pub fn build_into(
        &self,
        ckt: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        inp: NodeId,
        inn: NodeId,
        out: NodeId,
        vdd: NodeId,
    ) -> Result<(), ApeError> {
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        let p_name = tech.pmos().map(|c| c.name.clone()).unwrap_or_default();
        let gnd = Circuit::GROUND;
        let bias = ckt.fresh_node(&format!("{prefix}_bias"));
        let tail = ckt.fresh_node(&format!("{prefix}_tail"));
        let x = ckt.fresh_node(&format!("{prefix}_x"));
        let y = ckt.fresh_node(&format!("{prefix}_y"));
        let d = ckt.fresh_node(&format!("{prefix}_d"));
        let a1 = ckt.fresh_node(&format!("{prefix}_a1"));
        let a2 = ckt.fresh_node(&format!("{prefix}_a2"));
        let vbs = ckt.fresh_node(&format!("{prefix}_vbs"));
        let vbc = ckt.fresh_node(&format!("{prefix}_vbc"));
        let vbn = ckt.fresh_node(&format!("{prefix}_vbn"));

        ckt.add_idc(&format!("{prefix}.IB"), vdd, bias, self.spec.ibias)?;
        ckt.add_vdc(&format!("{prefix}.VBS"), vbs, gnd, self.vb_src)?;
        ckt.add_vdc(&format!("{prefix}.VBC"), vbc, gnd, self.vb_casc)?;
        ckt.add_vdc(&format!("{prefix}.VBN"), vbn, gnd, self.vb_ncasc)?;
        ckt.add_mosfet(
            &format!("{prefix}.MB1"),
            bias,
            bias,
            gnd,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.mb1.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.MTAIL"),
            tail,
            bias,
            gnd,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_tail.geometry,
        )?;
        // Input pair folded at x and y. The x side feeds the bottom diode,
        // whose mirror action inverts once more — so the x-side gate (M1)
        // is the overall non-inverting input.
        ckt.add_mosfet(
            &format!("{prefix}.M1"),
            x,
            inp,
            tail,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_pair.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.M2"),
            y,
            inn,
            tail,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_pair.geometry,
        )?;
        // PMOS current sources into the fold nodes.
        ckt.add_mosfet(
            &format!("{prefix}.MP1"),
            x,
            vbs,
            vdd,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.m_src.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.MP2"),
            y,
            vbs,
            vdd,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.m_src.geometry,
        )?;
        // PMOS cascodes down to the mirror.
        ckt.add_mosfet(
            &format!("{prefix}.MC1"),
            d,
            vbc,
            x,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.m_casc.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.MC2"),
            out,
            vbc,
            y,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.m_casc.geometry,
        )?;
        // Bottom wide-swing cascoded mirror: diode connection at d drives
        // the bottom gates; VBN biases the cascodes.
        ckt.add_mosfet(
            &format!("{prefix}.MNC1"),
            d,
            vbn,
            a1,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_mcasc.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.MNC2"),
            out,
            vbn,
            a2,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_mcasc.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.MN1"),
            a1,
            d,
            gnd,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_mirror.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.MN2"),
            a2,
            d,
            gnd,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m_mirror.geometry,
        )?;
        Ok(())
    }

    /// Open-loop testbench with differential AC drive and the load cap.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_open_loop(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("folded-cascode-tb");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        let vcm = 0.5 * tech.vdd;
        ckt.add_vsource("VINP", inp, Circuit::GROUND, vcm, 0.5, SourceWaveform::Dc)?;
        ckt.add_vsource("VINN", inn, Circuit::GROUND, vcm, -0.5, SourceWaveform::Dc)?;
        self.build_into(&mut ckt, tech, "X1", inp, inn, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.spec.cl)?;
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    fn spec() -> FoldedCascodeSpec {
        FoldedCascodeSpec {
            gain: 2000.0,
            ugf_hz: 10e6,
            ibias: 10e-6,
            cl: 2e-12,
        }
    }

    #[test]
    fn estimates_meet_spec() {
        let tech = Technology::default_1p2um();
        let ota = FoldedCascodeOta::design(&tech, spec()).unwrap();
        assert!(ota.perf.dc_gain.unwrap() >= 2000.0 * 0.7);
        let u = ota.perf.ugf_hz.unwrap();
        assert!((u - 10e6).abs() / 10e6 < 0.25, "est ugf {u}");
    }

    #[test]
    fn open_loop_sim_tracks_estimate() {
        let tech = Technology::default_1p2um();
        let ota = FoldedCascodeOta::design(&tech, spec()).unwrap();
        let tb = ota.testbench_open_loop(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(100.0, 2e9, 8).unwrap()).unwrap();
        let a_sim = measure::dc_gain(&sweep, out).unwrap();
        let a_est = ota.perf.dc_gain.unwrap();
        assert!(
            (a_sim - a_est).abs() / a_est < 0.7,
            "gain sim {a_sim} vs est {a_est}"
        );
        let u_sim = measure::unity_gain_frequency(&sweep, out).unwrap();
        let u_est = ota.perf.ugf_hz.unwrap();
        assert!(
            (u_sim - u_est).abs() / u_est < 0.5,
            "ugf sim {u_sim} vs est {u_est}"
        );
        // The single-stage OTA is load-compensated: phase margin is high
        // but physical (a polarity bug would show up as PM ≈ 260°).
        let pm = measure::phase_margin(&sweep, out).unwrap();
        assert!((55.0..115.0).contains(&pm), "pm {pm}");
    }

    #[test]
    fn higher_gain_than_two_stage_at_same_power_class() {
        use crate::basic::MirrorTopology;
        use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
        let tech = Technology::default_1p2um();
        let ota = FoldedCascodeOta::design(&tech, spec()).unwrap();
        let two_stage = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            OpAmpSpec {
                gain: 2000.0,
                ugf_hz: 10e6,
                area_max_m2: 1e-8,
                ibias: 10e-6,
                zout_ohm: None,
                cl: 2e-12,
            },
        )
        .unwrap();
        // The cascode reaches its gain in one stage; its output impedance is
        // far higher than the two-stage's second stage.
        assert!(ota.perf.zout_ohm.unwrap() > 5.0 * two_stage.perf.zout_ohm.unwrap());
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        let mut s = spec();
        s.cl = 0.0;
        assert!(FoldedCascodeOta::design(&tech, s).is_err());
        let mut s = spec();
        s.gain = f64::NAN;
        assert!(FoldedCascodeOta::design(&tech, s).is_err());
    }
}
