#![deny(missing_docs)]
//! The estimation graph: a memoized component DAG over the APE hierarchy.
//!
//! The paper composes performance bottom-up through four levels
//! (transistor → basic component → op-amp → module). This module makes
//! that composition an explicit graph: every design step is a
//! [`Component`] node whose inputs are condensed into a bit-exact
//! [fingerprint](Component::fingerprint), and the [`EstimationGraph`]
//! memoizes each node's result under `(kind, fingerprint)`. Parent nodes
//! declare their [children](Component::children), so the graph knows the
//! DAG shape and can report per-node traffic.
//!
//! Two properties follow directly from bit-exact fingerprints:
//!
//! * **Incremental re-estimation.** Re-running a design after a spec or
//!   design-variable delta recomputes only the nodes whose inputs
//!   actually changed — every clean subtree is answered from the memo.
//!   There is no explicit dirty-marking pass: a node is "dirty" exactly
//!   when its fingerprint is new to the graph.
//! * **History independence.** A memoized value is a pure function of
//!   its fingerprint, so a warm (incremental) evaluation is bit-identical
//!   to a cold one. The equivalence suite and `ape-check`'s delta fuzzing
//!   prove this across every topology and module.
//!
//! Per-node hits, misses, and dirty recomputes are counted in
//! [`NodeStats`] and mirrored to `ape-probe` counters
//! (`ape.graph.<kind>.hit` / `.miss` / `.dirty`), so `APE_TRACE=summary`
//! shows exactly which levels of the hierarchy the memo is saving.
//!
//! # Sharing memos across threads
//!
//! A thread's graph is private (single-threaded, `Rc`-based), which is
//! the right shape for one sweep but wastes work in a long-lived service:
//! every worker re-derives the same subtrees from cold. A [`SharedMemo`]
//! is a process-wide, sharded read-through layer behind any number of
//! per-thread graphs: a local miss consults the shared store before
//! computing, and every computed value is published back. Because a
//! memoized value is a pure function of its bit-exact fingerprint, a
//! value computed by one thread is bit-identical to what any other
//! thread would have computed — reading through the shared store cannot
//! change results, only skip work. Attach one with
//! [`set_thread_shared_memo`] (done by `ape-farm` workers when
//! `FarmConfig::shared_graph` is set) and watch
//! `ape.graph.<kind>.shared_hit` to see cross-thread reuse.

use crate::error::ApeError;
use ape_calib::Calibration;
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::{size_for_gm_id_at, size_for_id_vov_at, SizedMos};
use ape_netlist::{MosModelCard, Technology};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default per-kind memo capacity: comfortably above what a whole table
/// reproduction touches per node kind, small enough that a million-point
/// sweep cannot grow a worker's graph without bound.
pub const DEFAULT_KIND_CAPACITY: usize = 4096;

/// A node in the estimation graph.
///
/// Implementors condense every input that influences the result into
/// [`fingerprint`](Self::fingerprint) (bit-exactly — use
/// [`Fingerprint::f64`]), and perform the actual design work in
/// [`compute`](Self::compute), recursing into child components through the
/// graph so their results are memoized too.
///
/// The bound technology is *not* part of a node's fingerprint: a graph is
/// constructed for one [`Technology`] and the thread-shared graph is
/// re-created whenever the technology fingerprint changes.
pub trait Component {
    /// The memoized result type. Cloned out of the memo on a hit, so keep
    /// it cheap to clone (all APE results are plain data). `Send + Sync`
    /// so values can be published to a cross-thread [`SharedMemo`].
    type Output: Clone + Send + Sync + 'static;

    /// Stable node-kind name, e.g. `"l2.diffpair"`. One kind must map to
    /// one `Output` type; kinds are also the unit of capacity bounding and
    /// per-node statistics.
    fn kind(&self) -> &'static str;

    /// Bit-exact condensation of every input that influences the result.
    fn fingerprint(&self) -> u64;

    /// The kinds of child nodes this component evaluates through the
    /// graph (empty for leaves). Declared statically so reports can show
    /// the DAG shape.
    fn children(&self) -> &'static [&'static str] {
        &[]
    }

    /// Designs/estimates this node from its inputs. Called only on a memo
    /// miss; must be a pure function of the fingerprinted inputs plus the
    /// graph's technology.
    ///
    /// # Errors
    ///
    /// Propagates the underlying design error. Errors are **not**
    /// memoized — a failing node is recomputed on every request, matching
    /// the old sizing-cache contract.
    fn compute(&self, graph: &EstimationGraph) -> Result<Self::Output, ApeError>;

    /// Applies this node's calibration corrections to a freshly computed
    /// output. Runs between [`compute`](Self::compute) and memoization, so
    /// what the memo holds *is* the calibrated value — sound because the
    /// calibration table's fingerprint folds into every memo key (local
    /// and shared), and an identity table applies no multiplications at
    /// all, keeping bit-identity with uncalibrated evaluation.
    ///
    /// The default is a no-op: L1 sizing nodes share their device models
    /// with the simulator bit-for-bit, so only composition nodes override
    /// this.
    ///
    /// # Errors
    ///
    /// A correction producing a non-finite value must surface as a typed
    /// error ([`ApeError::NonFinite`]); calibrate errors abort evaluation
    /// *before* any memo insert, so a hostile table cannot poison the
    /// memo.
    fn calibrate(&self, _out: &mut Self::Output, _cal: &Calibration) -> Result<(), ApeError> {
        Ok(())
    }
}

/// Per-kind traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Requests answered from the thread-local memo.
    pub hits: usize,
    /// Requests answered from an attached [`SharedMemo`] (another thread
    /// computed the value first).
    pub shared_hits: usize,
    /// Requests that ran [`Component::compute`].
    pub misses: usize,
    /// The subset of misses that hit a kind which already held entries —
    /// i.e. recomputes caused by changed inputs rather than a cold graph.
    pub dirty: usize,
    /// Entries dropped to hold the per-kind capacity bound.
    pub evictions: usize,
}

impl NodeStats {
    /// Total requests served.
    pub fn total(&self) -> usize {
        self.hits + self.shared_hits + self.misses
    }

    /// Fraction of requests answered from a memo — local or shared —
    /// (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.hits + self.shared_hits) as f64 / self.total() as f64
        }
    }

    /// Element-wise sum, for aggregating kinds into graph totals.
    #[must_use]
    pub fn merged(&self, other: &NodeStats) -> NodeStats {
        NodeStats {
            hits: self.hits + other.hits,
            shared_hits: self.shared_hits + other.shared_hits,
            misses: self.misses + other.misses,
            dirty: self.dirty + other.dirty,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// Snapshot of one kind's memo state, as returned by
/// [`EstimationGraph::stats`].
#[derive(Debug, Clone)]
pub struct KindStats {
    /// The node kind.
    pub kind: &'static str,
    /// Child kinds the component declared.
    pub children: &'static [&'static str],
    /// Entries currently memoized.
    pub len: usize,
    /// Traffic counters.
    pub stats: NodeStats,
}

struct KindMemo {
    entries: HashMap<u64, Rc<dyn Any>>,
    stats: NodeStats,
    children: &'static [&'static str],
    /// Key prefix for this `(technology, kind)` pair in an attached
    /// [`SharedMemo`]; kinds are hashed (not pointer-compared) so two
    /// graphs agree on the tag regardless of where the `&'static str`
    /// lives.
    shared_tag: u64,
    hit_ctr: &'static str,
    shared_hit_ctr: &'static str,
    miss_ctr: &'static str,
    dirty_ctr: &'static str,
}

impl KindMemo {
    fn new(
        kind: &'static str,
        children: &'static [&'static str],
        tech_fp: u64,
        calib_fp: u64,
    ) -> Self {
        KindMemo {
            entries: HashMap::new(),
            stats: NodeStats::default(),
            children,
            // The calibration fingerprint folds into the tag, so entries
            // published under one table can never answer a lookup under
            // another (re-registering a table invalidates by key, not by
            // flushing).
            shared_tag: Fingerprint::new()
                .u64(tech_fp)
                .u64(calib_fp)
                .str(kind)
                .finish(),
            hit_ctr: interned_counter(kind, "hit"),
            shared_hit_ctr: interned_counter(kind, "shared_hit"),
            miss_ctr: interned_counter(kind, "miss"),
            dirty_ctr: interned_counter(kind, "dirty"),
        }
    }
}

/// Returns a `'static` counter name `ape.graph.<kind>.<event>`, leaking
/// each distinct name at most once per process (the set of kinds is small
/// and fixed, so the leak is bounded).
fn interned_counter(kind: &str, event: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let name = format!("ape.graph.{kind}.{event}");
    let table = INTERNED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut table = match table.lock() {
        Ok(t) => t,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&s) = table.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    table.insert(name, leaked);
    leaked
}

/// Number of independently locked shards in a [`SharedMemo`]. A power of
/// two comfortably above any realistic worker count, so concurrent
/// lookups rarely contend on one lock.
const SHARED_SHARDS: usize = 16;

/// Default total entry capacity of a [`SharedMemo`] (spread over its
/// shards): an order of magnitude above the per-thread default so a
/// service's resident store outlives any single sweep.
pub const DEFAULT_SHARED_CAPACITY: usize = 64 * 1024;

/// Lifetime counters of a [`SharedMemo`] (monotonic, racy reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedMemoStats {
    /// Lookups answered from the shared store.
    pub hits: u64,
    /// Lookups that found nothing (the caller went on to compute).
    pub misses: u64,
    /// Values published into the store.
    pub inserts: u64,
    /// Entries dropped to hold a shard's capacity bound.
    pub evictions: u64,
}

type SharedShard = HashMap<(u64, u64), Arc<dyn Any + Send + Sync>>;

/// A process-wide, sharded memo store shared by many per-thread
/// [`EstimationGraph`]s.
///
/// Keys are `(shared_tag, fingerprint)` where the tag folds the
/// technology fingerprint with the node kind, so one store can serve
/// multiple tenants' technologies at once without cross-talk. Values are
/// type-erased `Arc`s; a downcast mismatch (possible only under a hash
/// collision between kinds) is treated as a miss, never an error.
///
/// Sharing is sound for the same reason per-thread memoization is:
/// every value is a pure function of its bit-exact key, so a value
/// computed on any thread is bit-identical to a local recompute. Each
/// shard holds at most `capacity / SHARED_SHARDS` entries and drops its
/// whole generation when full — recomputes repopulate it losslessly.
pub struct SharedMemo {
    shards: Vec<Mutex<SharedShard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for SharedMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemo")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for SharedMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedMemo {
    /// An empty store with [`DEFAULT_SHARED_CAPACITY`] total entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SHARED_CAPACITY)
    }

    /// An empty store holding at most `capacity` entries across all
    /// shards (minimum one per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedMemo {
            shards: (0..SHARED_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            shard_capacity: (capacity / SHARED_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, tag: u64, fp: u64) -> &Mutex<SharedShard> {
        // Mix both halves so sequential fingerprints spread; the shard
        // count divides the mixed value, not the raw fingerprint.
        let mixed = (tag ^ fp).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 32) as usize % SHARED_SHARDS]
    }

    fn lookup(&self, tag: u64, fp: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        let shard = self.shard(tag, fp);
        let guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let found = guard.get(&(tag, fp)).cloned();
        drop(guard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn insert(&self, tag: u64, fp: u64, value: Arc<dyn Any + Send + Sync>) {
        let shard = self.shard(tag, fp);
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        if guard.len() >= self.shard_capacity && !guard.contains_key(&(tag, fp)) {
            // Generation drop, same argument as the per-kind memo:
            // recomputes are bit-identical, so no recency bookkeeping.
            let dropped = guard.len() as u64;
            guard.clear();
            self.evictions.fetch_add(dropped, Ordering::Relaxed);
            ape_probe::counter("ape.graph.shared.evict", dropped);
        }
        if guard.insert((tag, fp), value).is_none() {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total entries resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters (racy snapshot).
    pub fn stats(&self) -> SharedMemoStats {
        SharedMemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// One-line human-readable summary.
    pub fn report(&self) -> String {
        let s = self.stats();
        let total = s.hits + s.misses;
        let rate = if total == 0 {
            0.0
        } else {
            100.0 * s.hits as f64 / total as f64
        };
        format!(
            "shared memo: {} entries, {} hits / {} misses ({rate:.1}% hit rate), {} inserts, {} evicted",
            self.len(),
            s.hits,
            s.misses,
            s.inserts,
            s.evictions
        )
    }
}

/// A memoized estimation graph bound to one technology.
///
/// Cheap to create; estimator entry points normally share one per thread
/// via [`with_thread_graph`] so consecutive designs — annealing moves,
/// sweep neighbors — reuse each other's clean subtrees. Optionally backed
/// by a cross-thread [`SharedMemo`] consulted on local misses.
pub struct EstimationGraph {
    tech: Technology,
    tech_fp: u64,
    kinds: RefCell<BTreeMap<&'static str, KindMemo>>,
    kind_capacity: usize,
    shared: Option<Arc<SharedMemo>>,
    /// Correction table applied by [`Component::calibrate`]; `None` (and
    /// `calib_fp == 0`) for uncalibrated estimation.
    calib: Option<Arc<Calibration>>,
    calib_fp: u64,
}

impl std::fmt::Debug for EstimationGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimationGraph")
            .field("tech_fp", &self.tech_fp)
            .field("calib_fp", &self.calib_fp)
            .field("kinds", &self.kinds.borrow().len())
            .field("nodes", &self.len())
            .finish()
    }
}

impl EstimationGraph {
    /// Creates an empty graph for `tech` with the default per-kind
    /// capacity.
    pub fn new(tech: &Technology) -> Self {
        Self::with_kind_capacity(tech, DEFAULT_KIND_CAPACITY)
    }

    /// Creates an empty graph holding at most `kind_capacity` memoized
    /// results per node kind (minimum 1). When a kind fills up, its whole
    /// generation is dropped at once — sound because a recompute is
    /// bit-identical to the dropped entry, and per-kind so that churn in
    /// one level (e.g. thousands of annealing candidates) cannot evict
    /// hot entries at another.
    pub fn with_kind_capacity(tech: &Technology, kind_capacity: usize) -> Self {
        EstimationGraph {
            tech: tech.clone(),
            tech_fp: tech.fingerprint(),
            kinds: RefCell::new(BTreeMap::new()),
            kind_capacity: kind_capacity.max(1),
            shared: None,
            calib: None,
            calib_fp: 0,
        }
    }

    /// Creates an empty graph backed by `memo`: local misses read through
    /// the shared store, and computed values are published back to it.
    pub fn with_shared(tech: &Technology, memo: Arc<SharedMemo>) -> Self {
        let mut g = Self::new(tech);
        g.shared = Some(memo);
        g
    }

    /// Creates an empty graph that applies `calib` inside every node (see
    /// [`Component::calibrate`]). The table's content fingerprint folds
    /// into all memo keys.
    pub fn with_calibration(tech: &Technology, calib: Arc<Calibration>) -> Self {
        let mut g = Self::new(tech);
        g.calib_fp = calib.fingerprint();
        g.calib = Some(calib);
        g
    }

    /// Attaches both a shared store and a calibration table.
    pub fn with_shared_and_calibration(
        tech: &Technology,
        memo: Arc<SharedMemo>,
        calib: Option<Arc<Calibration>>,
    ) -> Self {
        let mut g = Self::new(tech);
        g.shared = Some(memo);
        g.calib_fp = calib.as_ref().map_or(0, |c| c.fingerprint());
        g.calib = calib;
        g
    }

    /// The attached cross-thread store, if any.
    pub fn shared_memo(&self) -> Option<&Arc<SharedMemo>> {
        self.shared.as_ref()
    }

    /// The applied calibration table, if any.
    pub fn calibration(&self) -> Option<&Arc<Calibration>> {
        self.calib.as_ref()
    }

    /// Content fingerprint of the applied calibration table (0 when
    /// uncalibrated). Part of every memo key.
    pub fn calibration_fingerprint(&self) -> u64 {
        self.calib_fp
    }

    /// The bound technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Fingerprint of the bound technology.
    pub fn technology_fingerprint(&self) -> u64 {
        self.tech_fp
    }

    /// The per-kind capacity bound (entries, not bytes).
    pub fn kind_capacity(&self) -> usize {
        self.kind_capacity
    }

    /// Model card lookup on the bound technology.
    ///
    /// # Errors
    ///
    /// [`ApeError::MissingModel`] when the technology lacks the card.
    pub fn card(&self, pmos: bool) -> Result<&MosModelCard, ApeError> {
        if pmos {
            self.tech.pmos().ok_or(ApeError::MissingModel("PMOS"))
        } else {
            self.tech.nmos().ok_or(ApeError::MissingModel("NMOS"))
        }
    }

    /// Evaluates `component`, answering from the memo when its
    /// `(kind, fingerprint)` was seen before and computing (then
    /// memoizing) otherwise. Nested child evaluations through the same
    /// graph are fine — no memo lock is held while
    /// [`Component::compute`] runs.
    ///
    /// # Errors
    ///
    /// Propagates [`Component::compute`]'s error; errors are not memoized.
    pub fn evaluate<C: Component>(&self, component: &C) -> Result<C::Output, ApeError> {
        let kind = component.kind();
        let fp = component.fingerprint();
        let shared_tag = {
            let mut kinds = self.kinds.borrow_mut();
            let memo = kinds.entry(kind).or_insert_with(|| {
                KindMemo::new(kind, component.children(), self.tech_fp, self.calib_fp)
            });
            if let Some(found) = memo.entries.get(&fp) {
                if let Some(out) = found.downcast_ref::<C::Output>() {
                    memo.stats.hits += 1;
                    ape_probe::counter("ape.graph.hit", 1);
                    ape_probe::counter(memo.hit_ctr, 1);
                    return Ok(out.clone());
                }
            }
            memo.shared_tag
        };
        // Local miss: another thread may have computed this node already.
        if let Some(store) = &self.shared {
            if let Some(found) = store.lookup(shared_tag, fp) {
                if let Some(out) = found.downcast_ref::<C::Output>() {
                    let out = out.clone();
                    let mut kinds = self.kinds.borrow_mut();
                    if let Some(memo) = kinds.get_mut(kind) {
                        memo.stats.shared_hits += 1;
                        ape_probe::counter("ape.graph.shared.hit", 1);
                        ape_probe::counter(memo.shared_hit_ctr, 1);
                        Self::insert_local(memo, self.kind_capacity, fp, Rc::new(out.clone()));
                    }
                    return Ok(out);
                }
            }
        }
        {
            let mut kinds = self.kinds.borrow_mut();
            let memo = kinds.entry(kind).or_insert_with(|| {
                KindMemo::new(kind, component.children(), self.tech_fp, self.calib_fp)
            });
            memo.stats.misses += 1;
            ape_probe::counter("ape.graph.miss", 1);
            ape_probe::counter(memo.miss_ctr, 1);
            if !memo.entries.is_empty() {
                memo.stats.dirty += 1;
                ape_probe::counter("ape.graph.dirty", 1);
                ape_probe::counter(memo.dirty_ctr, 1);
            }
        }
        // The memo lock is released: compute may recurse into evaluate()
        // for child nodes of this same graph.
        let mut out = component.compute(self)?;
        // Corrections apply before memoization so memos hold calibrated
        // values — keys include the table fingerprint, so calibrated and
        // uncalibrated entries can never alias. A calibrate error aborts
        // here, before any insert: hostile tables cannot poison the memo.
        if let Some(cal) = &self.calib {
            component.calibrate(&mut out, cal)?;
        }
        if let Some(store) = &self.shared {
            store.insert(shared_tag, fp, Arc::new(out.clone()));
            ape_probe::counter("ape.graph.shared.insert", 1);
        }
        let mut kinds = self.kinds.borrow_mut();
        let memo = kinds.entry(kind).or_insert_with(|| {
            KindMemo::new(kind, component.children(), self.tech_fp, self.calib_fp)
        });
        Self::insert_local(memo, self.kind_capacity, fp, Rc::new(out.clone()));
        Ok(out)
    }

    fn insert_local(memo: &mut KindMemo, capacity: usize, fp: u64, value: Rc<dyn Any>) {
        if memo.entries.len() >= capacity && !memo.entries.contains_key(&fp) {
            // Generation drop: recomputes are bit-identical, so clearing
            // the kind wholesale needs no recency bookkeeping.
            let dropped = memo.entries.len();
            memo.entries.clear();
            memo.stats.evictions += dropped;
            ape_probe::counter("ape.graph.evict", dropped as u64);
        }
        memo.entries.insert(fp, value);
    }

    /// Per-kind snapshots, sorted by kind name.
    pub fn stats(&self) -> Vec<KindStats> {
        self.kinds
            .borrow()
            .iter()
            .map(|(kind, memo)| KindStats {
                kind,
                children: memo.children,
                len: memo.entries.len(),
                stats: memo.stats,
            })
            .collect()
    }

    /// Traffic counters summed across all kinds.
    pub fn totals(&self) -> NodeStats {
        self.kinds
            .borrow()
            .values()
            .fold(NodeStats::default(), |acc, memo| acc.merged(&memo.stats))
    }

    /// Total memoized results across all kinds.
    pub fn len(&self) -> usize {
        self.kinds
            .borrow()
            .values()
            .map(|memo| memo.entries.len())
            .sum()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized result (statistics are kept).
    pub fn clear(&self) {
        for memo in self.kinds.borrow_mut().values_mut() {
            memo.entries.clear();
        }
    }

    /// Human-readable per-node traffic summary, e.g.:
    ///
    /// ```text
    /// estimation graph: 3 kinds, 21 nodes, 61 hits / 29 misses (67.8% hit rate), 8 dirty, 0 evicted
    ///   l1.id_vov: 12 nodes, 40 hits / 16 misses, 4 dirty  <- leaf
    ///   l2.diffpair: 2 nodes, 6 hits / 2 misses, 1 dirty  <- l1.gm_id, l1.id_vov
    /// ```
    pub fn report(&self) -> String {
        let totals = self.totals();
        let mut out = format!(
            "estimation graph: {} kinds, {} nodes, {} hits + {} shared / {} misses ({:.1}% hit rate), {} dirty, {} evicted",
            self.kinds.borrow().len(),
            self.len(),
            totals.hits,
            totals.shared_hits,
            totals.misses,
            100.0 * totals.hit_rate(),
            totals.dirty,
            totals.evictions
        );
        for k in self.stats() {
            let deps = if k.children.is_empty() {
                "leaf".to_string()
            } else {
                k.children.join(", ")
            };
            out.push_str(&format!(
                "\n  {}: {} nodes, {} hits + {} shared / {} misses, {} dirty  <- {}",
                k.kind,
                k.len,
                k.stats.hits,
                k.stats.shared_hits,
                k.stats.misses,
                k.stats.dirty,
                deps
            ));
        }
        if let Some(store) = &self.shared {
            out.push('\n');
            out.push_str(&store.report());
        }
        out
    }
}

thread_local! {
    /// One shared graph slot per thread, tagged with the fingerprints of
    /// the technology *and calibration table* it was built for. Estimator
    /// entry points route through it so repeated (sub)designs reuse
    /// memoized nodes, as the paper's §4.1 object store does —
    /// generalised to every level.
    static CURRENT: RefCell<Option<(u64, u64, Rc<EstimationGraph>)>> = const { RefCell::new(None) };
    /// Cross-thread store this thread's graphs attach to at creation;
    /// installed by pool workers via [`set_thread_shared_memo`].
    static SHARED_OVERRIDE: RefCell<Option<Arc<SharedMemo>>> = const { RefCell::new(None) };
    /// Calibration table this thread's graphs apply; installed via
    /// [`set_thread_calibration`] (pool workers assert it per job).
    static CALIB_OVERRIDE: RefCell<Option<Arc<Calibration>>> = const { RefCell::new(None) };
}

/// Runs `f` against this thread's shared graph for `tech`, creating it on
/// first use and replacing it when the technology fingerprint — or the
/// installed calibration table's fingerprint — changes. A [`SharedMemo`]
/// installed via [`set_thread_shared_memo`] and a [`Calibration`]
/// installed via [`set_thread_calibration`] are attached to every graph
/// created here.
///
/// The slot's borrow is released before `f` runs, so nested
/// `with_thread_graph` calls (an op-amp node designing a diff pair which
/// sizes transistors) all see the same graph instance.
pub fn with_thread_graph<R>(tech: &Technology, f: impl FnOnce(&EstimationGraph) -> R) -> R {
    let fp = tech.fingerprint();
    let cal_fp = CALIB_OVERRIDE.with(|c| c.borrow().as_ref().map_or(0, |cal| cal.fingerprint()));
    let graph = CURRENT.with(|slot| {
        let mut slot = slot.borrow_mut();
        match &*slot {
            Some((have, have_cal, graph)) if *have == fp && *have_cal == cal_fp => Rc::clone(graph),
            _ => {
                let shared = SHARED_OVERRIDE.with(|s| s.borrow().clone());
                let calib = CALIB_OVERRIDE.with(|c| c.borrow().clone());
                let graph = Rc::new(match (shared, calib) {
                    (Some(memo), calib) => {
                        EstimationGraph::with_shared_and_calibration(tech, memo, calib)
                    }
                    (None, Some(cal)) => EstimationGraph::with_calibration(tech, cal),
                    (None, None) => EstimationGraph::new(tech),
                });
                *slot = Some((fp, cal_fp, Rc::clone(&graph)));
                graph
            }
        }
    });
    f(&graph)
}

/// Installs (or removes) the [`SharedMemo`] this thread's graphs read
/// through, dropping any existing thread graph so the setting takes
/// effect on the next evaluation. Farm workers call this once at pool
/// start when `FarmConfig::shared_graph` is enabled — which is also what
/// removes the per-worker warm-up cost: the first job on every other
/// worker finds the first worker's subtrees in the shared store instead
/// of cold-computing them.
pub fn set_thread_shared_memo(memo: Option<Arc<SharedMemo>>) {
    CURRENT.with(|slot| *slot.borrow_mut() = None);
    SHARED_OVERRIDE.with(|s| *s.borrow_mut() = memo);
}

/// The [`SharedMemo`] this thread's graphs attach to, if any.
pub fn thread_shared_memo() -> Option<Arc<SharedMemo>> {
    SHARED_OVERRIDE.with(|s| s.borrow().clone())
}

/// Installs `memo` like [`set_thread_shared_memo`] — but only when it
/// differs (by `Arc` identity) from what is already installed, preserving
/// this thread's warm graph when nothing changes.
///
/// This is the per-task idiom on shared executor threads: a worker serves
/// jobs from many sources (farm jobs, `evaluate_many` fan-outs), each of
/// which asserts its memo before evaluating. Consecutive tasks from the
/// same source keep the thread's memoized subtrees; a task from a
/// different source swaps stores and pays one graph rebuild.
pub fn ensure_thread_shared_memo(memo: Option<Arc<SharedMemo>>) {
    let same = SHARED_OVERRIDE.with(|s| match (&*s.borrow(), &memo) {
        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
        (None, None) => true,
        _ => false,
    });
    if !same {
        set_thread_shared_memo(memo);
    }
}

/// Installs (or removes) the [`Calibration`] this thread's graphs apply.
/// The current thread graph keeps running until the next
/// [`with_thread_graph`] call notices the fingerprint change and rebuilds
/// — entries under the old table stay keyed to it and can never answer a
/// calibrated lookup (or vice versa).
pub fn set_thread_calibration(calib: Option<Arc<Calibration>>) {
    CALIB_OVERRIDE.with(|c| *c.borrow_mut() = calib);
}

/// The [`Calibration`] this thread's graphs apply, if any.
pub fn thread_calibration() -> Option<Arc<Calibration>> {
    CALIB_OVERRIDE.with(|c| c.borrow().clone())
}

/// Installs `calib` like [`set_thread_calibration`] — but only when its
/// *content fingerprint* differs from what is already installed. Compared
/// by fingerprint (not `Arc` identity) so a table reloaded from disk that
/// fits bit-identically keeps this thread's warm graph.
pub fn ensure_thread_calibration(calib: Option<Arc<Calibration>>) {
    let same = CALIB_OVERRIDE.with(|c| match (&*c.borrow(), &calib) {
        (Some(a), Some(b)) => a.fingerprint() == b.fingerprint(),
        (None, None) => true,
        _ => false,
    });
    if !same {
        set_thread_calibration(calib);
    }
}

/// Evaluates independent components as executor tasks, returning results
/// in input order.
///
/// Each task re-installs the submitting thread's [`SharedMemo`] (via
/// [`ensure_thread_shared_memo`]) and cancellation token on whichever
/// worker runs it, evaluates through that worker's thread graph, and
/// publishes shared-eligible subtrees — so concurrent lanes warm each
/// other exactly as sequential evaluation warms later iterations.
/// Because every node is a pure memoized function of its fingerprint,
/// the results are bit-identical to a sequential
/// `components.iter().map(|c| with_thread_graph(tech, |g| g.evaluate(c)))`
/// loop at any worker count (gated by `graph_equivalence.rs`).
///
/// With zero executor workers (single-core boxes) or a single component
/// this *is* that sequential loop — same thread, same graph, same order.
pub fn evaluate_many<C>(
    exec: &ape_exec::Executor,
    tech: &Technology,
    components: &[C],
) -> Vec<Result<C::Output, ApeError>>
where
    C: Component + Sync,
{
    if components.len() <= 1 || exec.workers() == 0 {
        return components
            .iter()
            .map(|c| with_thread_graph(tech, |g| g.evaluate(c)))
            .collect();
    }
    ape_probe::counter("ape.graph.evaluate_many", 1);
    ape_probe::counter("ape.graph.evaluate_many_tasks", components.len() as u64);
    let memo = thread_shared_memo();
    let calib = thread_calibration();
    let token = crate::cancel::current();
    let mut results: Vec<Option<Result<C::Output, ApeError>>> = Vec::new();
    results.resize_with(components.len(), || None);
    exec.scope(|s| {
        for (c, slot) in components.iter().zip(results.iter_mut()) {
            let memo = memo.clone();
            let calib = calib.clone();
            let token = token.clone();
            s.spawn(move || {
                // Carry the submitter's cancellation across the executor
                // boundary; the guard restores the worker's own token.
                let _cancel_guard = token.map(crate::cancel::set_current);
                ensure_thread_shared_memo(memo);
                ensure_thread_calibration(calib);
                *slot = Some(with_thread_graph(tech, |g| g.evaluate(c)));
            });
        }
    });
    // Every slot is written before `scope` returns; the fallback is
    // unreachable but keeps the collection panic-free.
    results
        .into_iter()
        .map(|r| r.unwrap_or(Err(ApeError::Cancelled)))
        .collect()
}

/// Per-kind snapshots of this thread's shared graph (empty when none
/// exists yet).
pub fn thread_graph_stats() -> Vec<KindStats> {
    CURRENT.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|(_, _, g)| g.stats())
            .unwrap_or_default()
    })
}

/// Traffic totals of this thread's shared graph (zero when none exists
/// yet).
pub fn thread_graph_totals() -> NodeStats {
    CURRENT.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|(_, _, g)| g.totals())
            .unwrap_or_default()
    })
}

/// Total memoized results in this thread's shared graph.
pub fn thread_graph_len() -> usize {
    CURRENT.with(|slot| slot.borrow().as_ref().map(|(_, _, g)| g.len()).unwrap_or(0))
}

/// [`EstimationGraph::report`] for this thread's shared graph. Replaces
/// the old `shared_cache_report()`.
pub fn graph_report() -> String {
    CURRENT.with(|slot| match &*slot.borrow() {
        Some((_, _, g)) => g.report(),
        None => "estimation graph: unused".into(),
    })
}

/// Drops this thread's shared graph entirely (nodes and statistics).
pub fn reset_thread_graph() {
    CURRENT.with(|slot| *slot.borrow_mut() = None);
}

/// Level-1 node: size a device for a `(gm, Id)` target at explicit biases.
#[derive(Debug, Clone, Copy)]
pub struct SizeForGmId {
    /// `true` for PMOS, `false` for NMOS.
    pub pmos: bool,
    /// Target transconductance, siemens.
    pub gm: f64,
    /// Target drain current, amperes.
    pub id: f64,
    /// Channel length, meters.
    pub l: f64,
    /// Drain-source bias, volts.
    pub vds: f64,
    /// Source-bulk bias, volts.
    pub vsb: f64,
}

impl Component for SizeForGmId {
    type Output = SizedMos;

    fn kind(&self) -> &'static str {
        "l1.gm_id"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .bool(self.pmos)
            .f64(self.gm)
            .f64(self.id)
            .f64(self.l)
            .f64(self.vds)
            .f64(self.vsb)
            .finish()
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<SizedMos, ApeError> {
        let card = graph.card(self.pmos)?;
        size_for_gm_id_at(card, self.gm, self.id, self.l, self.vds, self.vsb)
            .map_err(ApeError::from)
    }
}

/// Level-1 node: size a device for an `(Id, Vov)` target at explicit
/// biases.
#[derive(Debug, Clone, Copy)]
pub struct SizeForIdVov {
    /// `true` for PMOS, `false` for NMOS.
    pub pmos: bool,
    /// Target drain current, amperes.
    pub id: f64,
    /// Target overdrive voltage, volts.
    pub vov: f64,
    /// Channel length, meters.
    pub l: f64,
    /// Drain-source bias, volts.
    pub vds: f64,
    /// Source-bulk bias, volts.
    pub vsb: f64,
}

impl Component for SizeForIdVov {
    type Output = SizedMos;

    fn kind(&self) -> &'static str {
        "l1.id_vov"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .bool(self.pmos)
            .f64(self.id)
            .f64(self.vov)
            .f64(self.l)
            .f64(self.vds)
            .f64(self.vsb)
            .finish()
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<SizedMos, ApeError> {
        let card = graph.card(self.pmos)?;
        size_for_id_vov_at(card, self.id, self.vov, self.l, self.vds, self.vsb)
            .map_err(ApeError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: f64) -> SizeForIdVov {
        SizeForIdVov {
            pmos: false,
            id,
            vov: 0.35,
            l: 2.4e-6,
            vds: 1.2,
            vsb: 0.0,
        }
    }

    #[test]
    fn repeat_evaluations_hit() {
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::new(&tech);
        let a = graph.evaluate(&node(10e-6)).unwrap();
        let b = graph.evaluate(&node(10e-6)).unwrap();
        assert_eq!(a.geometry, b.geometry);
        let t = graph.totals();
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 1);
        assert_eq!(t.dirty, 0);
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn changed_inputs_are_dirty_recomputes() {
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::new(&tech);
        graph.evaluate(&node(10e-6)).unwrap();
        graph.evaluate(&node(20e-6)).unwrap();
        let t = graph.totals();
        assert_eq!(t.misses, 2);
        // The second miss found the kind populated: an input-change
        // recompute, not a cold start.
        assert_eq!(t.dirty, 1);
    }

    #[test]
    fn memoized_results_are_bit_identical_to_direct_solves() {
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::new(&tech);
        let warm = {
            graph.evaluate(&node(50e-6)).unwrap();
            graph.evaluate(&node(50e-6)).unwrap()
        };
        let direct =
            size_for_id_vov_at(tech.nmos().unwrap(), 50e-6, 0.35, 2.4e-6, 1.2, 0.0).unwrap();
        assert_eq!(warm.geometry, direct.geometry);
        assert_eq!(warm.vgs.to_bits(), direct.vgs.to_bits());
    }

    #[test]
    fn errors_are_not_memoized() {
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::new(&tech);
        let bad = SizeForGmId {
            pmos: false,
            gm: 1e-6,
            id: 1e-3,
            l: 2.4e-6,
            vds: 2.5,
            vsb: 0.0,
        };
        assert!(graph.evaluate(&bad).is_err());
        assert!(graph.evaluate(&bad).is_err());
        assert_eq!(graph.totals().misses, 2);
        assert!(graph.is_empty());
    }

    #[test]
    fn kind_capacity_drops_a_generation() {
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::with_kind_capacity(&tech, 3);
        assert_eq!(graph.kind_capacity(), 3);
        for (i, id) in [10e-6, 20e-6, 40e-6, 80e-6].iter().enumerate() {
            graph.evaluate(&node(*id)).unwrap();
            assert!(graph.len() <= 3, "len {} after insert {i}", graph.len());
        }
        let t = graph.totals();
        assert_eq!(t.misses, 4);
        // The fourth insert found the kind full and dropped the whole
        // generation (3 entries) before memoizing itself.
        assert_eq!(t.evictions, 3);
        // Dropped points re-solve...
        graph.evaluate(&node(10e-6)).unwrap();
        assert_eq!(graph.totals().misses, 5);
        // ...while the newest (80 µA, memoized after the drop) still hits.
        graph.evaluate(&node(80e-6)).unwrap();
        assert_eq!(graph.totals().hits, 1);
        assert!(graph.report().contains("evicted"));
    }

    #[test]
    fn eviction_is_per_kind() {
        // Filling one kind must not evict another kind's entries.
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::with_kind_capacity(&tech, 2);
        let gm_node = SizeForGmId {
            pmos: false,
            gm: 100e-6,
            id: 10e-6,
            l: 2.4e-6,
            vds: 2.5,
            vsb: 0.0,
        };
        graph.evaluate(&gm_node).unwrap();
        for id in [10e-6, 20e-6, 40e-6, 80e-6] {
            graph.evaluate(&node(id)).unwrap();
        }
        // l1.id_vov churned past its bound; l1.gm_id still hits.
        graph.evaluate(&gm_node).unwrap();
        let by_kind = graph.stats();
        let gm = by_kind.iter().find(|k| k.kind == "l1.gm_id").unwrap();
        assert_eq!(gm.stats.hits, 1);
        assert_eq!(gm.stats.evictions, 0);
    }

    #[test]
    fn clear_keeps_stats_and_resets_entries() {
        let tech = Technology::default_1p2um();
        let graph = EstimationGraph::with_kind_capacity(&tech, 2);
        graph.evaluate(&node(10e-6)).unwrap();
        graph.evaluate(&node(20e-6)).unwrap();
        graph.clear();
        assert!(graph.is_empty());
        assert_eq!(graph.totals().misses, 2);
        // A cleared kind starts a fresh generation: no phantom evictions.
        graph.evaluate(&node(40e-6)).unwrap();
        graph.evaluate(&node(80e-6)).unwrap();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.totals().evictions, 0);
    }

    #[test]
    fn thread_graph_is_shared_and_resettable() {
        reset_thread_graph();
        let tech = Technology::default_1p2um();
        let a = with_thread_graph(&tech, |g| g.evaluate(&node(10e-6))).unwrap();
        let b = with_thread_graph(&tech, |g| g.evaluate(&node(10e-6))).unwrap();
        assert_eq!(a.geometry, b.geometry);
        assert_eq!(thread_graph_totals().hits, 1);
        assert!(thread_graph_len() >= 1);
        assert!(graph_report().contains("l1.id_vov"));
        reset_thread_graph();
        assert_eq!(thread_graph_totals().total(), 0);
        assert_eq!(graph_report(), "estimation graph: unused");
    }

    #[test]
    fn technology_change_replaces_the_thread_graph() {
        reset_thread_graph();
        let tech = Technology::default_1p2um();
        with_thread_graph(&tech, |g| g.evaluate(&node(10e-6))).unwrap();
        let mut other = tech.clone();
        other.vdd += 0.5;
        with_thread_graph(&other, |g| {
            assert_eq!(g.technology_fingerprint(), other.fingerprint());
            assert!(g.is_empty());
        });
        reset_thread_graph();
    }

    #[test]
    fn shared_memo_read_through_is_bit_identical() {
        let tech = Technology::default_1p2um();
        let store = Arc::new(SharedMemo::new());
        let a = EstimationGraph::with_shared(&tech, store.clone());
        let b = EstimationGraph::with_shared(&tech, store.clone());
        let cold = a.evaluate(&node(10e-6)).unwrap();
        // Graph `b` never computed this node: it reads through the store.
        let warm = b.evaluate(&node(10e-6)).unwrap();
        assert_eq!(cold.geometry, warm.geometry);
        assert_eq!(cold.vgs.to_bits(), warm.vgs.to_bits());
        assert_eq!(b.totals().shared_hits, 1);
        assert_eq!(b.totals().misses, 0, "no recompute behind the store");
        let s = store.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.hits, 1);
        assert!(store.report().contains("hit rate"));
        // The shared value is now in b's local memo too: a second request
        // is a plain local hit, no store traffic.
        b.evaluate(&node(10e-6)).unwrap();
        assert_eq!(b.totals().hits, 1);
        assert_eq!(store.stats().hits, 1);
    }

    #[test]
    fn shared_memo_isolates_technologies() {
        let store = Arc::new(SharedMemo::new());
        let tech = Technology::default_1p2um();
        let mut other = tech.clone();
        other.vdd += 0.5;
        let a = EstimationGraph::with_shared(&tech, store.clone());
        let b = EstimationGraph::with_shared(&other, store.clone());
        a.evaluate(&node(10e-6)).unwrap();
        // Same node fingerprint, different technology: must not be served
        // from the other tenant's entry.
        b.evaluate(&node(10e-6)).unwrap();
        assert_eq!(b.totals().shared_hits, 0);
        assert_eq!(b.totals().misses, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn shared_memo_capacity_drops_generations() {
        let store = Arc::new(SharedMemo::with_capacity(0)); // 1 entry/shard
        let tech = Technology::default_1p2um();
        let g = EstimationGraph::with_shared(&tech, store.clone());
        for id in [10e-6, 20e-6, 40e-6, 80e-6] {
            g.evaluate(&node(id)).unwrap();
        }
        let s = store.stats();
        assert_eq!(s.inserts, 4);
        // With one slot per shard, any two nodes landing on one shard
        // evicted a generation; at minimum the store stayed bounded.
        assert!(store.len() <= SHARED_SHARDS);
    }

    #[test]
    fn shared_memo_is_concurrent() {
        let store = Arc::new(SharedMemo::new());
        let tech = Technology::default_1p2um();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = store.clone();
            let tech = tech.clone();
            handles.push(std::thread::spawn(move || {
                let g = EstimationGraph::with_shared(&tech, store);
                (0..16)
                    .map(|i| g.evaluate(&node((1 + i) as f64 * 5e-6)).unwrap().geometry)
                    .collect::<Vec<_>>()
            }));
        }
        let mut results = handles.into_iter().map(|h| h.join().unwrap());
        let first = results.next().unwrap();
        for r in results {
            assert_eq!(r, first, "all threads see bit-identical geometries");
        }
        let s = store.stats();
        // 64 evaluations of 16 distinct nodes: at most 16 computed fresh
        // per interleaving, and with any overlap some were shared.
        assert_eq!(store.len(), 16);
        assert!(s.inserts >= 16);
    }

    #[test]
    fn thread_shared_memo_attaches_to_new_graphs() {
        reset_thread_graph();
        let tech = Technology::default_1p2um();
        let store = Arc::new(SharedMemo::new());
        set_thread_shared_memo(Some(store.clone()));
        with_thread_graph(&tech, |g| {
            assert!(g.shared_memo().is_some());
            g.evaluate(&node(10e-6)).unwrap();
        });
        assert_eq!(store.stats().inserts, 1);
        assert!(thread_shared_memo().is_some());
        set_thread_shared_memo(None);
        with_thread_graph(&tech, |g| assert!(g.shared_memo().is_none()));
        reset_thread_graph();
    }

    #[test]
    fn nested_with_thread_graph_reenters_the_same_graph() {
        reset_thread_graph();
        let tech = Technology::default_1p2um();
        with_thread_graph(&tech, |outer| {
            outer.evaluate(&node(10e-6)).unwrap();
            // Re-entry (as an L2 compute would do) must observe the same
            // memo, not deadlock or create a second graph.
            with_thread_graph(&tech, |inner| {
                inner.evaluate(&node(10e-6)).unwrap();
            });
        });
        let t = thread_graph_totals();
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 1);
        reset_thread_graph();
    }
}
