//! Comparator and flash analog-to-digital converter (paper Table 5 row
//! `adc`, Figure 3e).
//!
//! The 4-bit flash ADC is a resistor ladder of `2^b` taps and `2^b − 1`
//! comparators. The thermometer-to-binary encoder is digital logic and is
//! substituted by an ideal Rust function (documented in `DESIGN.md`): the
//! analog estimation problem the paper studies — comparator delay, area and
//! power — is untouched by the substitution.

use crate::attrs::Performance;
use crate::basic::MirrorTopology;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, NodeId, SourceWaveform, Technology};
use ape_spice::dc_operating_point;

/// Estimation-graph node for a [`Comparator`] design.
#[derive(Debug, Clone, Copy)]
struct ComparatorNode {
    overdrive: f64,
    t_delay: f64,
}

impl Component for ComparatorNode {
    type Output = Comparator;

    fn kind(&self) -> &'static str {
        "l4.comparator"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.overdrive)
            .f64(self.t_delay)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut Comparator,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.comparator",
            &[
                crate::calibrate::ln_or_zero(self.overdrive),
                crate::calibrate::ln_or_zero(self.t_delay),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<Comparator, ApeError> {
        Comparator::design_uncached(graph.technology(), self.overdrive, self.t_delay)
    }
}

/// Estimation-graph node for a [`FlashAdc`] design.
#[derive(Debug, Clone, Copy)]
struct FlashAdcNode {
    bits: u32,
    t_delay: f64,
}

impl Component for FlashAdcNode {
    type Output = FlashAdc;

    fn kind(&self) -> &'static str {
        "l4.adc"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .u64(u64::from(self.bits))
            .f64(self.t_delay)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l4.comparator"]
    }

    fn calibrate(&self, out: &mut FlashAdc, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.adc",
            &[
                f64::from(self.bits),
                crate::calibrate::ln_or_zero(self.t_delay),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<FlashAdc, ApeError> {
        FlashAdc::design_uncached(graph.technology(), self.bits, self.t_delay)
    }
}

/// A clocked-less (continuous) comparator: an op-amp run open loop.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::Comparator;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let cmp = Comparator::design(&tech, 0.1, 2e-6)?; // 100 mV overdrive, 2 µs
/// assert!(cmp.perf.delay_s.unwrap() <= 2e-6 * 1.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Comparator {
    /// Worst-case input overdrive the delay is specified at, volts.
    pub overdrive: f64,
    /// The internal amplifier.
    pub opamp: OpAmp,
    /// Composed performance; `delay_s` is the response time estimate.
    pub perf: Performance,
}

impl Comparator {
    /// Designs a comparator that resolves an `overdrive`-volt input within
    /// `t_delay` seconds.
    ///
    /// The delay budget splits into a slewing phase across half the supply
    /// and a regeneration/settling phase; the required slew rate maps to an
    /// op-amp UGF through `SR = 2π·UGF·Vov`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for non-positive overdrive or delay.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, overdrive: f64, t_delay: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.comparator");
        with_thread_graph(tech, |g| g.evaluate(&ComparatorNode { overdrive, t_delay }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, overdrive: f64, t_delay: f64) -> Result<Self, ApeError> {
        if !(overdrive.is_finite() && overdrive > 0.0) {
            return Err(ApeError::BadSpec {
                param: "overdrive",
                message: format!("must be positive, got {overdrive}"),
            });
        }
        if !(t_delay.is_finite() && t_delay > 0.0) {
            return Err(ApeError::BadSpec {
                param: "t_delay",
                message: format!("must be positive, got {t_delay}"),
            });
        }
        // Budget: 70 % of the delay slews half the rail, the rest settles.
        // At small overdrives the input pair steers only gm·Vod of its tail
        // current, so the effective slew rate is 2π·UGF·min(Vod, Vov): the
        // smaller the overdrive, the faster the amplifier must be.
        let sr_needed = (tech.vdd / 2.0) / (0.7 * t_delay);
        let v_steer = overdrive.min(0.25);
        let ugf = sr_needed / (2.0 * std::f64::consts::PI * v_steer);
        // Gain: resolve the overdrive across the full swing with 2x margin.
        let gain_needed = 2.0 * tech.vdd / overdrive;
        let spec = OpAmpSpec {
            gain: gain_needed,
            ugf_hz: ugf,
            area_max_m2: 1e-8,
            ibias: 2e-6,
            zout_ohm: None,
            cl: 0.5e-12,
        };
        let opamp = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec,
        )?;
        let ugf_actual = opamp.perf.ugf_hz.unwrap_or(ugf);
        let sr_eff = 2.0 * std::f64::consts::PI * ugf_actual * v_steer;
        let tau = 1.0 / (2.0 * std::f64::consts::PI * ugf_actual);
        let delay = (tech.vdd / 2.0) / sr_eff + 3.0 * tau;
        let sr = sr_eff;
        let perf = Performance {
            dc_gain: opamp.perf.dc_gain,
            delay_s: Some(delay),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            slew_v_per_s: Some(sr),
            ..Performance::default()
        };
        Ok(Comparator {
            overdrive,
            opamp,
            perf,
        })
    }

    /// Step-response testbench: the (+) input steps from `overdrive` below
    /// the threshold to `overdrive` above it at `t_edge`; the (−) input
    /// holds the threshold.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_step(&self, tech: &Technology, t_edge: f64) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("comparator-tb");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        let vth = tech.vdd / 2.0;
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VTH", inn, Circuit::GROUND, vth)?;
        ckt.add_vsource(
            "VINP",
            inp,
            Circuit::GROUND,
            vth - self.overdrive,
            0.0,
            SourceWaveform::Pulse {
                v1: vth - self.overdrive,
                v2: vth + self.overdrive,
                delay: t_edge,
                rise: t_edge / 100.0,
                fall: t_edge / 100.0,
                width: 1.0,
                period: f64::INFINITY,
            },
        )?;
        self.opamp
            .build_into(&mut ckt, tech, "X1", inp, inn, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

/// A flash analog-to-digital converter.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::FlashAdc;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let adc = FlashAdc::design(&tech, 4, 5e-6)?;
/// assert_eq!(adc.comparator_count(), 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlashAdc {
    /// Resolution in bits.
    pub bits: u32,
    /// Lower reference voltage, volts.
    pub vref_lo: f64,
    /// Upper reference voltage, volts.
    pub vref_hi: f64,
    /// Ladder segment resistance, ohms.
    pub r_ladder: f64,
    /// The (shared-design) comparator.
    pub comparator: Comparator,
    /// Composed performance. `delay_s` is the conversion delay.
    pub perf: Performance,
}

impl FlashAdc {
    /// Designs a `bits`-bit flash converter with conversion delay `t_delay`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for unsupported resolutions (1–6 bits keep
    ///   the comparator count simulable).
    /// * Comparator design errors.
    pub fn design(tech: &Technology, bits: u32, t_delay: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.adc");
        with_thread_graph(tech, |g| g.evaluate(&FlashAdcNode { bits, t_delay }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, bits: u32, t_delay: f64) -> Result<Self, ApeError> {
        if !(1..=6).contains(&bits) {
            return Err(ApeError::BadSpec {
                param: "bits",
                message: format!("supported resolutions are 1..=6 bits, got {bits}"),
            });
        }
        let vref_lo = 1.0;
        let vref_hi = tech.vdd - 1.0;
        let lsb = (vref_hi - vref_lo) / 2f64.powi(bits as i32);
        // Worst-case overdrive is half an LSB.
        let comparator = Comparator::design(tech, lsb / 2.0, t_delay)?;
        let n_cmp = (1usize << bits) - 1;
        let r_ladder = 50e3;
        let ladder_power = (vref_hi - vref_lo).powi(2) / (r_ladder * 2f64.powi(bits as i32));
        let perf = Performance {
            delay_s: comparator.perf.delay_s,
            power_w: n_cmp as f64 * comparator.perf.power_w + ladder_power,
            gate_area_m2: n_cmp as f64 * comparator.perf.gate_area_m2,
            ..Performance::default()
        };
        Ok(FlashAdc {
            bits,
            vref_lo,
            vref_hi,
            r_ladder,
            comparator,
            perf,
        })
    }

    /// Number of comparators (`2^bits − 1`).
    pub fn comparator_count(&self) -> usize {
        (1usize << self.bits) - 1
    }

    /// The ladder threshold for comparator `i` (0-based).
    pub fn threshold(&self, i: usize) -> f64 {
        let n = 1usize << self.bits;
        self.vref_lo + (self.vref_hi - self.vref_lo) * (i as f64 + 1.0) / n as f64
    }

    /// Emits the full converter testbench for input voltage `vin`: ladder,
    /// every comparator, comparator outputs named `cmp0..cmpN`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_dc(
        &self,
        tech: &Technology,
        vin: f64,
    ) -> Result<(Circuit, Vec<NodeId>), ApeError> {
        let mut ckt = Circuit::new("flash-adc-tb");
        let vdd = ckt.node("vdd");
        let vrh = ckt.node("vrh");
        let vrl = ckt.node("vrl");
        let vin_n = ckt.node("vin");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VRH", vrh, Circuit::GROUND, self.vref_hi)?;
        ckt.add_vdc("VRL", vrl, Circuit::GROUND, self.vref_lo)?;
        ckt.add_vsource("VIN", vin_n, Circuit::GROUND, vin, 0.0, SourceWaveform::Dc)?;
        // Ladder: 2^bits equal segments from vrl to vrh.
        let n = 1usize << self.bits;
        let mut prev = vrl;
        let mut taps = Vec::new();
        for i in 1..n {
            let tap = ckt.node(&format!("tap{i}"));
            ckt.add_resistor(&format!("RL{i}"), prev, tap, self.r_ladder)?;
            taps.push(tap);
            prev = tap;
        }
        ckt.add_resistor(&format!("RL{n}"), prev, vrh, self.r_ladder)?;
        // Comparators: vin vs each tap.
        let mut outs = Vec::new();
        for (i, tap) in taps.iter().enumerate() {
            let out = ckt.node(&format!("cmp{i}"));
            self.comparator.opamp.build_into(
                &mut ckt,
                tech,
                &format!("XC{i}"),
                vin_n,
                *tap,
                out,
                vdd,
            )?;
            outs.push(out);
        }
        Ok((ckt, outs))
    }

    /// Converts `vin` by building and DC-solving the full transistor-level
    /// converter, then applying the ideal thermometer→binary encoder.
    ///
    /// # Errors
    ///
    /// * [`ApeError::Infeasible`] when the DC solve fails or the thermometer
    ///   code has a bubble (a real comparator mis-decision).
    pub fn convert(&self, tech: &Technology, vin: f64) -> Result<u32, ApeError> {
        let (ckt, outs) = self.testbench_dc(tech, vin)?;
        let op = dc_operating_point(&ckt, tech).map_err(|e| ApeError::Infeasible {
            component: "FlashAdc",
            message: format!("dc solve failed: {e}"),
        })?;
        let vmid = tech.vdd / 2.0;
        let bits: Vec<bool> = outs.iter().map(|o| op.voltage(*o) > vmid).collect();
        // Thermometer code: ones below, zeros above; detect bubbles.
        let count = bits.iter().filter(|b| **b).count() as u32;
        for (i, b) in bits.iter().enumerate() {
            let expect = i < count as usize;
            if *b != expect {
                return Err(ApeError::Infeasible {
                    component: "FlashAdc",
                    message: format!("thermometer bubble at comparator {i} for vin={vin}"),
                });
            }
        }
        Ok(count)
    }

    /// The ideal output code for `vin`.
    pub fn ideal_code(&self, vin: f64) -> u32 {
        let n = (1usize << self.bits) as f64;
        let frac = (vin - self.vref_lo) / (self.vref_hi - self.vref_lo);
        ((frac * n).floor().clamp(0.0, n - 1.0)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{measure, transient, TranOptions};

    #[test]
    fn comparator_meets_delay_spec_in_sim() {
        let tech = Technology::default_1p2um();
        let cmp = Comparator::design(&tech, 0.1, 2e-6).unwrap();
        let tb = cmp.testbench_step(&tech, 1e-6).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let tr = transient(&tb, &tech, &op, TranOptions::new(2e-8, 8e-6)).unwrap();
        // Output crosses mid-rail some time after the input edge.
        let t_cross =
            measure::crossing_time(&tr, out, tech.vdd / 2.0, true).expect("comparator must trip");
        let delay = t_cross - 1e-6;
        assert!(delay > 0.0, "causal");
        let est = cmp.perf.delay_s.unwrap();
        assert!(
            delay < 4.0 * est && delay > est / 10.0,
            "delay sim {delay} vs est {est}"
        );
    }

    #[test]
    fn adc_converts_a_ramp_correctly() {
        let tech = Technology::default_1p2um();
        // 2 bits keeps the DC solves fast in unit tests; the bench harness
        // exercises the full 4-bit converter.
        let adc = FlashAdc::design(&tech, 2, 5e-6).unwrap();
        for vin in [1.2, 1.9, 2.6, 3.6] {
            let code = adc.convert(&tech, vin).unwrap();
            let ideal = adc.ideal_code(vin);
            assert_eq!(code, ideal, "vin={vin}");
        }
    }

    #[test]
    fn thresholds_are_monotone() {
        let tech = Technology::default_1p2um();
        let adc = FlashAdc::design(&tech, 4, 5e-6).unwrap();
        for i in 1..adc.comparator_count() {
            assert!(adc.threshold(i) > adc.threshold(i - 1));
        }
        assert_eq!(adc.comparator_count(), 15);
    }

    #[test]
    fn power_scales_with_comparator_count() {
        let tech = Technology::default_1p2um();
        let small = FlashAdc::design(&tech, 2, 5e-6).unwrap();
        let big = FlashAdc::design(&tech, 4, 5e-6).unwrap();
        // Comparator count goes 3 → 15. The per-comparator design also
        // changes with the LSB (a smaller overdrive needs a faster but
        // shorter-channel amplifier), so only the composition law is exact.
        assert!(big.perf.power_w > 2.0 * small.perf.power_w);
        let per_cmp = big.perf.gate_area_m2 / big.comparator_count() as f64;
        assert!((per_cmp - big.comparator.perf.gate_area_m2).abs() / per_cmp < 1e-9);
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        assert!(FlashAdc::design(&tech, 0, 1e-6).is_err());
        assert!(FlashAdc::design(&tech, 9, 1e-6).is_err());
        assert!(Comparator::design(&tech, -0.1, 1e-6).is_err());
        assert!(Comparator::design(&tech, 0.1, 0.0).is_err());
    }
}
