//! Sallen-Key active filters: Butterworth low-pass and band-pass.
//!
//! These are the paper's `lpf` (4th-order Sallen-Key Butterworth, 1 kHz)
//! and `bpf` (2nd-order Sallen-Key, 1 kHz centre) design examples
//! (Table 5, Figure 3c/3d).
//!
//! The low-pass uses the equal-component gain-K biquad: each stage has
//! `ω₀ = 1/(RC)` and `Q = 1/(3−K)`, so a Butterworth response of order `2m`
//! is a cascade of `m` stages with the classic Butterworth Q values.
//!
//! The band-pass is the equal-component VCVS band-pass; with all R and C
//! equal its transfer is
//! `H(s) = K·(sRC) / ((sRC)² + (4−K)·sRC + 2)`, giving
//! `ω₀ = √2/(RC)`, `Q = √2/(4−K)` and centre gain `K/(4−K)`.

use super::{noninverting_into, R_FEEDBACK};
use crate::attrs::Performance;
use crate::basic::MirrorTopology;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, SourceWaveform, Technology};

/// Graph node for [`SallenKeyLowPass::design`].
#[derive(Debug, Clone, Copy)]
struct LowPassNode {
    fc: f64,
    order: usize,
    cl: f64,
}

impl Component for LowPassNode {
    type Output = SallenKeyLowPass;

    fn kind(&self) -> &'static str {
        "l4.filter_lp"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.fc)
            .u64(self.order as u64)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut SallenKeyLowPass,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.filter_lp",
            &[crate::calibrate::ln_or_zero(self.fc), self.order as f64],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<SallenKeyLowPass, ApeError> {
        SallenKeyLowPass::design_uncached(graph.technology(), self.fc, self.order, self.cl)
    }
}

/// Graph node for [`SallenKeyBandPass::design`].
#[derive(Debug, Clone, Copy)]
struct BandPassNode {
    f0: f64,
    q: f64,
    cl: f64,
}

impl Component for BandPassNode {
    type Output = SallenKeyBandPass;

    fn kind(&self) -> &'static str {
        "l4.filter_bp"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.f0)
            .f64(self.q)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut SallenKeyBandPass,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        let vars = [crate::calibrate::ln_or_zero(self.f0), self.q];
        // The centre frequency is reported as a struct field, not a
        // `Performance` metric, so its correction is applied directly.
        out.f0 = crate::calibrate::scale_value(cal, "l4.filter_bp", "f0_hz", &vars, out.f0)?;
        crate::calibrate::apply_performance(cal, "l4.filter_bp", &vars, &mut out.perf)
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<SallenKeyBandPass, ApeError> {
        SallenKeyBandPass::design_uncached(graph.technology(), self.f0, self.q, self.cl)
    }
}

/// Butterworth stage Q values for an even order `n`, highest Q last.
///
/// # Errors
///
/// Returns `Err` for odd or zero orders (cascaded biquads need even order).
pub(crate) fn butterworth_qs(order: usize) -> Result<Vec<f64>, ApeError> {
    if order == 0 || !order.is_multiple_of(2) || order > 8 {
        return Err(ApeError::BadSpec {
            param: "order",
            message: format!("supported Butterworth orders are 2, 4, 6, 8; got {order}"),
        });
    }
    let n = order as f64;
    let mut qs: Vec<f64> = (1..=order / 2)
        .map(|k| {
            let ang = (2.0 * k as f64 - 1.0) * std::f64::consts::PI / (2.0 * n);
            1.0 / (2.0 * ang.sin())
        })
        .collect();
    qs.sort_by(f64::total_cmp);
    Ok(qs)
}

/// One sized Sallen-Key biquad.
#[derive(Debug, Clone)]
pub struct SkStage {
    /// Stage quality factor.
    pub q: f64,
    /// Stage gain `K = 3 − 1/Q`.
    pub k: f64,
    /// Stage resistor value, ohms.
    pub r: f64,
    /// Stage capacitor value, farads.
    pub c: f64,
    /// The stage op-amp.
    pub opamp: OpAmp,
}

/// A Butterworth Sallen-Key low-pass filter of even order.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::SallenKeyLowPass;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12)?;
/// assert_eq!(lpf.stages.len(), 2);
/// assert!(lpf.perf.dc_gain.unwrap() > 2.0); // ΠK of the gain-K stages
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SallenKeyLowPass {
    /// Cut-off (−3 dB) frequency, hertz.
    pub fc: f64,
    /// Filter order (even).
    pub order: usize,
    /// Cascaded biquad stages, lowest Q first.
    pub stages: Vec<SkStage>,
    /// Composed performance.
    pub perf: Performance,
}

impl SallenKeyLowPass {
    /// Designs an order-`order` Butterworth low-pass at `fc` driving `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for odd/unsupported order or bad `fc`.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, fc: f64, order: usize, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.filter_lp");
        with_thread_graph(tech, |g| g.evaluate(&LowPassNode { fc, order, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(
        tech: &Technology,
        fc: f64,
        order: usize,
        cl: f64,
    ) -> Result<Self, ApeError> {
        if !(fc.is_finite() && fc > 0.0) {
            return Err(ApeError::BadSpec {
                param: "fc",
                message: format!("must be positive, got {fc}"),
            });
        }
        let qs = butterworth_qs(order)?;
        let r = R_FEEDBACK;
        let c = 1.0 / (2.0 * std::f64::consts::PI * fc * r);
        let mut stages = Vec::with_capacity(qs.len());
        let mut a_total = 1.0;
        let mut power = 0.0;
        let mut area = 0.0;
        for q in &qs {
            let k = 3.0 - 1.0 / q;
            let spec = OpAmpSpec {
                gain: 2000.0,
                ugf_hz: (100.0 * fc * k).max(1e5),
                area_max_m2: 1e-8,
                ibias: 2e-6,
                zout_ohm: Some(1e3),
                cl,
            };
            let opamp = OpAmp::design(
                tech,
                OpAmpTopology::miller(MirrorTopology::Simple, true),
                spec,
            )?;
            let a_ol = opamp.perf.dc_gain.unwrap_or(2000.0);
            a_total *= k / (1.0 + k / a_ol);
            power += opamp.perf.power_w;
            area += opamp.perf.gate_area_m2;
            stages.push(SkStage {
                q: *q,
                k,
                r,
                c,
                opamp,
            });
        }
        // First-order GBW correction: each stage's finite loop bandwidth
        // pulls the corner slightly down.
        let gbw = stages
            .iter()
            .map(|s| s.opamp.perf.ugf_hz.unwrap_or(f64::INFINITY) / s.k)
            .fold(f64::INFINITY, f64::min);
        let fc_actual = fc / (1.0 + 2.0 * fc / gbw);
        let perf = Performance {
            dc_gain: Some(a_total),
            bw_hz: Some(fc_actual),
            power_w: power,
            gate_area_m2: area,
            ..Performance::default()
        };
        Ok(SallenKeyLowPass {
            fc,
            order,
            stages,
            perf,
        })
    }

    /// Frequency where the Butterworth magnitude is `db` below the passband.
    pub fn frequency_at_attenuation(&self, db: f64) -> f64 {
        let n = self.order as f64;
        let ratio = 10f64.powf(db / 10.0) - 1.0;
        self.perf.bw_hz.unwrap_or(self.fc) * ratio.powf(1.0 / (2.0 * n))
    }

    /// Emits the full transistor-level testbench: AC source, every biquad,
    /// output node `out`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("sk-lpf-tb");
        let vdd = ckt.node("vdd");
        let vref = ckt.node("vref");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        let mut stage_in = ckt.node("in");
        ckt.add_vsource(
            "VIN",
            stage_in,
            Circuit::GROUND,
            tech.vdd / 2.0,
            1.0,
            SourceWaveform::Dc,
        )?;
        for (i, st) in self.stages.iter().enumerate() {
            let n1 = ckt.node(&format!("s{i}_n1"));
            let n2 = ckt.node(&format!("s{i}_n2"));
            let stage_out = if i == self.stages.len() - 1 {
                ckt.node("out")
            } else {
                ckt.node(&format!("s{i}_out"))
            };
            ckt.add_resistor(&format!("S{i}R1"), stage_in, n1, st.r)?;
            ckt.add_resistor(&format!("S{i}R2"), n1, n2, st.r)?;
            // Feedback capacitor to the stage output, shunt capacitor to
            // the AC-ground reference.
            ckt.add_capacitor(&format!("S{i}C1"), n1, stage_out, st.c)?;
            ckt.add_capacitor(&format!("S{i}C2"), n2, vref, st.c)?;
            noninverting_into(
                &mut ckt,
                tech,
                &st.opamp,
                &format!("X{i}"),
                n2,
                stage_out,
                vref,
                vdd,
                st.k,
            )?;
            stage_in = stage_out;
        }
        let out = ckt.node("out");
        ckt.add_capacitor("CL", out, Circuit::GROUND, 10e-12)?;
        Ok(ckt)
    }
}

/// A 2nd-order equal-component Sallen-Key band-pass filter.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::SallenKeyBandPass;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let bpf = SallenKeyBandPass::design(&tech, 1e3, 1.0, 10e-12)?;
/// assert!((bpf.perf.bw_hz.unwrap() - 1e3).abs() < 50.0); // BW = f0/Q
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SallenKeyBandPass {
    /// Centre frequency, hertz.
    pub f0: f64,
    /// Quality factor (`BW = f0/Q`).
    pub q: f64,
    /// Amplifier gain `K = 4 − √2/Q`.
    pub k: f64,
    /// Network resistor value, ohms.
    pub r: f64,
    /// Network capacitor value, farads.
    pub c: f64,
    /// The op-amp.
    pub opamp: OpAmp,
    /// Composed performance (`dc_gain` holds the centre-frequency gain).
    pub perf: Performance,
}

impl SallenKeyBandPass {
    /// Designs a band-pass at centre `f0` with quality factor `q`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] when `q` requires `K` outside `[1, 4)`.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, f0: f64, q: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.filter_bp");
        with_thread_graph(tech, |g| g.evaluate(&BandPassNode { f0, q, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, f0: f64, q: f64, cl: f64) -> Result<Self, ApeError> {
        if !(f0.is_finite() && f0 > 0.0) {
            return Err(ApeError::BadSpec {
                param: "f0",
                message: format!("must be positive, got {f0}"),
            });
        }
        let k = 4.0 - std::f64::consts::SQRT_2 / q;
        if !(1.0..4.0).contains(&k) {
            return Err(ApeError::BadSpec {
                param: "q",
                message: format!("q = {q} maps to K = {k:.2}, outside the stable [1,4) range"),
            });
        }
        let r = R_FEEDBACK;
        // ω0 = √2/(RC) → C = √2/(ω0·R)
        let c = std::f64::consts::SQRT_2 / (2.0 * std::f64::consts::PI * f0 * r);
        let spec = OpAmpSpec {
            gain: 2000.0,
            ugf_hz: (100.0 * f0 * k).max(1e5),
            area_max_m2: 1e-8,
            ibias: 2e-6,
            zout_ohm: Some(1e3),
            cl,
        };
        let opamp = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, true),
            spec,
        )?;
        let a_ol = opamp.perf.dc_gain.unwrap_or(2000.0);
        let a0 = (k / (4.0 - k)) / (1.0 + k / a_ol);
        let perf = Performance {
            dc_gain: Some(a0),
            bw_hz: Some(f0 / q),
            ugf_hz: Some(f0), // centre frequency slot
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            ..Performance::default()
        };
        Ok(SallenKeyBandPass {
            f0,
            q,
            k,
            r,
            c,
            opamp,
            perf,
        })
    }

    /// Emits the transistor-level testbench.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("sk-bpf-tb");
        let vdd = ckt.node("vdd");
        let vref = ckt.node("vref");
        let vin = ckt.node("in");
        let n1 = ckt.node("n1");
        let n2 = ckt.node("n2");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            tech.vdd / 2.0,
            1.0,
            SourceWaveform::Dc,
        )?;
        ckt.add_resistor("R1", vin, n1, self.r)?;
        ckt.add_capacitor("C2", n1, vref, self.c)?;
        ckt.add_capacitor("C1", n1, n2, self.c)?;
        ckt.add_resistor("R3", n2, vref, self.r)?;
        ckt.add_resistor("R2", n1, out, self.r)?;
        noninverting_into(
            &mut ckt,
            tech,
            &self.opamp,
            "X1",
            n2,
            out,
            vref,
            vdd,
            self.k,
        )?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, 10e-12)?;
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    #[test]
    fn butterworth_q_tables() {
        let q2 = butterworth_qs(2).unwrap();
        assert!((q2[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        let q4 = butterworth_qs(4).unwrap();
        assert!((q4[0] - 0.5412).abs() < 1e-3);
        assert!((q4[1] - 1.3066).abs() < 1e-3);
        assert!(butterworth_qs(3).is_err());
        assert!(butterworth_qs(0).is_err());
    }

    #[test]
    fn lpf4_corner_and_gain_est_vs_sim() {
        let tech = Technology::default_1p2um();
        let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).unwrap();
        let tb = lpf.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(10.0, 1e5, 15).unwrap()).unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        let g_est = lpf.perf.dc_gain.unwrap();
        assert!(
            (g_sim - g_est).abs() / g_est < 0.12,
            "gain sim {g_sim} vs est {g_est}"
        );
        let f3_sim = measure::bandwidth_3db(&sweep, out).unwrap();
        assert!(
            (f3_sim - 1e3).abs() / 1e3 < 0.2,
            "f3db sim {f3_sim} vs 1 kHz design"
        );
    }

    #[test]
    fn lpf_rolls_off_at_80db_per_decade() {
        let tech = Technology::default_1p2um();
        let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).unwrap();
        let tb = lpf.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[5e3, 10e3]).unwrap();
        let m = sweep.magnitude(out);
        let drop_db = 20.0 * (m[0] / m[1]).log10();
        // 4th order → 24 dB/octave: from 5k to 10k expect ≈ 24 dB.
        assert!((drop_db - 24.0).abs() < 3.0, "octave drop {drop_db} dB");
    }

    #[test]
    fn attenuation_frequency_formula() {
        let tech = Technology::default_1p2um();
        let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).unwrap();
        let f20 = lpf.frequency_at_attenuation(20.0);
        // 99^(1/8) ≈ 1.777
        assert!((f20 / lpf.perf.bw_hz.unwrap() - 1.777).abs() < 0.01);
    }

    #[test]
    fn bpf_peaks_at_center() {
        let tech = Technology::default_1p2um();
        let bpf = SallenKeyBandPass::design(&tech, 1e3, 1.0, 10e-12).unwrap();
        let tb = bpf.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[100.0, 1e3, 10e3]).unwrap();
        let m = sweep.magnitude(out);
        assert!(m[1] > 3.0 * m[0], "peak {} vs low side {}", m[1], m[0]);
        assert!(m[1] > 3.0 * m[2], "peak {} vs high side {}", m[1], m[2]);
        let a_est = bpf.perf.dc_gain.unwrap();
        assert!(
            (m[1] - a_est).abs() / a_est < 0.25,
            "centre gain sim {} vs est {}",
            m[1],
            a_est
        );
    }

    #[test]
    fn bpf_bandwidth_tracks_q() {
        let tech = Technology::default_1p2um();
        let bpf = SallenKeyBandPass::design(&tech, 1e3, 1.0, 10e-12).unwrap();
        let tb = bpf.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(
            &tb,
            &tech,
            &op,
            &decade_frequencies(50.0, 20e3, 40).unwrap(),
        )
        .unwrap();
        let m = sweep.magnitude(out);
        let peak = m.iter().cloned().fold(0.0, f64::max);
        let target = peak / 2f64.sqrt();
        // Find the two -3 dB crossings around the peak.
        let mut lo = None;
        let mut hi = None;
        for i in 1..m.len() {
            if m[i - 1] < target && m[i] >= target {
                lo = Some(sweep.freqs[i]);
            }
            if m[i - 1] >= target && m[i] < target {
                hi = Some(sweep.freqs[i - 1]);
            }
        }
        let (lo, hi) = (lo.unwrap(), hi.unwrap());
        let bw = hi - lo;
        assert!((bw - 1e3).abs() / 1e3 < 0.35, "bandwidth {bw}");
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        assert!(SallenKeyLowPass::design(&tech, -1.0, 4, 1e-12).is_err());
        assert!(SallenKeyLowPass::design(&tech, 1e3, 5, 1e-12).is_err());
        // Q too small → K < 1.
        assert!(SallenKeyBandPass::design(&tech, 1e3, 0.3, 1e-12).is_err());
    }
}
