//! Integrator and summing-amplifier (adder) modules.

use super::R_FEEDBACK;
use crate::attrs::Performance;
use crate::basic::MirrorTopology;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, SourceWaveform, Technology};

/// Graph node for [`Integrator::design`].
#[derive(Debug, Clone, Copy)]
struct IntegratorNode {
    unity_hz: f64,
    cl: f64,
}

impl Component for IntegratorNode {
    type Output = Integrator;

    fn kind(&self) -> &'static str {
        "l4.integrator"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new().f64(self.unity_hz).f64(self.cl).finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut Integrator,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.integrator",
            &[
                crate::calibrate::ln_or_zero(self.unity_hz),
                crate::calibrate::ln_or_zero(self.cl),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<Integrator, ApeError> {
        Integrator::design_uncached(graph.technology(), self.unity_hz, self.cl)
    }
}

/// Graph node for [`SummingAmplifier::design`].
#[derive(Debug, Clone)]
struct SummingNode {
    gains: Vec<f64>,
    bw: f64,
    cl: f64,
}

impl Component for SummingNode {
    type Output = SummingAmplifier;

    fn kind(&self) -> &'static str {
        "l4.summing_amp"
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new().u64(self.gains.len() as u64);
        for g in &self.gains {
            fp = fp.f64(*g);
        }
        fp.f64(self.bw).f64(self.cl).finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut SummingAmplifier,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        let gain_total: f64 = self.gains.iter().map(|g| g.abs()).sum();
        crate::calibrate::apply_performance(
            cal,
            "l4.summing_amp",
            &[
                crate::calibrate::ln_or_zero(gain_total),
                crate::calibrate::ln_or_zero(self.bw),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<SummingAmplifier, ApeError> {
        SummingAmplifier::design_uncached(graph.technology(), &self.gains, self.bw, self.cl)
    }
}

/// An inverting (Miller) integrator: `H(s) = −1/(s·R·C)`.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::Integrator;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let int = Integrator::design(&tech, 10e3, 10e-12)?; // f_unity = 10 kHz
/// assert!((int.unity_hz - 10e3).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Integrator {
    /// Unity-gain frequency of the integrator `1/(2πRC)`, hertz.
    pub unity_hz: f64,
    /// Input resistor, ohms.
    pub r: f64,
    /// Feedback capacitor, farads.
    pub c: f64,
    /// The internal op-amp.
    pub opamp: OpAmp,
    /// Composed performance. `dc_gain` holds the finite low-frequency gain
    /// (the op-amp's open-loop gain), `bw_hz` the lower corner where
    /// integration starts.
    pub perf: Performance,
}

impl Integrator {
    /// Designs an integrator with unity-gain frequency `unity_hz` driving
    /// `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for a non-positive frequency.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, unity_hz: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.integrator");
        with_thread_graph(tech, |g| g.evaluate(&IntegratorNode { unity_hz, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, unity_hz: f64, cl: f64) -> Result<Self, ApeError> {
        if !(unity_hz.is_finite() && unity_hz > 0.0) {
            return Err(ApeError::BadSpec {
                param: "unity_hz",
                message: format!("must be positive, got {unity_hz}"),
            });
        }
        let r = R_FEEDBACK;
        let c = 1.0 / (2.0 * std::f64::consts::PI * r * unity_hz);
        // The op-amp needs bandwidth well past the integrator's useful band.
        let spec = OpAmpSpec {
            gain: 1000.0,
            ugf_hz: 50.0 * unity_hz,
            area_max_m2: 1e-8,
            ibias: 5e-6,
            zout_ohm: Some(2e3),
            cl,
        };
        let opamp = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, true),
            spec,
        )?;
        let a_ol = opamp.perf.dc_gain.unwrap_or(1000.0);
        let perf = Performance {
            dc_gain: Some(-a_ol),
            // The integrator departs from ideal below f_unity/A.
            bw_hz: Some(unity_hz / a_ol),
            ugf_hz: Some(unity_hz),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            slew_v_per_s: opamp.perf.slew_v_per_s,
            ..Performance::default()
        };
        Ok(Integrator {
            unity_hz,
            r,
            c,
            opamp,
            perf,
        })
    }

    /// Emits a testbench with an AC source at the input.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("integrator-tb");
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let vref = ckt.node("vref");
        let out = ckt.node("out");
        let sum = ckt.node("sum");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            tech.vdd / 2.0,
            1.0,
            SourceWaveform::Dc,
        )?;
        ckt.add_resistor("RIN", vin, sum, self.r)?;
        ckt.add_capacitor("CF", sum, out, self.c)?;
        // A large DC-stabilising resistor across the integrator cap keeps
        // the testbench operating point defined.
        ckt.add_resistor("RDC", sum, out, 1e3 * self.r)?;
        self.opamp
            .build_into(&mut ckt, tech, "X1", vref, sum, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

/// An inverting summing amplifier (`adder` in the paper's module list):
/// `vout = −Σᵢ (RF/Rᵢ)·vᵢ`.
#[derive(Debug, Clone)]
pub struct SummingAmplifier {
    /// Per-input gain magnitudes.
    pub gains: Vec<f64>,
    /// Signal bandwidth, hertz.
    pub bw: f64,
    /// Feedback resistor, ohms.
    pub rf: f64,
    /// Input resistors, ohms (one per input).
    pub r_in: Vec<f64>,
    /// The internal op-amp.
    pub opamp: OpAmp,
    /// Composed performance (dc_gain = `-gains[0]`).
    pub perf: Performance,
}

impl SummingAmplifier {
    /// Designs an N-input adder with per-input gain magnitudes `gains` and
    /// bandwidth `bw` into `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for an empty gain list or non-positive gains.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, gains: &[f64], bw: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.summing_amp");
        with_thread_graph(tech, |g| {
            g.evaluate(&SummingNode {
                gains: gains.to_vec(),
                bw,
                cl,
            })
        })
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(
        tech: &Technology,
        gains: &[f64],
        bw: f64,
        cl: f64,
    ) -> Result<Self, ApeError> {
        if gains.is_empty() {
            return Err(ApeError::BadSpec {
                param: "gains",
                message: "need at least one input".into(),
            });
        }
        if gains.iter().any(|g| !(g.is_finite() && *g > 0.0)) {
            return Err(ApeError::BadSpec {
                param: "gains",
                message: "all input gains must be positive".into(),
            });
        }
        let rf = R_FEEDBACK * 4.0;
        let r_in: Vec<f64> = gains.iter().map(|g| rf / g).collect();
        // Noise gain of a summing node: 1 + RF·Σ(1/Ri).
        let noise_gain = 1.0 + gains.iter().sum::<f64>();
        let spec = OpAmpSpec {
            gain: (50.0 * noise_gain).max(100.0),
            ugf_hz: 2.0 * noise_gain * bw,
            area_max_m2: 1e-8,
            ibias: 5e-6,
            zout_ohm: Some(2e3),
            cl,
        };
        let opamp = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, true),
            spec,
        )?;
        let a_ol = opamp.perf.dc_gain.unwrap_or(1e4);
        let g0 = -(gains[0]) / (1.0 + noise_gain / a_ol);
        let perf = Performance {
            dc_gain: Some(g0),
            bw_hz: Some(opamp.perf.ugf_hz.unwrap_or(0.0) / noise_gain),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            slew_v_per_s: opamp.perf.slew_v_per_s,
            ..Performance::default()
        };
        Ok(SummingAmplifier {
            gains: gains.to_vec(),
            bw,
            rf,
            r_in,
            opamp,
            perf,
        })
    }

    /// Emits a testbench with input 0 AC-driven and the other inputs held
    /// at the mid-rail reference.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("adder-tb");
        let vdd = ckt.node("vdd");
        let vref = ckt.node("vref");
        let out = ckt.node("out");
        let sum = ckt.node("sum");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        for (i, r) in self.r_in.iter().enumerate() {
            let vin = ckt.node(&format!("in{i}"));
            let ac = if i == 0 { 1.0 } else { 0.0 };
            ckt.add_vsource(
                &format!("VIN{i}"),
                vin,
                Circuit::GROUND,
                tech.vdd / 2.0,
                ac,
                SourceWaveform::Dc,
            )?;
            ckt.add_resistor(&format!("RIN{i}"), vin, sum, *r)?;
        }
        ckt.add_resistor("RF", sum, out, self.rf)?;
        self.opamp
            .build_into(&mut ckt, tech, "X1", vref, sum, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    #[test]
    fn integrator_slope_is_minus_20db_per_decade() {
        let tech = Technology::default_1p2um();
        let int = Integrator::design(&tech, 10e3, 10e-12).unwrap();
        let tb = int.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[1e3, 1e4, 1e5]).unwrap();
        let m = sweep.magnitude(out);
        // Gain 10 at f_unity/10, 1 at f_unity, 0.1 at 10·f_unity.
        assert!((m[0] - 10.0).abs() / 10.0 < 0.15, "1 kHz gain {}", m[0]);
        assert!((m[1] - 1.0).abs() < 0.15, "10 kHz gain {}", m[1]);
        assert!((m[2] - 0.1).abs() / 0.1 < 0.2, "100 kHz gain {}", m[2]);
    }

    #[test]
    fn adder_sums_weighted_inputs() {
        let tech = Technology::default_1p2um();
        let adder = SummingAmplifier::design(&tech, &[2.0, 1.0], 20e3, 10e-12).unwrap();
        let tb = adder.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(10.0, 1e5, 5).unwrap()).unwrap();
        // Input 0 has gain 2 (AC-driven); the sim gain should be ≈ 2.
        let g = measure::dc_gain(&sweep, out).unwrap();
        assert!((g - 2.0).abs() < 0.2, "adder input-0 gain {g}");
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        assert!(Integrator::design(&tech, 0.0, 1e-12).is_err());
        assert!(SummingAmplifier::design(&tech, &[], 1e3, 1e-12).is_err());
        assert!(SummingAmplifier::design(&tech, &[1.0, -2.0], 1e3, 1e-12).is_err());
    }
}
