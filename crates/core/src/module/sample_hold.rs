//! Sample-and-hold module (paper Table 5 row `s&h`, Figure 3b).
//!
//! Topology: a voltage-controlled sampling switch, a hold capacitor, and a
//! non-inverting gain-`k` output amplifier (the paper's example uses gain 2).

use super::{noninverting_bw, noninverting_gain_actual, noninverting_into};
use crate::attrs::Performance;
use crate::basic::MirrorTopology;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, SourceWaveform, Technology};

/// Graph node for [`SampleHold::design`].
#[derive(Debug, Clone, Copy)]
struct SampleHoldNode {
    gain: f64,
    bw: f64,
    cl: f64,
}

impl Component for SampleHoldNode {
    type Output = SampleHold;

    fn kind(&self) -> &'static str {
        "l4.sample_hold"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.gain)
            .f64(self.bw)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut SampleHold,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.sample_hold",
            &[
                crate::calibrate::ln_or_zero(self.gain),
                crate::calibrate::ln_or_zero(self.bw),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<SampleHold, ApeError> {
        SampleHold::design_uncached(graph.technology(), self.gain, self.bw, self.cl)
    }
}

/// A sized sample-and-hold.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::SampleHold;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let sh = SampleHold::design(&tech, 2.0, 40e3, 10e-12)?;
/// assert!((sh.perf.dc_gain.unwrap() - 2.0).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SampleHold {
    /// Output amplifier gain.
    pub gain: f64,
    /// Tracking bandwidth, hertz.
    pub bw: f64,
    /// Switch on-resistance, ohms.
    pub ron: f64,
    /// Hold capacitor, farads.
    pub c_hold: f64,
    /// The output amplifier.
    pub opamp: OpAmp,
    /// Composed performance. `delay_s` is the 1 % acquisition time.
    pub perf: Performance,
}

impl SampleHold {
    /// Designs a sample-and-hold with output gain `gain` and tracking
    /// bandwidth `bw`, driving `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for gain below 1 or non-positive bandwidth.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.sample_hold");
        with_thread_graph(tech, |g| g.evaluate(&SampleHoldNode { gain, bw, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        if !(gain.is_finite() && gain >= 1.0) {
            return Err(ApeError::BadSpec {
                param: "gain",
                message: format!("need gain >= 1, got {gain}"),
            });
        }
        if !(bw.is_finite() && bw > 0.0) {
            return Err(ApeError::BadSpec {
                param: "bw",
                message: format!("must be positive, got {bw}"),
            });
        }
        // Budget the tracking pole between the switch RC and the amplifier:
        // give the switch a pole 3x above the target bandwidth.
        let c_hold = 10e-12;
        let ron = 1.0 / (3.0 * 2.0 * std::f64::consts::PI * bw * c_hold);
        let spec = OpAmpSpec {
            gain: (50.0 * gain).max(100.0),
            ugf_hz: 3.0 * gain * bw,
            area_max_m2: 1e-8,
            ibias: 2e-6,
            zout_ohm: Some(2e3),
            cl,
        };
        let opamp = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, true),
            spec,
        )?;
        let a_ol = opamp.perf.dc_gain.unwrap_or(1e4);
        let g_actual = noninverting_gain_actual(gain, a_ol);
        // Tracking bandwidth: switch pole in series with the closed loop.
        let f_sw = 1.0 / (2.0 * std::f64::consts::PI * ron * c_hold);
        let f_amp = noninverting_bw(gain, opamp.perf.ugf_hz.unwrap_or(0.0));
        let bw_actual = 1.0 / (1.0 / f_sw + 1.0 / f_amp);
        // 1 % acquisition: ~4.6 time constants of the combined pole.
        let t_acq = 4.6 / (2.0 * std::f64::consts::PI * bw_actual);
        let sr = opamp
            .perf
            .slew_v_per_s
            .unwrap_or(f64::INFINITY)
            .min(tech.vdd / (2.0 * ron * c_hold));
        let perf = Performance {
            dc_gain: Some(g_actual),
            bw_hz: Some(bw_actual),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            slew_v_per_s: Some(sr),
            delay_s: Some(t_acq),
            ..Performance::default()
        };
        Ok(SampleHold {
            gain,
            bw,
            ron,
            c_hold,
            opamp,
            perf,
        })
    }

    /// Emits the testbench with the switch closed (track mode) and an AC
    /// drive, output node `out`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_tracking(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        self.testbench(tech, true)
    }

    /// Emits the hold-mode testbench (switch open): the hold node floats on
    /// the capacitor while the input keeps moving.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_hold(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        self.testbench(tech, false)
    }

    fn testbench(&self, tech: &Technology, tracking: bool) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("sh-tb");
        let vdd = ckt.node("vdd");
        let vref = ckt.node("vref");
        let vin = ckt.node("in");
        let hold = ckt.node("hold");
        let out = ckt.node("out");
        let ctl = ckt.node("ctl");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        ckt.add_vdc(
            "VCTL",
            ctl,
            Circuit::GROUND,
            if tracking { tech.vdd } else { 0.0 },
        )?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            tech.vdd / 2.0,
            1.0,
            SourceWaveform::Dc,
        )?;
        ckt.add_switch(
            "SW",
            vin,
            hold,
            ctl,
            Circuit::GROUND,
            tech.vdd / 2.0,
            self.ron,
            1e12,
        )?;
        ckt.add_capacitor("CH", hold, Circuit::GROUND, self.c_hold)?;
        noninverting_into(
            &mut ckt,
            tech,
            &self.opamp,
            "X1",
            hold,
            out,
            vref,
            vdd,
            self.gain,
        )?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    #[test]
    fn tracking_gain_and_bandwidth() {
        let tech = Technology::default_1p2um();
        let sh = SampleHold::design(&tech, 2.0, 40e3, 10e-12).unwrap();
        let tb = sh.testbench_tracking(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(
            &tb,
            &tech,
            &op,
            &decade_frequencies(100.0, 1e7, 10).unwrap(),
        )
        .unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        assert!((g_sim - 2.0).abs() < 0.15, "tracking gain {g_sim}");
        let bw_sim = measure::bandwidth_3db(&sweep, out).unwrap();
        let bw_est = sh.perf.bw_hz.unwrap();
        assert!(
            (bw_sim - bw_est).abs() / bw_est < 0.5,
            "bw sim {bw_sim} vs est {bw_est}"
        );
        assert!(bw_sim > 40e3 * 0.8, "meets BW spec: {bw_sim}");
    }

    #[test]
    fn hold_mode_blocks_input() {
        let tech = Technology::default_1p2um();
        let sh = SampleHold::design(&tech, 2.0, 40e3, 10e-12).unwrap();
        let tb = sh.testbench_hold(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[1e3]).unwrap();
        let g = measure::dc_gain(&sweep, out).unwrap();
        assert!(g < 0.05, "hold-mode feedthrough {g}");
    }

    #[test]
    fn acquisition_time_scales_with_bandwidth() {
        let tech = Technology::default_1p2um();
        let fast = SampleHold::design(&tech, 2.0, 100e3, 10e-12).unwrap();
        let slow = SampleHold::design(&tech, 2.0, 10e3, 10e-12).unwrap();
        assert!(fast.perf.delay_s.unwrap() < slow.perf.delay_s.unwrap());
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        assert!(SampleHold::design(&tech, 0.5, 1e3, 1e-12).is_err());
        assert!(SampleHold::design(&tech, 2.0, 0.0, 1e-12).is_err());
    }

    #[test]
    fn transient_acquisition_meets_estimate() {
        use ape_netlist::SourceWaveform;
        use ape_spice::{transient, TranOptions};
        // Step the input while tracking; the output must acquire within the
        // estimated 1 % acquisition time (with 3x slack for slewing).
        let tech = Technology::default_1p2um();
        let sh = SampleHold::design(&tech, 2.0, 40e3, 10e-12).unwrap();
        let mut tb = sh.testbench_tracking(&tech).unwrap();
        // Replace the AC input with a step 2.3 -> 2.7 V.
        tb.remove_element("VIN").expect("testbench has VIN");
        let vin = tb.find_node("in").unwrap();
        let t_acq = sh.perf.delay_s.unwrap();
        tb.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            2.3,
            0.0,
            SourceWaveform::Pulse {
                v1: 2.3,
                v2: 2.7,
                delay: t_acq,
                rise: t_acq / 100.0,
                fall: t_acq / 100.0,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        let op = ape_spice::dc_operating_point(&tb, &tech).unwrap();
        let tr = transient(&tb, &tech, &op, TranOptions::new(t_acq / 60.0, 5.0 * t_acq)).unwrap();
        let out = tb.find_node("out").unwrap();
        // Final value: gain 2 around the 2.5 V reference -> 2.5 + 2*(2.7-2.5).
        let v_final = tr.voltage(tr.len() - 1, out);
        assert!((v_final - 2.9).abs() < 0.1, "acquired value {v_final}");
        let ts = ape_spice::measure::settling_time(&tr, out, v_final, 0.01)
            .expect("settles inside the window");
        assert!(
            ts - t_acq < 3.0 * t_acq,
            "acquisition {ts} vs estimate {t_acq}"
        );
    }
}
