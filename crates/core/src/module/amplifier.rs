//! Closed-loop amplifier modules and the open-loop audio amplifier.

use super::{noninverting_bw, noninverting_gain_actual, noninverting_into, R_FEEDBACK};
use crate::attrs::Performance;
use crate::basic::MirrorTopology;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, SourceWaveform, Technology};

/// Graph node for [`InvertingAmplifier::design`].
#[derive(Debug, Clone, Copy)]
struct InvertingAmpNode {
    gain: f64,
    bw: f64,
    cl: f64,
}

impl Component for InvertingAmpNode {
    type Output = InvertingAmplifier;

    fn kind(&self) -> &'static str {
        "l4.inverting_amp"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.gain)
            .f64(self.bw)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut InvertingAmplifier,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.inverting_amp",
            &[
                crate::calibrate::ln_or_zero(self.gain.abs()),
                crate::calibrate::ln_or_zero(self.bw),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<InvertingAmplifier, ApeError> {
        InvertingAmplifier::design_uncached(graph.technology(), self.gain, self.bw, self.cl)
    }
}

/// Graph node for [`NonInvertingAmplifier::design`].
#[derive(Debug, Clone, Copy)]
struct NonInvertingAmpNode {
    gain: f64,
    bw: f64,
    cl: f64,
}

impl Component for NonInvertingAmpNode {
    type Output = NonInvertingAmplifier;

    fn kind(&self) -> &'static str {
        "l4.noninverting_amp"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.gain)
            .f64(self.bw)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut NonInvertingAmplifier,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.noninverting_amp",
            &[
                crate::calibrate::ln_or_zero(self.gain),
                crate::calibrate::ln_or_zero(self.bw),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<NonInvertingAmplifier, ApeError> {
        NonInvertingAmplifier::design_uncached(graph.technology(), self.gain, self.bw, self.cl)
    }
}

/// Graph node for [`AudioAmplifier::design`].
#[derive(Debug, Clone, Copy)]
struct AudioAmpNode {
    gain: f64,
    bw: f64,
    cl: f64,
}

impl Component for AudioAmpNode {
    type Output = AudioAmplifier;

    fn kind(&self) -> &'static str {
        "l4.audio_amp"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .f64(self.gain)
            .f64(self.bw)
            .f64(self.cl)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(
        &self,
        out: &mut AudioAmplifier,
        cal: &ape_calib::Calibration,
    ) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.audio_amp",
            &[
                crate::calibrate::ln_or_zero(self.gain),
                crate::calibrate::ln_or_zero(self.bw),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<AudioAmplifier, ApeError> {
        AudioAmplifier::design_uncached(graph.technology(), self.gain, self.bw, self.cl)
    }
}

/// Sizes the internal op-amp for a closed-loop stage with noise gain `k`
/// and signal bandwidth `bw`: open-loop gain 50× the closed-loop ideal for
/// ≤2 % gain error, UGF `k·bw` with 2× margin.
fn opamp_for_loop(
    tech: &Technology,
    k: f64,
    bw: f64,
    cl: f64,
    buffered: bool,
) -> Result<OpAmp, ApeError> {
    let spec = OpAmpSpec {
        gain: (50.0 * k).max(100.0),
        ugf_hz: 2.0 * k * bw,
        area_max_m2: 1e-8,
        ibias: 5e-6,
        zout_ohm: Some(2e3),
        cl,
    };
    OpAmp::design(
        tech,
        OpAmpTopology::miller(MirrorTopology::Simple, buffered),
        spec,
    )
}

/// Inverting amplifier: gain `−R2/R1` around an op-amp.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::InvertingAmplifier;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let amp = InvertingAmplifier::design(&tech, 4.0, 50e3, 10e-12)?;
/// let g = amp.perf.dc_gain.unwrap();
/// assert!(g < -3.8 && g > -4.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InvertingAmplifier {
    /// Requested gain magnitude.
    pub gain: f64,
    /// Requested signal bandwidth, hertz.
    pub bw: f64,
    /// Input resistor, ohms.
    pub r1: f64,
    /// Feedback resistor, ohms.
    pub r2: f64,
    /// The internal op-amp.
    pub opamp: OpAmp,
    /// Composed performance.
    pub perf: Performance,
}

impl InvertingAmplifier {
    /// Designs an inverting amplifier with gain magnitude `gain` and signal
    /// bandwidth `bw` into load `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for gain below 1 or non-positive bandwidth.
    /// * Op-amp sizing errors.
    pub fn design(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.inverting_amp");
        with_thread_graph(tech, |g| g.evaluate(&InvertingAmpNode { gain, bw, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        if !(gain.is_finite() && gain >= 1.0) {
            return Err(ApeError::BadSpec {
                param: "gain",
                message: format!("need |gain| >= 1, got {gain}"),
            });
        }
        if !(bw.is_finite() && bw > 0.0) {
            return Err(ApeError::BadSpec {
                param: "bw",
                message: format!("must be positive, got {bw}"),
            });
        }
        let noise_gain = 1.0 + gain;
        let opamp = opamp_for_loop(tech, noise_gain, bw, cl, true)?;
        let r1 = R_FEEDBACK;
        let r2 = gain * r1;
        let a_ol = opamp.perf.dc_gain.unwrap_or(1e4);
        // Inverting gain with finite A: −(R2/R1)·1/(1 + noise_gain/A).
        let g_actual = -(r2 / r1) / (1.0 + noise_gain / a_ol);
        let bw_actual = noninverting_bw(noise_gain, opamp.perf.ugf_hz.unwrap_or(0.0));
        let perf = Performance {
            dc_gain: Some(g_actual),
            bw_hz: Some(bw_actual),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            zout_ohm: opamp.perf.zout_ohm.map(|z| z / (1.0 + a_ol / noise_gain)),
            slew_v_per_s: opamp.perf.slew_v_per_s,
            ..Performance::default()
        };
        Ok(InvertingAmplifier {
            gain,
            bw,
            r1,
            r2,
            opamp,
            perf,
        })
    }

    /// Emits a testbench: AC source at `in` (biased mid-rail), virtual
    /// ground reference, output node `out`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("invamp-tb");
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let vref = ckt.node("vref");
        let out = ckt.node("out");
        let sum = ckt.node("sum");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            tech.vdd / 2.0,
            1.0,
            SourceWaveform::Dc,
        )?;
        ckt.add_resistor("R1", vin, sum, self.r1)?;
        ckt.add_resistor("R2", sum, out, self.r2)?;
        // (+) input at the reference, (−) at the summing node.
        self.opamp
            .build_into(&mut ckt, tech, "X1", vref, sum, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

/// Non-inverting amplifier with gain `k = 1 + RB/RA`.
#[derive(Debug, Clone)]
pub struct NonInvertingAmplifier {
    /// Requested gain (≥ 1).
    pub gain: f64,
    /// Requested signal bandwidth, hertz.
    pub bw: f64,
    /// The internal op-amp.
    pub opamp: OpAmp,
    /// Composed performance.
    pub perf: Performance,
}

impl NonInvertingAmplifier {
    /// Designs a non-inverting amplifier with gain `gain ≥ 1`, bandwidth
    /// `bw`, into load `cl`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for gain below 1 or non-positive bandwidth.
    /// * Op-amp sizing errors.
    pub fn design(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.noninverting_amp");
        with_thread_graph(tech, |g| g.evaluate(&NonInvertingAmpNode { gain, bw, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        if !(gain.is_finite() && gain >= 1.0) {
            return Err(ApeError::BadSpec {
                param: "gain",
                message: format!("need gain >= 1, got {gain}"),
            });
        }
        if !(bw.is_finite() && bw > 0.0) {
            return Err(ApeError::BadSpec {
                param: "bw",
                message: format!("must be positive, got {bw}"),
            });
        }
        let opamp = opamp_for_loop(tech, gain, bw, cl, true)?;
        let a_ol = opamp.perf.dc_gain.unwrap_or(1e4);
        let perf = Performance {
            dc_gain: Some(noninverting_gain_actual(gain, a_ol)),
            bw_hz: Some(noninverting_bw(gain, opamp.perf.ugf_hz.unwrap_or(0.0))),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            zout_ohm: opamp.perf.zout_ohm.map(|z| z / (1.0 + a_ol / gain)),
            slew_v_per_s: opamp.perf.slew_v_per_s,
            ..Performance::default()
        };
        Ok(NonInvertingAmplifier {
            gain,
            bw,
            opamp,
            perf,
        })
    }

    /// Emits a testbench with the AC source at the (+) input.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("noninv-tb");
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let vref = ckt.node("vref");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VREF", vref, Circuit::GROUND, tech.vdd / 2.0)?;
        ckt.add_vsource(
            "VIN",
            vin,
            Circuit::GROUND,
            tech.vdd / 2.0,
            1.0,
            SourceWaveform::Dc,
        )?;
        noninverting_into(
            &mut ckt,
            tech,
            &self.opamp,
            "X1",
            vin,
            out,
            vref,
            vdd,
            self.gain,
        )?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

/// The paper's audio amplifier design example: a two-stage op-amp used
/// open loop, gain 100, 20 kHz bandwidth (Table 5 row `amp`).
///
/// A bare two-stage amplifier's natural gain in this technology is far
/// above 100, which would shrink the bandwidth (`BW = UGF/A`). A load
/// resistor `RL` from the output to the mid-rail reference de-Qs the second
/// stage to land the DC gain on the spec while the Miller UGF stays put.
#[derive(Debug, Clone)]
pub struct AudioAmplifier {
    /// Requested open-loop gain.
    pub gain: f64,
    /// Requested bandwidth, hertz.
    pub bw: f64,
    /// The op-amp realising the amplifier.
    pub opamp: OpAmp,
    /// Gain-setting load resistor to the mid-rail reference, ohms
    /// (`None` when the natural gain is already at or below the spec).
    pub r_load: Option<f64>,
    /// Composed performance.
    pub perf: Performance,
}

impl AudioAmplifier {
    /// Designs the open-loop audio amplifier: gain `gain`, −3 dB bandwidth
    /// `bw`, load `cl`.
    ///
    /// # Errors
    ///
    /// Propagates op-amp design errors.
    pub fn design(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.audio_amp");
        with_thread_graph(tech, |g| g.evaluate(&AudioAmpNode { gain, bw, cl }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, gain: f64, bw: f64, cl: f64) -> Result<Self, ApeError> {
        if !(gain.is_finite() && gain > 1.0 && bw.is_finite() && bw > 0.0) {
            return Err(ApeError::BadSpec {
                param: "gain/bw",
                message: format!("need gain > 1 and bw > 0, got {gain}, {bw}"),
            });
        }
        // Open loop: UGF = gain · bw for a single-dominant-pole response,
        // with 40 % margin for the resistive-loading and parasitic losses.
        let spec = OpAmpSpec {
            gain,
            ugf_hz: 1.4 * gain * bw,
            area_max_m2: 1e-9,
            ibias: 5e-6,
            zout_ohm: None,
            cl,
        };
        let opamp = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec,
        )?;
        let a1 = opamp.stage1.perf.dc_gain.unwrap_or(gain.sqrt()).abs();
        let gm6 = opamp.m6.gm;
        let go67 = opamp.m6.gds + opamp.m7.gds;
        let a2_nat = gm6 / go67;
        let a2_target = gain / a1;
        let (r_load, a2) = if a2_target < a2_nat && a2_target > 0.1 {
            // gm6·(RL ∥ ro67) = a2_target  →  1/RL = gm6/a2_target − go67.
            let g_l = gm6 / a2_target - go67;
            (Some(1.0 / g_l), a2_target)
        } else {
            (None, a2_nat)
        };
        let a_total = a1 * a2;
        let ugf = opamp.perf.ugf_hz.unwrap_or(gain * bw);
        let perf = Performance {
            dc_gain: Some(a_total),
            bw_hz: Some(ugf / a_total),
            ugf_hz: Some(ugf),
            power_w: opamp.perf.power_w,
            gate_area_m2: opamp.perf.gate_area_m2,
            slew_v_per_s: opamp.perf.slew_v_per_s,
            ..Performance::default()
        };
        Ok(AudioAmplifier {
            gain,
            bw,
            opamp,
            r_load,
            perf,
        })
    }

    /// Open-loop AC testbench (differential drive) with the gain-setting
    /// load resistor to a mid-rail reference.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("audio-amp-tb");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        let vcm = 0.5 * tech.vdd;
        ckt.add_vsource("VINP", inp, Circuit::GROUND, vcm, 0.5, SourceWaveform::Dc)?;
        ckt.add_vsource("VINN", inn, Circuit::GROUND, vcm, -0.5, SourceWaveform::Dc)?;
        self.opamp
            .build_into(&mut ckt, tech, "X1", inp, inn, out, vdd)?;
        if let Some(rl) = self.r_load {
            let vref = ckt.node("vref");
            ckt.add_vdc("VREF", vref, Circuit::GROUND, vcm)?;
            ckt.add_resistor("RL", out, vref, rl)?;
        }
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.opamp.spec.cl)?;
        Ok(ckt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    #[test]
    fn inverting_amp_est_vs_sim() {
        let tech = Technology::default_1p2um();
        let amp = InvertingAmplifier::design(&tech, 4.0, 50e3, 10e-12).unwrap();
        let tb = amp.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(10.0, 1e8, 10).unwrap()).unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        assert!((g_sim - 4.0).abs() / 4.0 < 0.1, "sim gain {g_sim}");
        let bw_sim = measure::bandwidth_3db(&sweep, out).unwrap();
        let bw_est = amp.perf.bw_hz.unwrap();
        assert!(
            (bw_sim - bw_est).abs() / bw_est < 0.6,
            "bw sim {bw_sim} vs est {bw_est}"
        );
        assert!(bw_sim > 50e3, "meets bandwidth spec, got {bw_sim}");
    }

    #[test]
    fn noninverting_amp_gain_two() {
        let tech = Technology::default_1p2um();
        let amp = NonInvertingAmplifier::design(&tech, 2.0, 20e3, 10e-12).unwrap();
        let tb = amp.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[100.0]).unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        assert!((g_sim - 2.0).abs() < 0.15, "sim gain {g_sim}");
    }

    #[test]
    fn follower_case_k_equals_one() {
        let tech = Technology::default_1p2um();
        let amp = NonInvertingAmplifier::design(&tech, 1.0, 100e3, 10e-12).unwrap();
        let tb = amp.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[100.0]).unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        assert!((g_sim - 1.0).abs() < 0.05, "follower gain {g_sim}");
    }

    #[test]
    fn audio_amp_open_loop_spec() {
        let tech = Technology::default_1p2um();
        let amp = AudioAmplifier::design(&tech, 100.0, 20e3, 10e-12).unwrap();
        // The design carries deliberate margin: estimate lands at or above
        // the spec but within 2x.
        let est_bw = amp.perf.bw_hz.unwrap();
        assert!(
            (20e3 * 0.9..2.0 * 20e3).contains(&est_bw),
            "est bw {est_bw}"
        );
        let tb = amp.testbench(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(10.0, 1e8, 10).unwrap()).unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        assert!(g_sim > 70.0, "audio amp sim gain {g_sim}");
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        assert!(InvertingAmplifier::design(&tech, 0.5, 1e3, 1e-12).is_err());
        assert!(NonInvertingAmplifier::design(&tech, 2.0, -1.0, 1e-12).is_err());
        assert!(AudioAmplifier::design(&tech, 0.5, 1e3, 1e-12).is_err());
    }
}
