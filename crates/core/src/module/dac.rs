//! R-2R digital-to-analog converter module.

use crate::attrs::Performance;
use crate::basic::MirrorTopology;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, NodeId, Technology};
use ape_spice::dc_operating_point;

/// Graph node for [`R2rDac::design`].
#[derive(Debug, Clone, Copy)]
struct R2rDacNode {
    bits: u32,
    bw: f64,
}

impl Component for R2rDacNode {
    type Output = R2rDac;

    fn kind(&self) -> &'static str {
        "l4.dac"
    }

    fn fingerprint(&self) -> u64 {
        Fingerprint::new()
            .u64(u64::from(self.bits))
            .f64(self.bw)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp"]
    }

    fn calibrate(&self, out: &mut R2rDac, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l4.dac",
            &[f64::from(self.bits), crate::calibrate::ln_or_zero(self.bw)],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<R2rDac, ApeError> {
        R2rDac::design_uncached(graph.technology(), self.bits, self.bw)
    }
}

/// An R-2R ladder DAC with a unity-gain output buffer.
///
/// The bit legs switch between two reference levels `v_lo` and `v_hi`
/// (rather than the rails) so the buffer's input stays inside its
/// common-mode range; the ladder output is
/// `vout = v_lo + (v_hi − v_lo) · code / 2^bits`.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::module::R2rDac;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let dac = R2rDac::design(&tech, 4, 1e5)?;
/// assert_eq!(dac.bits, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct R2rDac {
    /// Resolution in bits.
    pub bits: u32,
    /// Ladder unit resistance, ohms.
    pub r: f64,
    /// Bit-low reference level, volts.
    pub v_lo: f64,
    /// Bit-high reference level, volts.
    pub v_hi: f64,
    /// Output buffer.
    pub buffer: OpAmp,
    /// Composed performance; `delay_s` is the 1 % settling estimate.
    pub perf: Performance,
}

impl R2rDac {
    /// Designs a `bits`-bit DAC with output update bandwidth `bw`.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for unsupported resolutions.
    /// * Op-amp design errors.
    pub fn design(tech: &Technology, bits: u32, bw: f64) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l4.dac");
        with_thread_graph(tech, |g| g.evaluate(&R2rDacNode { bits, bw }))
    }

    /// [`design`](Self::design) without the graph memo — the node's
    /// compute body.
    fn design_uncached(tech: &Technology, bits: u32, bw: f64) -> Result<Self, ApeError> {
        if !(1..=10).contains(&bits) {
            return Err(ApeError::BadSpec {
                param: "bits",
                message: format!("supported resolutions are 1..=10 bits, got {bits}"),
            });
        }
        if !(bw.is_finite() && bw > 0.0) {
            return Err(ApeError::BadSpec {
                param: "bw",
                message: format!("must be positive, got {bw}"),
            });
        }
        let spec = OpAmpSpec {
            gain: 10.0 * 2f64.powi(bits as i32), // gain error below an LSB
            ugf_hz: 3.0 * bw,
            area_max_m2: 1e-8,
            ibias: 2e-6,
            zout_ohm: Some(2e3),
            cl: 10e-12,
        };
        let buffer = OpAmp::design(
            tech,
            OpAmpTopology::miller(MirrorTopology::Simple, true),
            spec,
        )?;
        let t_settle = 4.6 / (2.0 * std::f64::consts::PI * bw);
        // The buffered op-amp's NMOS-follower output tops out roughly one
        // vgs below the rail, so keep the full-scale level below that.
        let v_lo = 1.0;
        let v_hi = tech.vdd - 1.6;
        let r = 10e3;
        // Ladder Thevenin resistance is R regardless of code; its static
        // draw is bounded by the full-scale span across the ladder.
        let ladder_power = (v_hi - v_lo).powi(2) / (2.0 * r);
        let perf = Performance {
            bw_hz: Some(bw),
            delay_s: Some(t_settle),
            power_w: buffer.perf.power_w + ladder_power,
            gate_area_m2: buffer.perf.gate_area_m2,
            ..Performance::default()
        };
        Ok(R2rDac {
            bits,
            r,
            v_lo,
            v_hi,
            buffer,
            perf,
        })
    }

    /// Ideal output voltage for `code`.
    pub fn ideal_level(&self, code: u32) -> f64 {
        self.v_lo + (self.v_hi - self.v_lo) * code as f64 / 2f64.powi(self.bits as i32)
    }

    /// Emits the transistor-level testbench for a static input `code`.
    /// Returns the circuit and its output node.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] when `code` exceeds the resolution.
    /// * Netlist errors.
    pub fn testbench_code(
        &self,
        tech: &Technology,
        code: u32,
    ) -> Result<(Circuit, NodeId), ApeError> {
        if code >= (1u32 << self.bits) {
            return Err(ApeError::BadSpec {
                param: "code",
                message: format!("code {code} exceeds {} bits", self.bits),
            });
        }
        let mut ckt = Circuit::new("r2r-dac-tb");
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let vlo = ckt.node("vlo");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vdc("VLO", vlo, Circuit::GROUND, self.v_lo)?;
        // R-2R ladder, MSB nearest the output node.
        // node chain: ladder output `lad`, then successive internal nodes.
        let lad = ckt.node("lad");
        let mut node = lad;
        for bit in (0..self.bits).rev() {
            // 2R leg to the bit source.
            let bit_set = (code >> bit) & 1 == 1;
            let bname = format!("b{bit}");
            let bnode = ckt.node(&bname);
            ckt.add_vdc(
                &format!("VB{bit}"),
                bnode,
                Circuit::GROUND,
                if bit_set { self.v_hi } else { self.v_lo },
            )?;
            ckt.add_resistor(&format!("R2A{bit}"), node, bnode, 2.0 * self.r)?;
            if bit > 0 {
                let next = ckt.node(&format!("n{bit}"));
                ckt.add_resistor(&format!("RS{bit}"), node, next, self.r)?;
                node = next;
            } else {
                // Terminating 2R to the low reference.
                ckt.add_resistor("RTERM", node, vlo, 2.0 * self.r)?;
            }
        }
        // Unity-gain buffer to the output.
        self.buffer
            .build_into(&mut ckt, tech, "X1", lad, out, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, 10e-12)?;
        Ok((ckt, out))
    }

    /// Simulates the static level for `code` through the full netlist.
    ///
    /// # Errors
    ///
    /// Propagates testbench and DC-solve failures.
    pub fn level(&self, tech: &Technology, code: u32) -> Result<f64, ApeError> {
        let (ckt, out) = self.testbench_code(tech, code)?;
        let op = dc_operating_point(&ckt, tech).map_err(|e| ApeError::Infeasible {
            component: "R2rDac",
            message: format!("dc solve failed: {e}"),
        })?;
        Ok(op.voltage(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_match_ideal_ladder() {
        let tech = Technology::default_1p2um();
        let dac = R2rDac::design(&tech, 4, 1e5).unwrap();
        for code in [0u32, 5, 10, 15] {
            let v = dac.level(&tech, code).unwrap();
            let ideal = dac.ideal_level(code);
            assert!(
                (v - ideal).abs() < 0.08,
                "code {code}: sim {v} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn transfer_is_monotone() {
        let tech = Technology::default_1p2um();
        let dac = R2rDac::design(&tech, 3, 1e5).unwrap();
        let mut last = -1.0;
        for code in 0..8 {
            let v = dac.level(&tech, code).unwrap();
            assert!(v > last, "code {code}: {v} <= {last}");
            last = v;
        }
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        assert!(R2rDac::design(&tech, 0, 1e5).is_err());
        assert!(R2rDac::design(&tech, 12, 1e5).is_err());
        let dac = R2rDac::design(&tech, 4, 1e5).unwrap();
        assert!(dac.testbench_code(&tech, 16).is_err());
    }
}
