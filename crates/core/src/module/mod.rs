//! Level 4 of the APE hierarchy: the analog module library.
//!
//! Paper §4.4: *"The library consists of circuits such as inverting
//! amplifiers, integrators, comparators, analog-to-digital converters,
//! digital-to-analog converters, filters, sample-and-hold circuits,
//! adders, etc. The performance parameters of these components are
//! estimated using the operational amplifier estimation attributes and the
//! equations in the component library which relate the ideal behavior of
//! the component with the non-ideal characteristics of the opamp."*
//!
//! Every module here owns one or more sized [`OpAmp`]s, corrects its ideal
//! transfer by the op-amp non-idealities (finite gain, finite GBW, output
//! impedance, slew), and emits a full transistor-level testbench.

mod adc;
mod amplifier;
mod dac;
mod filter;
mod integrator;
mod sample_hold;

pub use adc::{Comparator, FlashAdc};
pub use amplifier::{AudioAmplifier, InvertingAmplifier, NonInvertingAmplifier};
pub use dac::R2rDac;
pub use filter::{SallenKeyBandPass, SallenKeyLowPass};
pub use integrator::{Integrator, SummingAmplifier};
pub use sample_hold::SampleHold;

use crate::error::ApeError;
use crate::opamp::OpAmp;
use ape_netlist::{Circuit, NodeId, Technology};

/// Feedback-network resistance scale used across the module library, ohms.
pub(crate) const R_FEEDBACK: f64 = 20e3;

/// Builds a non-inverting gain-`k` amplifier around `amp` into `ckt`:
/// `input` drives the (+) input, the divider `RB`/`RA` from `out` to `vref`
/// sets the gain `k = 1 + RB/RA`. For `k = 1` the output is tied straight
/// back (a voltage follower).
///
/// # Errors
///
/// * [`ApeError::BadSpec`] for `k < 1`.
/// * Netlist errors for duplicate prefixes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn noninverting_into(
    ckt: &mut Circuit,
    tech: &Technology,
    amp: &OpAmp,
    prefix: &str,
    input: NodeId,
    out: NodeId,
    vref: NodeId,
    vdd: NodeId,
    k: f64,
) -> Result<(), ApeError> {
    if !(k.is_finite() && k >= 1.0) {
        return Err(ApeError::BadSpec {
            param: "k",
            message: format!("non-inverting gain must be >= 1, got {k}"),
        });
    }
    if (k - 1.0).abs() < 1e-9 {
        amp.build_into(ckt, tech, prefix, input, out, out, vdd)?;
        return Ok(());
    }
    let fb = ckt.fresh_node(&format!("{prefix}_fb"));
    amp.build_into(ckt, tech, prefix, input, fb, out, vdd)?;
    let ra = R_FEEDBACK;
    let rb = (k - 1.0) * ra;
    ckt.add_resistor(&format!("{prefix}.RA"), fb, vref, ra)?;
    ckt.add_resistor(&format!("{prefix}.RB"), out, fb, rb)?;
    Ok(())
}

/// Closed-loop gain of a non-inverting stage with nominal gain `k` under
/// finite open-loop gain `a_ol` — the paper's "ideal behaviour corrected by
/// op-amp non-idealities" primitive.
pub(crate) fn noninverting_gain_actual(k: f64, a_ol: f64) -> f64 {
    k / (1.0 + k / a_ol)
}

/// Closed-loop −3 dB bandwidth of a non-inverting stage with noise gain `k`
/// fed by an op-amp with unity-gain frequency `ugf`.
pub(crate) fn noninverting_bw(k: f64, ugf: f64) -> f64 {
    ugf / k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_correction_approaches_ideal() {
        assert!((noninverting_gain_actual(2.0, 1e9) - 2.0).abs() < 1e-6);
        // A = 100, k = 2 → 2/(1+0.02) ≈ 1.9608
        let g = noninverting_gain_actual(2.0, 100.0);
        assert!((g - 1.9608).abs() < 1e-3);
    }

    #[test]
    fn bandwidth_scales_inverse_noise_gain() {
        assert_eq!(noninverting_bw(2.0, 2e6), 1e6);
        assert_eq!(noninverting_bw(1.0, 2e6), 2e6);
    }
}
