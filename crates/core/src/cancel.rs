//! Cooperative cancellation for long-running estimation work.
//!
//! Batch drivers (the `ape-farm` worker pool) need to abandon jobs whose
//! deadline has passed or whose batch was cancelled, without killing the
//! worker thread. The estimator cooperates: a [`CancelToken`] is parked as
//! the *thread-current* token for the duration of a job, and the hierarchy
//! checks it between levels — each [`OpAmp::design`](crate::opamp::OpAmp)
//! overdrive refinement attempt, each synthesis temperature plateau — so a
//! cancelled job unwinds with [`ApeError::Cancelled`] within one level's
//! worth of work.
//!
//! Tokens form a tree: [`CancelToken::child`] inherits its parent's state,
//! so cancelling a farm cancels every job token derived from it while one
//! job's deadline never leaks into its siblings.
//!
//! # Example
//!
//! ```
//! use ape_core::cancel::CancelToken;
//!
//! let farm = CancelToken::new();
//! let job = farm.child();
//! assert!(!job.is_cancelled());
//! farm.cancel();
//! assert!(job.is_cancelled()); // parent cancellation propagates
//! ```

use crate::error::ApeError;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        match &self.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }
}

/// A shareable cancellation token with an optional deadline and an optional
/// parent. Cloning shares the same state; [`CancelToken::child`] derives a
/// token that observes its parent but can be cancelled independently.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline, no parent.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A fresh token that auto-cancels once `timeout` has elapsed.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: None,
            }),
        }
    }

    /// Derives a token that is cancelled whenever `self` is, and can
    /// additionally be cancelled on its own without affecting `self`.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Like [`CancelToken::child`] with an additional deadline: the derived
    /// token auto-cancels once `timeout` elapses.
    pub fn child_with_timeout(&self, timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: Some(self.inner.clone()),
            }),
        }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once this token, an ancestor, or an expired deadline has
    /// cancelled the work.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// [`ApeError::Cancelled`] when cancelled, `Ok(())` otherwise — the
    /// form the estimator's internal checkpoints use.
    pub fn check(&self) -> Result<(), ApeError> {
        if self.is_cancelled() {
            Err(ApeError::Cancelled)
        } else {
            Ok(())
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Installs `token` as this thread's current cancellation token for the
/// lifetime of the returned guard (the previous token is restored on drop).
/// Estimator checkpoints observe it through [`check_current`].
#[must_use = "the token is uninstalled when the guard drops"]
pub fn set_current(token: CancelToken) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(token));
    CurrentGuard { prev }
}

/// Restores the previously current token when dropped.
#[derive(Debug)]
pub struct CurrentGuard {
    prev: Option<CancelToken>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// A clone of this thread's current token, if one is installed.
///
/// Parallel fan-out sites use this to carry cancellation across the
/// executor boundary: the submitting thread captures its token into each
/// task closure, and the task re-installs it (via [`set_current`]) on
/// whichever thread runs it, so worker-side checkpoints observe the same
/// cancellation the sequential loop would.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// `true` when the thread-current token (if any) has been cancelled.
pub fn current_cancelled() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    })
}

/// Checkpoint used between hierarchy levels: fails with
/// [`ApeError::Cancelled`] when the thread-current token has fired. A no-op
/// (always `Ok`) on threads with no token installed, so direct synchronous
/// callers never pay for cancellation they did not ask for.
pub fn check_current() -> Result<(), ApeError> {
    if current_cancelled() {
        ape_probe::counter("ape.cancel.observed", 1);
        Err(ApeError::Cancelled)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(ApeError::Cancelled));
    }

    #[test]
    fn clone_shares_state_child_does_not_leak_up() {
        let parent = CancelToken::new();
        let sibling = parent.clone();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak upward");
        parent.cancel();
        assert!(sibling.is_cancelled(), "clones share state");
    }

    #[test]
    fn deadline_fires() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        assert!(t.is_cancelled());
        let child = CancelToken::new().child_with_timeout(Duration::from_millis(0));
        assert!(child.is_cancelled());
        let slow = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!slow.is_cancelled());
    }

    #[test]
    fn current_token_scoping() {
        assert!(check_current().is_ok(), "no token installed → ok");
        let t = CancelToken::new();
        {
            let _g = set_current(t.clone());
            assert!(check_current().is_ok());
            t.cancel();
            assert!(check_current().is_err());
            {
                // Nested guard shadows, then restores the outer token.
                let _g2 = set_current(CancelToken::new());
                assert!(check_current().is_ok());
            }
            assert!(check_current().is_err());
        }
        assert!(check_current().is_ok(), "guard drop uninstalls the token");
    }
}
