//! APE — the Analog Performance Estimator (DATE 1999 reproduction).
//!
//! APE accepts the design parameters of an analog circuit and determines its
//! performance parameters along with anticipated sizes of all the circuit
//! elements (paper abstract). It is structured as the paper's Figure 2
//! hierarchy:
//!
//! | Level | Module | Contents |
//! |---|---|---|
//! | 1 | `ape-mos` (re-exported as [`level1`]) | CMOS transistor models and inverse sizing |
//! | 2 | [`basic`] | DC bias, current mirrors, gain stages, followers, differential pairs |
//! | 3 | [`opamp`] | operational amplifiers composed of level-2 blocks |
//! | 4 | [`module`] | analog library modules: amplifiers, filters, S&H, ADC, DAC |
//!
//! Beyond the hierarchy, [`netest`] implements the paper's §6 extension —
//! moment-based performance estimation for arbitrary user-level netlists —
//! and [`folded`] adds a second level-3 topology (folded-cascode OTA),
//! exercising the paper's "easily add new components" claim.
//!
//! All four levels evaluate through the [`graph`] — a memoized component
//! DAG keyed by bit-exact input fingerprints — so re-estimating after a
//! spec or design-variable delta (an annealing move, a sweep neighbor)
//! recomputes only the dirty subtrees and is bit-identical to a cold run.
//!
//! Every sized object carries a [`Performance`] attribute sheet and can emit
//! a SPICE-ready testbench [`Circuit`](ape_netlist::Circuit) for
//! verification with `ape-spice` — exactly the est-vs-sim methodology of the
//! paper's Tables 2, 3 and 5.
//!
//! # Example
//!
//! Size a mirror-loaded differential amplifier for a gain of 1000 at 1 µA
//! and inspect the estimate:
//!
//! ```
//! use ape_netlist::Technology;
//! use ape_core::basic::{DiffPair, DiffTopology};
//!
//! # fn main() -> Result<(), ape_core::ApeError> {
//! let tech = Technology::default_1p2um();
//! let pair = DiffPair::design(&tech, DiffTopology::MirrorLoad, 1000.0, 1e-6, 1e-12)?;
//! println!("{}", pair.perf); // gain, UGF, power, area, ...
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attrs;
pub mod basic;
pub mod cache;
pub mod calibrate;
pub mod cancel;
mod error;
pub mod folded;
pub mod graph;
pub mod module;
pub mod netest;
pub mod opamp;

pub use attrs::{relative_error, Performance};
pub use error::ApeError;

/// Level 1 of the hierarchy: transistor models and sizing (re-export of
/// [`ape_mos`]).
pub mod level1 {
    pub use ape_mos::sizing::{
        size_for_gm_id, size_for_gm_id_at, size_for_id_vov, size_for_id_vov_at, threshold,
        vgs_for_id, SizedMos,
    };
    pub use ape_mos::{evaluate, BiasPoint, DeviceEval, Region};
}
