//! Performance attributes attached to every sized object.
//!
//! The paper describes each sized component as "an object which contains the
//! size and performance parameters", propagated up the hierarchy. This
//! module is that object's attribute sheet.

use std::fmt;

/// Performance attributes of a sized analog object.
///
/// Fields that do not apply to a component are `None`; `power_w` and
/// `gate_area_m2` always apply.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Performance {
    /// DC (low-frequency) voltage gain, V/V, signed (negative = inverting).
    pub dc_gain: Option<f64>,
    /// Unity-gain frequency, hertz.
    pub ugf_hz: Option<f64>,
    /// −3 dB bandwidth, hertz.
    pub bw_hz: Option<f64>,
    /// Static power dissipation, watts.
    pub power_w: f64,
    /// Total MOS gate area, square metres.
    pub gate_area_m2: f64,
    /// Output impedance, ohms.
    pub zout_ohm: Option<f64>,
    /// Common-mode rejection ratio, decibels.
    pub cmrr_db: Option<f64>,
    /// Slew rate, volts/second.
    pub slew_v_per_s: Option<f64>,
    /// Bias / quiescent branch current, amperes.
    pub ibias_a: Option<f64>,
    /// Generated DC output voltage, volts (bias generators).
    pub vout_v: Option<f64>,
    /// Response delay, seconds (comparators, ADCs, S&H).
    pub delay_s: Option<f64>,
}

impl Performance {
    /// Gate area in square micrometres, the unit the paper tabulates.
    pub fn gate_area_um2(&self) -> f64 {
        self.gate_area_m2 * 1e12
    }

    /// Power in milliwatts, the unit the paper tabulates.
    pub fn power_mw(&self) -> f64 {
        self.power_w * 1e3
    }

    /// UGF in megahertz, the unit the paper tabulates.
    pub fn ugf_mhz(&self) -> Option<f64> {
        self.ugf_hz.map(|f| f * 1e-6)
    }

    /// Slew rate in V/µs, the unit the paper tabulates.
    pub fn slew_v_per_us(&self) -> Option<f64> {
        self.slew_v_per_s.map(|s| s * 1e-6)
    }

    /// Gain magnitude in decibels.
    pub fn gain_db(&self) -> Option<f64> {
        self.dc_gain.map(|g| 20.0 * g.abs().max(1e-30).log10())
    }
}

impl fmt::Display for Performance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:.3}mW area={:.1}um2",
            self.power_mw(),
            self.gate_area_um2()
        )?;
        if let Some(g) = self.dc_gain {
            write!(f, " A={g:.2}")?;
        }
        if let Some(u) = self.ugf_mhz() {
            write!(f, " UGF={u:.3}MHz")?;
        }
        if let Some(b) = self.bw_hz {
            write!(f, " BW={:.3}kHz", b * 1e-3)?;
        }
        Ok(())
    }
}

/// Relative error between an estimate and a reference, as used in the
/// est-vs-sim accuracy gates of the integration tests.
pub fn relative_error(estimate: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((estimate - reference) / reference).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let p = Performance {
            dc_gain: Some(-100.0),
            ugf_hz: Some(2.5e6),
            power_w: 0.5e-3,
            gate_area_m2: 150e-12,
            slew_v_per_s: Some(2e6),
            ..Performance::default()
        };
        assert!((p.power_mw() - 0.5).abs() < 1e-12);
        assert!((p.gate_area_um2() - 150.0).abs() < 1e-9);
        assert!((p.ugf_mhz().unwrap() - 2.5).abs() < 1e-12);
        assert!((p.slew_v_per_us().unwrap() - 2.0).abs() < 1e-12);
        assert!((p.gain_db().unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_core_fields() {
        let p = Performance {
            dc_gain: Some(10.0),
            power_w: 1e-3,
            gate_area_m2: 1e-12,
            ..Performance::default()
        };
        let s = p.to_string();
        assert!(s.contains("mW") && s.contains("A=10"));
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(1.0, 2.0), 0.5);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}
