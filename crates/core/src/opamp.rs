//! Level 3 of the APE hierarchy: operational amplifiers.
//!
//! Paper §4.3: an op-amp is three stages — (1) differential input amplifier,
//! (2) level shift / differential-to-single-ended conversion / gain stage,
//! (3) optional output buffer for heavy loads — each built from the level-2
//! library. The topology enumeration matches Table 1's columns: the bias
//! current source is a simple or Wilson mirror (`CurrSrc`), the input stage
//! is the mirror-loaded CMOS pair (`Diffgain = CMOS`), and the buffer is
//! present when the load demands it (`Buff`).
//!
//! The realised circuit is the classic two-stage Miller op-amp: NMOS input
//! pair `M1`/`M2` with PMOS mirror load `M3`/`M4`, PMOS common-source
//! second stage `M6` with NMOS sink `M7`, Miller capacitor `CC` with
//! nulling resistor `RZ`, and an optional NMOS source-follower buffer.

use crate::attrs::Performance;
use crate::basic::{DiffPair, DiffTopology, MirrorTopology};
use crate::cache::{cached_size_for_gm_id_at, cached_size_for_id_vov_at};
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_mos::fingerprint::Fingerprint;
use ape_mos::sizing::SizedMos;
use ape_netlist::{Circuit, MosPolarity, NodeId, SourceWaveform, Technology};

/// Topology selections for an op-amp (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpTopology {
    /// Bias current-source topology (`CurrSrc`): simple mirror or Wilson.
    pub current_source: MirrorTopology,
    /// Include the output buffer stage (`Buff`).
    pub buffer: bool,
    /// Internal Miller compensation.
    pub compensated: bool,
}

impl OpAmpTopology {
    /// Classic Miller two-stage with the given bias mirror and buffer choice.
    pub fn miller(current_source: MirrorTopology, buffer: bool) -> Self {
        OpAmpTopology {
            current_source,
            buffer,
            compensated: true,
        }
    }

    /// Folds this topology into an estimation-graph fingerprint.
    pub fn fold_fingerprint(&self, fp: Fingerprint) -> Fingerprint {
        fp.u8(self.current_source.fingerprint_tag())
            .bool(self.buffer)
            .bool(self.compensated)
    }
}

/// Performance specification for an op-amp (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpSpec {
    /// Required DC gain magnitude (absolute, not dB).
    pub gain: f64,
    /// Required unity-gain frequency, hertz.
    pub ugf_hz: f64,
    /// Gate-area budget, square metres (audited, not driving the sizing).
    pub area_max_m2: f64,
    /// Reference bias current, amperes.
    pub ibias: f64,
    /// Required output impedance, ohms (buffered designs).
    pub zout_ohm: Option<f64>,
    /// Load capacitance, farads.
    pub cl: f64,
}

impl OpAmpSpec {
    /// Folds every spec field into an estimation-graph fingerprint
    /// (bit-exactly; the `zout_ohm` option is tagged so `None` and
    /// `Some(0.0)` stay distinct).
    pub fn fold_fingerprint(&self, fp: Fingerprint) -> Fingerprint {
        let fp = fp
            .f64(self.gain)
            .f64(self.ugf_hz)
            .f64(self.area_max_m2)
            .f64(self.ibias)
            .f64(self.cl);
        match self.zout_ohm {
            Some(z) => fp.u8(1).f64(z),
            None => fp.u8(0),
        }
    }
}

/// A sparse change to an [`OpAmpSpec`]: `Some` fields replace the
/// previous value, `None` fields are kept. This is the "delta" half of
/// incremental re-estimation — see [`OpAmp::redesign`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpecDelta {
    /// New DC gain requirement, if changed.
    pub gain: Option<f64>,
    /// New unity-gain frequency requirement, if changed.
    pub ugf_hz: Option<f64>,
    /// New gate-area budget, if changed.
    pub area_max_m2: Option<f64>,
    /// New reference bias current, if changed.
    pub ibias: Option<f64>,
    /// New output-impedance requirement, if changed (the outer `Option`
    /// is "changed?", the inner one the new value — `Some(None)` clears
    /// the requirement).
    pub zout_ohm: Option<Option<f64>>,
    /// New load capacitance, if changed.
    pub cl: Option<f64>,
}

impl SpecDelta {
    /// `true` when no field changes.
    pub fn is_empty(&self) -> bool {
        *self == SpecDelta::default()
    }

    /// Applies the delta to `base`, returning the updated specification.
    pub fn apply(&self, base: &OpAmpSpec) -> OpAmpSpec {
        OpAmpSpec {
            gain: self.gain.unwrap_or(base.gain),
            ugf_hz: self.ugf_hz.unwrap_or(base.ugf_hz),
            area_max_m2: self.area_max_m2.unwrap_or(base.area_max_m2),
            ibias: self.ibias.unwrap_or(base.ibias),
            zout_ohm: self.zout_ohm.unwrap_or(base.zout_ohm),
            cl: self.cl.unwrap_or(base.cl),
        }
    }
}

/// Estimation-graph node for a full [`OpAmp::design`] (the overdrive
/// refinement loop). Its children are the per-overdrive attempts.
#[derive(Debug, Clone, Copy)]
struct OpAmpNode {
    topology: OpAmpTopology,
    spec: OpAmpSpec,
}

impl Component for OpAmpNode {
    type Output = OpAmp;

    fn kind(&self) -> &'static str {
        "l3.opamp"
    }

    fn fingerprint(&self) -> u64 {
        self.spec
            .fold_fingerprint(self.topology.fold_fingerprint(Fingerprint::new()))
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l3.opamp.attempt"]
    }

    // Corrections apply at the walk winner, not per attempt: the
    // overdrive selection below compares *uncalibrated* attempt areas, so
    // an `l3.opamp` table cannot flip which candidate wins.
    fn calibrate(&self, out: &mut OpAmp, cal: &ape_calib::Calibration) -> Result<(), ApeError> {
        crate::calibrate::apply_performance(
            cal,
            "l3.opamp",
            &[
                crate::calibrate::ln_or_zero(self.spec.gain),
                crate::calibrate::ln_or_zero(self.spec.ugf_hz),
            ],
            &mut out.perf,
        )
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<OpAmp, ApeError> {
        // Area-aware refinement: a lower signal overdrive shrinks the
        // channel-length stretching that manufacturable widths force on
        // low-current designs, at the cost of slew headroom. Walk down
        // until the area budget is met.
        let exec = ape_exec::Executor::global();
        if exec.workers() > 0 {
            // With executor workers available, evaluate every overdrive
            // attempt concurrently and fold with the same selection rule
            // as the sequential walk. Attempts are pure memoized
            // functions, so computing the tail eagerly changes
            // wall-clock, never the chosen result.
            crate::cancel::check_current()?;
            let attempts: Vec<OpAmpAttemptNode> = VOV_WALK
                .iter()
                .map(|&vov_sig| OpAmpAttemptNode {
                    topology: self.topology,
                    spec: self.spec,
                    vov_sig,
                })
                .collect();
            let results =
                crate::graph::evaluate_many(exec, graph.technology(), &attempts).into_iter();
            return fold_attempts(results, self.spec.area_max_m2);
        }
        let results = VOV_WALK.iter().map(|&vov_sig| {
            // Cancellation checkpoint between refinement attempts: a batch
            // driver abandoning this job loses at most one attempt's work.
            match crate::cancel::check_current() {
                Ok(()) => graph.evaluate(&OpAmpAttemptNode {
                    topology: self.topology,
                    spec: self.spec,
                    vov_sig,
                }),
                Err(e) => Err(e),
            }
        });
        fold_attempts(results, self.spec.area_max_m2)
    }
}

/// Selects the overdrive-walk winner from per-attempt results taken in
/// [`VOV_WALK`] order: the first area-fitting `Ok` wins; otherwise the
/// last `Ok` (closest to fitting — the walk shrinks area monotonically);
/// otherwise the first non-cancellation `Err`. Cancellation always wins
/// so an abandoned job unwinds promptly. Shared verbatim by the
/// sequential walk and the executor fan-out so the two paths cannot
/// diverge; the early `return` short-circuits the lazy sequential
/// iterator exactly where the old loop stopped evaluating.
fn fold_attempts(
    results: impl Iterator<Item = Result<OpAmp, ApeError>>,
    area_max_m2: f64,
) -> Result<OpAmp, ApeError> {
    let mut last: Option<Result<OpAmp, ApeError>> = None;
    for attempt in results {
        match attempt {
            Ok(amp) => {
                let fits = amp.perf.gate_area_m2 <= area_max_m2;
                let ret = Ok(amp);
                if fits {
                    return ret;
                }
                last = Some(ret);
            }
            Err(ApeError::Cancelled) => return Err(ApeError::Cancelled),
            Err(e) => {
                if last.is_none() {
                    last = Some(Err(e));
                }
            }
        }
    }
    last.unwrap_or(Err(ApeError::Infeasible {
        component: "OpAmp",
        message: "no overdrive candidate produced a design".into(),
    }))
}

/// Estimation-graph node for one sizing pass at a fixed signal overdrive.
#[derive(Debug, Clone, Copy)]
struct OpAmpAttemptNode {
    topology: OpAmpTopology,
    spec: OpAmpSpec,
    vov_sig: f64,
}

impl Component for OpAmpAttemptNode {
    type Output = OpAmp;

    fn kind(&self) -> &'static str {
        "l3.opamp.attempt"
    }

    fn fingerprint(&self) -> u64 {
        self.spec
            .fold_fingerprint(self.topology.fold_fingerprint(Fingerprint::new()))
            .f64(self.vov_sig)
            .finish()
    }

    fn children(&self) -> &'static [&'static str] {
        &["l2.diffpair", "l1.gm_id", "l1.id_vov"]
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<OpAmp, ApeError> {
        OpAmp::design_attempt(graph.technology(), self.topology, self.spec, self.vov_sig)
    }
}

/// A fully sized operational amplifier with composed performance estimates.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::basic::MirrorTopology;
/// use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let spec = OpAmpSpec {
///     gain: 200.0,
///     ugf_hz: 5e6,
///     area_max_m2: 5000e-12,
///     ibias: 10e-6,
///     zout_ohm: Some(10e3),
///     cl: 10e-12,
/// };
/// let amp = OpAmp::design(&tech, OpAmpTopology::miller(MirrorTopology::Simple, true), spec)?;
/// assert!(amp.perf.dc_gain.unwrap().abs() >= 150.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OpAmp {
    /// The specification this amplifier was sized for.
    pub spec: OpAmpSpec,
    /// Topology selections.
    pub topology: OpAmpTopology,
    /// Input stage (mirror-loaded differential pair).
    pub stage1: DiffPair,
    /// Second-stage PMOS common-source driver.
    pub m6: SizedMos,
    /// Second-stage NMOS current sink.
    pub m7: SizedMos,
    /// Bias diode device (reference branch).
    pub mb1: SizedMos,
    /// Tail current-source device(s): 1 for simple, 2 for Wilson.
    pub tail_devices: Vec<SizedMos>,
    /// Buffer follower device, if `topology.buffer`.
    pub mbuf: Option<SizedMos>,
    /// Buffer sink device, if `topology.buffer`.
    pub msink: Option<SizedMos>,
    /// Tail current, amperes.
    pub itail: f64,
    /// Second-stage current, amperes.
    pub i2: f64,
    /// Buffer current, amperes (0 without buffer).
    pub ibuf: f64,
    /// Miller compensation capacitor, farads.
    pub cc: f64,
    /// Zero-nulling series resistor, ohms.
    pub rz: f64,
    /// Composed performance attributes.
    pub perf: Performance,
}

/// Overdrive used for signal devices throughout the op-amp sizing.
const VOV_SIG: f64 = 0.25;
/// The overdrive refinement walk, in preference order: the nominal
/// signal overdrive first, then progressively lower values that trade
/// slew headroom for gate area.
const VOV_WALK: [f64; 4] = [VOV_SIG, 0.15, 0.10, 0.07];
/// Overdrive used for bias mirrors.
const VOV_BIAS: f64 = 0.35;

impl OpAmp {
    /// Sizes a two-stage Miller op-amp for `spec` with topology `topology`.
    ///
    /// The procedure follows the paper's decomposition: requirements flow
    /// down (UGF → gm₁ → tail current; gain → per-stage gains → channel
    /// lengths; Zout → buffer gm), devices are sized at level 1, and the
    /// performance attributes are composed back up.
    ///
    /// # Errors
    ///
    /// * [`ApeError::BadSpec`] for non-positive gain/UGF/CL/Ibias.
    /// * [`ApeError::Infeasible`] when a stage cannot reach its allocation.
    pub fn design(
        tech: &Technology,
        topology: OpAmpTopology,
        spec: OpAmpSpec,
    ) -> Result<Self, ApeError> {
        let _span = ape_probe::span("ape.l3.opamp");
        // An already-cancelled job must not be answered from the memo.
        crate::cancel::check_current()?;
        with_thread_graph(tech, |g| g.evaluate(&OpAmpNode { topology, spec }))
    }

    /// Incrementally re-designs after a spec delta: applies `delta` to
    /// `previous.spec` and re-estimates `previous.topology` through this
    /// thread's warm estimation graph, so only the subtrees whose inputs
    /// actually changed are recomputed. The result is bit-identical to a
    /// cold [`OpAmp::design`] at the updated spec — memoized nodes are
    /// pure functions of their fingerprinted inputs.
    ///
    /// # Errors
    ///
    /// Same as [`OpAmp::design`] at the updated spec.
    pub fn redesign(
        tech: &Technology,
        previous: &OpAmp,
        delta: &SpecDelta,
    ) -> Result<Self, ApeError> {
        Self::design(tech, previous.topology, delta.apply(&previous.spec))
    }

    /// Designs several independent op-amps, scheduling them as tasks on
    /// the process-wide executor (see [`OpAmp::design_many_on`]). Results
    /// come back in request order and are bit-identical to calling
    /// [`OpAmp::design`] on each request sequentially.
    ///
    /// # Errors
    ///
    /// Each slot carries the same errors [`OpAmp::design`] would return
    /// for that request; one request failing does not disturb the others.
    pub fn design_many(
        tech: &Technology,
        requests: &[(OpAmpTopology, OpAmpSpec)],
    ) -> Vec<Result<Self, ApeError>> {
        Self::design_many_on(ape_exec::Executor::global(), tech, requests)
    }

    /// [`OpAmp::design_many`] on an explicit executor: each request
    /// becomes one `l3.opamp` subtree evaluated through
    /// [`evaluate_many`](crate::graph::evaluate_many), so independent
    /// designs proceed concurrently while sharing subtrees through this
    /// thread's [`SharedMemo`](crate::graph::SharedMemo) (when one is
    /// installed). With zero executor workers this is exactly the
    /// sequential loop.
    ///
    /// # Errors
    ///
    /// Per-slot, same as [`OpAmp::design`].
    pub fn design_many_on(
        exec: &ape_exec::Executor,
        tech: &Technology,
        requests: &[(OpAmpTopology, OpAmpSpec)],
    ) -> Vec<Result<Self, ApeError>> {
        let _span = ape_probe::span("ape.l3.opamp.many");
        if let Err(e) = crate::cancel::check_current() {
            return requests.iter().map(|_| Err(e.clone())).collect();
        }
        let nodes: Vec<OpAmpNode> = requests
            .iter()
            .map(|&(topology, spec)| OpAmpNode { topology, spec })
            .collect();
        crate::graph::evaluate_many(exec, tech, &nodes)
    }

    /// One sizing pass at a fixed signal overdrive.
    fn design_attempt(
        tech: &Technology,
        topology: OpAmpTopology,
        spec: OpAmpSpec,
        vov_sig: f64,
    ) -> Result<Self, ApeError> {
        let c = crate::basic::cards(tech)?;
        if !(spec.gain.is_finite() && spec.gain > 1.0) {
            return Err(ApeError::BadSpec {
                param: "gain",
                message: format!("need gain > 1, got {}", spec.gain),
            });
        }
        if !(spec.ugf_hz.is_finite() && spec.ugf_hz > 0.0) {
            return Err(ApeError::BadSpec {
                param: "ugf_hz",
                message: format!("must be positive, got {}", spec.ugf_hz),
            });
        }
        if !(spec.cl.is_finite() && spec.cl > 0.0) {
            return Err(ApeError::BadSpec {
                param: "cl",
                message: format!("must be positive, got {}", spec.cl),
            });
        }
        if !(spec.ibias.is_finite() && spec.ibias > 0.0) {
            return Err(ApeError::BadSpec {
                param: "ibias",
                message: format!("must be positive, got {}", spec.ibias),
            });
        }

        // --- Requirement decomposition -------------------------------------
        // Compensation: Cc a fixed fraction of CL (classic 0.22 rule keeps
        // the nondominant pole manageable). A 15 % UGF margin absorbs the
        // Miller-effect and parasitic losses the composition ignores.
        let cc = (0.22 * spec.cl).max(0.8e-12);
        let ugf_target = 1.15 * spec.ugf_hz;
        let gm1 = 2.0 * std::f64::consts::PI * ugf_target * cc;
        let itail = gm1 * vov_sig; // gm = 2·(itail/2)/vov

        // Gain budget across stages.
        let a_buf = if topology.buffer { 0.85 } else { 1.0 };
        let a12 = spec.gain / a_buf;
        let a_stage = a12.sqrt().max(2.0);

        // --- Stage 1: mirror-loaded pair -----------------------------------
        let stage1 = DiffPair::design_with_overdrive(
            tech,
            DiffTopology::MirrorLoad,
            a_stage,
            itail,
            0.0,
            vov_sig,
        )?;

        // Level-2 → level-3 boundary: the remaining stages are pure level-1
        // solves, so this is the last cheap place to abandon a cancelled job.
        crate::cancel::check_current()?;

        // --- Stage 2: PMOS common source + NMOS sink -----------------------
        // M6's gate sits at stage 1's quiescent output, which the mirror
        // diode M3 pins at vdd − vgs(M3). Sizing M6 at that same overdrive
        // avoids a systematic current imbalance that would rail the stage.
        let vov6 = (stage1.load.vgs.abs() - ape_mos::sizing::threshold(c.p, 0.0)).clamp(0.1, 1.0);
        // Nondominant pole gm6/CL must clear the UGF for phase margin.
        let gm6 = 2.0 * std::f64::consts::PI * ugf_target * 2.5 * spec.cl;
        let i2 = gm6 * vov6 / 2.0;
        let lam_sum = c.n.lambda + c.p.lambda;
        let l2_gain = crate::basic::length_for_gain(a_stage, vov_sig, lam_sum, tech);
        let l2 = crate::basic::length_for_min_width(
            crate::basic::aspect_for_id_vov(c.p, i2, vov6),
            l2_gain,
            tech,
        );
        let m6 = cached_size_for_id_vov_at(tech, true, i2, vov6, l2, tech.vdd / 2.0, 0.0)?;
        let l7 = crate::basic::length_for_min_width(
            crate::basic::aspect_for_id_vov(c.n, i2, VOV_BIAS),
            l2,
            tech,
        );
        let m7 = cached_size_for_id_vov_at(tech, false, i2, VOV_BIAS, l7, tech.vdd / 2.0, 0.0)?;
        let a2 = m6.gm / (m6.gds + m7.gds);

        // --- Bias network ---------------------------------------------------
        // Mirrored devices keep their W/L ratios even when the channel is
        // stretched for minimum width, so the current ratios survive.
        let l_bias = |id: f64| {
            crate::basic::length_for_min_width(
                crate::basic::aspect_for_id_vov(c.n, id, VOV_BIAS),
                crate::basic::L_BIAS,
                tech,
            )
        };
        let mb1 = cached_size_for_id_vov_at(
            tech,
            false,
            spec.ibias,
            VOV_BIAS,
            l_bias(spec.ibias),
            1.2,
            0.0,
        )?;
        let mut tail_devices = Vec::new();
        match topology.current_source {
            MirrorTopology::Simple => {
                let mtail = cached_size_for_id_vov_at(
                    tech,
                    false,
                    itail,
                    VOV_BIAS,
                    l_bias(itail),
                    1.4,
                    0.0,
                )?;
                tail_devices.push(mtail);
            }
            MirrorTopology::Cascode => {
                // Stacked mirror: bottom device + cascode, biased from a
                // two-diode reference stack.
                let mtail = cached_size_for_id_vov_at(
                    tech,
                    false,
                    itail,
                    VOV_BIAS,
                    l_bias(itail),
                    0.5,
                    0.0,
                )?;
                let mtcasc = cached_size_for_id_vov_at(
                    tech,
                    false,
                    itail,
                    VOV_BIAS,
                    l_bias(itail),
                    0.9,
                    0.5,
                )?;
                tail_devices.push(mtail);
                tail_devices.push(mtcasc);
            }
            MirrorTopology::Wilson => {
                let mdiode = cached_size_for_id_vov_at(
                    tech,
                    false,
                    itail,
                    VOV_BIAS,
                    l_bias(itail),
                    1.1,
                    0.0,
                )?;
                let mcasc = cached_size_for_id_vov_at(
                    tech,
                    false,
                    itail,
                    VOV_BIAS,
                    l_bias(itail),
                    0.5,
                    1.1,
                )?;
                tail_devices.push(mdiode);
                tail_devices.push(mcasc);
            }
        }

        // --- Buffer ---------------------------------------------------------
        let (mbuf, msink, ibuf, a_buf_est, zout_est) = if topology.buffer {
            let zout_target = spec.zout_ohm.unwrap_or(10e3);
            if !(zout_target.is_finite() && zout_target > 0.0) {
                return Err(ApeError::BadSpec {
                    param: "zout_ohm",
                    message: "output impedance must be positive".into(),
                });
            }
            // zout ≈ 1/(gm+gmb): budget gm = 1.25/zout. The buffer's own
            // pole gm_b/CL must also clear the UGF, or it eats the phase
            // margin and drags the crossover down.
            let gm_b =
                (1.25 / zout_target).max(2.0 * std::f64::consts::PI * 3.0 * ugf_target * spec.cl);
            let ib = (gm_b * VOV_SIG / 2.0).max(5e-6);
            let vout_q = 0.45 * tech.vdd;
            let gm_b = gm_b.max(2.0 * ib / 1.2); // keep vov inside the domain
            let mbuf = cached_size_for_gm_id_at(
                tech,
                false,
                gm_b,
                ib,
                crate::basic::L_BIAS,
                tech.vdd - vout_q,
                vout_q,
            )?;
            let msink = cached_size_for_id_vov_at(
                tech,
                false,
                ib,
                VOV_BIAS,
                crate::basic::L_BIAS,
                vout_q,
                0.0,
            )?;
            let gtot = mbuf.gm + mbuf.gmb + mbuf.gds + msink.gds;
            let a_b = mbuf.gm / gtot;
            (Some(mbuf), Some(msink), ib, a_b, 1.0 / gtot)
        } else {
            let zout2 = 1.0 / (m6.gds + m7.gds);
            (None, None, 0.0, 1.0, zout2)
        };

        // --- Composition ----------------------------------------------------
        let a1 = stage1.perf.dc_gain.unwrap_or(a_stage);
        let a_total = a1.abs() * a2 * a_buf_est;
        // The gate-drain overlap of M6 rides in parallel with Cc.
        let ugf = stage1.input.gm / (2.0 * std::f64::consts::PI * (cc + m6.caps.cgd));
        let sr = (itail / cc).min(i2 / spec.cl);
        let power = tech.vdd * (spec.ibias + itail + i2 + ibuf);
        let mut area = 2.0 * stage1.input.gate_area()
            + 2.0 * stage1.load.gate_area()
            + m6.gate_area()
            + m7.gate_area()
            + mb1.gate_area()
            + tail_devices.iter().map(|d| d.gate_area()).sum::<f64>();
        if let (Some(b), Some(s)) = (&mbuf, &msink) {
            area += b.gate_area() + s.gate_area();
        }
        let rz = 1.2 / m6.gm;
        // Inputs can pass their individual range checks yet combine into a
        // degenerate design (vanishing conductances, overflowing products).
        // Catch that here rather than hand back an OpAmp full of NaNs.
        for (what, v) in [
            ("dc gain", a_total),
            ("unity-gain frequency", ugf),
            ("slew rate", sr),
            ("power", power),
            ("gate area", area),
            ("output impedance", zout_est),
        ] {
            if !v.is_finite() {
                return Err(ApeError::NonFinite {
                    stage: "op-amp composition",
                    what,
                });
            }
        }
        if !(power > 0.0 && area > 0.0) {
            return Err(ApeError::Infeasible {
                component: "op-amp",
                message: format!("non-positive power ({power}) or area ({area})"),
            });
        }
        let perf = Performance {
            dc_gain: Some(a_total),
            ugf_hz: Some(ugf),
            bw_hz: Some(ugf / a_total),
            power_w: power,
            gate_area_m2: area,
            zout_ohm: Some(zout_est),
            cmrr_db: stage1.perf.cmrr_db,
            slew_v_per_s: Some(sr),
            ibias_a: Some(spec.ibias),
            ..Performance::default()
        };
        Ok(OpAmp {
            spec,
            topology,
            stage1,
            m6,
            m7,
            mb1,
            tail_devices,
            mbuf,
            msink,
            itail,
            i2,
            ibuf,
            cc,
            rz,
            perf,
        })
    }

    /// The op-amp's output impedance estimate, ohms.
    pub fn zout(&self) -> f64 {
        self.perf.zout_ohm.unwrap_or(f64::INFINITY)
    }

    /// Emits the amplifier into `ckt` with all element names prefixed by
    /// `prefix`. `inp`/`inn` are the (+)/(−) inputs, `out` the output,
    /// `vdd` the supply node. The internal ideal reference source draws
    /// `spec.ibias` from `vdd`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (e.g. a duplicate prefix).
    #[allow(clippy::too_many_arguments)]
    pub fn build_into(
        &self,
        ckt: &mut Circuit,
        tech: &Technology,
        prefix: &str,
        inp: NodeId,
        inn: NodeId,
        out: NodeId,
        vdd: NodeId,
    ) -> Result<(), ApeError> {
        let n_name = tech.nmos().map(|c| c.name.clone()).unwrap_or_default();
        let p_name = tech.pmos().map(|c| c.name.clone()).unwrap_or_default();
        let gnd = Circuit::GROUND;
        let bias = ckt.fresh_node(&format!("{prefix}_bias"));
        let tail = ckt.fresh_node(&format!("{prefix}_tail"));
        let outb = ckt.fresh_node(&format!("{prefix}_outb"));
        let o1 = ckt.fresh_node(&format!("{prefix}_o1"));
        let o2 = if self.topology.buffer {
            ckt.fresh_node(&format!("{prefix}_o2"))
        } else {
            out
        };

        // Bias reference + tail current source. The node whose diode sets
        // the gate voltage of all the sink mirrors (M7, MSINK) is
        // `ref_gate`: the plain bias diode for a simple mirror, or the
        // Wilson's internal diode.
        ckt.add_idc(&format!("{prefix}.IB"), vdd, bias, self.spec.ibias)?;
        let ref_gate = match self.topology.current_source {
            MirrorTopology::Simple => {
                ckt.add_mosfet(
                    &format!("{prefix}.MB1"),
                    bias,
                    bias,
                    gnd,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.mb1.geometry,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.MTAIL"),
                    tail,
                    bias,
                    gnd,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.tail_devices[0].geometry,
                )?;
                bias
            }
            MirrorTopology::Cascode => {
                // Two-diode reference stack biases the stacked tail: the
                // lower gate comes from b1, the cascode gate from the IB
                // injection node (= b1 + one vgs).
                let b1 = ckt.fresh_node(&format!("{prefix}_b1"));
                let tmid = ckt.fresh_node(&format!("{prefix}_tmid"));
                ckt.add_mosfet(
                    &format!("{prefix}.MB2"),
                    bias,
                    bias,
                    b1,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.mb1.geometry,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.MB1"),
                    b1,
                    b1,
                    gnd,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.mb1.geometry,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.MTAIL"),
                    tmid,
                    b1,
                    gnd,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.tail_devices[0].geometry,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.MTCASC"),
                    tail,
                    bias,
                    tmid,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.tail_devices[1].geometry,
                )?;
                b1
            }
            MirrorTopology::Wilson => {
                // True Wilson sink: IB flows into `bias` (= the Wilson input
                // node), MB1 sinks it with its gate on the internal diode at
                // `wy`; the cascode's gate is the input node, closing the
                // feedback loop that boosts the tail impedance.
                let y = ckt.fresh_node(&format!("{prefix}_wy"));
                ckt.add_mosfet(
                    &format!("{prefix}.MB1"),
                    bias,
                    y,
                    gnd,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.mb1.geometry,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.MWD"),
                    y,
                    y,
                    gnd,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.tail_devices[0].geometry,
                )?;
                ckt.add_mosfet(
                    &format!("{prefix}.MWC"),
                    tail,
                    bias,
                    y,
                    gnd,
                    MosPolarity::Nmos,
                    &n_name,
                    self.tail_devices[1].geometry,
                )?;
                y
            }
        };
        // Input pair. With the mirror load and the inverting second stage,
        // the overall non-inverting input is M2's gate (inp): a rise there
        // pulls o1 down, which the PMOS common source inverts back up.
        ckt.add_mosfet(
            &format!("{prefix}.M1"),
            outb,
            inn,
            tail,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.stage1.input.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.M2"),
            o1,
            inp,
            tail,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.stage1.input.geometry,
        )?;
        // Mirror load.
        ckt.add_mosfet(
            &format!("{prefix}.M3"),
            outb,
            outb,
            vdd,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.stage1.load.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.M4"),
            o1,
            outb,
            vdd,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.stage1.load.geometry,
        )?;
        // Second stage.
        ckt.add_mosfet(
            &format!("{prefix}.M6"),
            o2,
            o1,
            vdd,
            vdd,
            MosPolarity::Pmos,
            &p_name,
            self.m6.geometry,
        )?;
        ckt.add_mosfet(
            &format!("{prefix}.M7"),
            o2,
            ref_gate,
            gnd,
            gnd,
            MosPolarity::Nmos,
            &n_name,
            self.m7.geometry,
        )?;
        // Compensation with nulling resistor.
        if self.topology.compensated {
            let zc = ckt.fresh_node(&format!("{prefix}_zc"));
            ckt.add_resistor(&format!("{prefix}.RZ"), o1, zc, self.rz)?;
            ckt.add_capacitor(&format!("{prefix}.CC"), zc, o2, self.cc)?;
        }
        // Buffer.
        if let (Some(mbuf), Some(msink)) = (&self.mbuf, &self.msink) {
            ckt.add_mosfet(
                &format!("{prefix}.MBUF"),
                vdd,
                o2,
                out,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                mbuf.geometry,
            )?;
            ckt.add_mosfet(
                &format!("{prefix}.MSINK"),
                out,
                ref_gate,
                gnd,
                gnd,
                MosPolarity::Nmos,
                &n_name,
                msink.geometry,
            )?;
        }
        Ok(())
    }

    /// Open-loop testbench: differential AC drive at the inputs, the load
    /// capacitor at `out`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_open_loop(&self, tech: &Technology) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("opamp-ol-tb");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        let vcm = 0.5 * tech.vdd;
        ckt.add_vsource("VINP", inp, Circuit::GROUND, vcm, 0.5, SourceWaveform::Dc)?;
        ckt.add_vsource("VINN", inn, Circuit::GROUND, vcm, -0.5, SourceWaveform::Dc)?;
        self.build_into(&mut ckt, tech, "X1", inp, inn, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.spec.cl)?;
        Ok(ckt)
    }

    /// Unity-feedback testbench with a step input, for slew/settling
    /// measurements.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors.
    pub fn testbench_follower_step(
        &self,
        tech: &Technology,
        v_lo: f64,
        v_hi: f64,
        t_edge: f64,
    ) -> Result<Circuit, ApeError> {
        let mut ckt = Circuit::new("opamp-step-tb");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        ckt.add_vsource(
            "VINP",
            inp,
            Circuit::GROUND,
            v_lo,
            0.0,
            SourceWaveform::Pulse {
                v1: v_lo,
                v2: v_hi,
                delay: t_edge,
                rise: t_edge / 100.0,
                fall: t_edge / 100.0,
                width: 1.0,
                period: f64::INFINITY,
            },
        )?;
        // Unity feedback: inverting input tied to the output.
        self.build_into(&mut ckt, tech, "X1", inp, out, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, self.spec.cl)?;
        Ok(ckt)
    }

    /// Audits a measured performance set against the spec, returning the
    /// violated constraints (empty = meets spec). `tol` is the fractional
    /// slack (the paper accepts designs within reasonable accuracy).
    pub fn audit(spec: &OpAmpSpec, measured: &Performance, tol: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(g) = measured.dc_gain {
            if g.abs() < spec.gain * (1.0 - tol) {
                violations.push(format!("gain {:.1} < spec {:.1}", g.abs(), spec.gain));
            }
        } else {
            violations.push("gain unmeasured".into());
        }
        if let Some(u) = measured.ugf_hz {
            if u < spec.ugf_hz * (1.0 - tol) {
                violations.push(format!(
                    "UGF {:.2} MHz < spec {:.2} MHz",
                    u * 1e-6,
                    spec.ugf_hz * 1e-6
                ));
            }
        } else {
            violations.push("UGF unmeasured".into());
        }
        if measured.gate_area_m2 > spec.area_max_m2 * (1.0 + tol) {
            violations.push(format!(
                "area {:.1} µm² > budget {:.1} µm²",
                measured.gate_area_m2 * 1e12,
                spec.area_max_m2 * 1e12
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, measure};

    fn spec_basic() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: Some(10e3),
            cl: 10e-12,
        }
    }

    #[test]
    fn designs_and_estimates_meet_spec() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec_basic(),
        )
        .unwrap();
        let a = amp.perf.dc_gain.unwrap();
        assert!(a >= 200.0 * 0.7, "estimated gain {a}");
        let u = amp.perf.ugf_hz.unwrap();
        assert!((u - 5e6).abs() / 5e6 < 0.25, "estimated UGF {u}");
    }

    #[test]
    fn open_loop_sim_tracks_estimate() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec_basic(),
        )
        .unwrap();
        let tb = amp.testbench_open_loop(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &decade_frequencies(10.0, 1e9, 10).unwrap()).unwrap();
        let a_sim = measure::dc_gain(&sweep, out).unwrap();
        let a_est = amp.perf.dc_gain.unwrap();
        assert!(
            (a_sim - a_est).abs() / a_est < 0.6,
            "gain sim {a_sim} vs est {a_est}"
        );
        let u_sim = measure::unity_gain_frequency(&sweep, out).unwrap();
        let u_est = amp.perf.ugf_hz.unwrap();
        assert!(
            (u_sim - u_est).abs() / u_est < 0.6,
            "ugf sim {u_sim} vs est {u_est}"
        );
    }

    #[test]
    fn wilson_bias_variant_works() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Wilson, true),
            spec_basic(),
        )
        .unwrap();
        assert_eq!(amp.tail_devices.len(), 2);
        let tb = amp.testbench_open_loop(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[10.0]).unwrap();
        let a_sim = measure::dc_gain(&sweep, out).unwrap();
        assert!(a_sim > 50.0, "buffered wilson amp gain {a_sim}");
    }

    #[test]
    fn cascode_tail_variant_works() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Cascode, false),
            spec_basic(),
        )
        .unwrap();
        assert_eq!(amp.tail_devices.len(), 2);
        let tb = amp.testbench_open_loop(&tech).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        // The stacked tail carries the designed current.
        let i_tail = op.mos["X1.MTCASC"].eval.ids;
        assert!(
            (i_tail - amp.itail).abs() / amp.itail < 0.15,
            "tail current {i_tail} vs design {}",
            amp.itail
        );
        let out = tb.find_node("out").unwrap();
        let sweep = ac_sweep(&tb, &tech, &op, &[10.0]).unwrap();
        assert!(measure::dc_gain(&sweep, out).unwrap() > 200.0);
    }

    #[test]
    fn buffer_lowers_output_impedance() {
        let tech = Technology::default_1p2um();
        let unbuffered = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec_basic(),
        )
        .unwrap();
        let buffered = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, true),
            spec_basic(),
        )
        .unwrap();
        assert!(buffered.zout() < unbuffered.zout() / 3.0);
    }

    #[test]
    fn slew_rate_measured_in_feedback() {
        let tech = Technology::default_1p2um();
        let amp = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec_basic(),
        )
        .unwrap();
        let tb = amp.testbench_follower_step(&tech, 2.0, 3.0, 2e-6).unwrap();
        let op = dc_operating_point(&tb, &tech).unwrap();
        let tr = ape_spice::transient(&tb, &tech, &op, ape_spice::TranOptions::new(5e-8, 12e-6))
            .unwrap();
        let out = tb.find_node("out").unwrap();
        let sr_sim = measure::slew_rate(&tr, out);
        let sr_est = amp.perf.slew_v_per_s.unwrap();
        // Loose gate: the simulated edge mixes linear settling with slewing.
        assert!(
            sr_sim > 0.2 * sr_est && sr_sim < 8.0 * sr_est,
            "sr sim {sr_sim} vs est {sr_est}"
        );
        // It must actually follow the step.
        let v_end = tr.voltage(tr.len() - 1, out);
        assert!((v_end - 3.0).abs() < 0.25, "follower settles to {v_end}");
    }

    #[test]
    fn audit_flags_violations() {
        let spec = spec_basic();
        let good = Performance {
            dc_gain: Some(210.0),
            ugf_hz: Some(5.2e6),
            gate_area_m2: 3000e-12,
            ..Performance::default()
        };
        assert!(OpAmp::audit(&spec, &good, 0.25).is_empty());
        let bad = Performance {
            dc_gain: Some(2.0),
            ugf_hz: Some(5.2e6),
            gate_area_m2: 9000e-12,
            ..Performance::default()
        };
        let v = OpAmp::audit(&spec, &bad, 0.25);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn rejects_bad_specs() {
        let tech = Technology::default_1p2um();
        let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let mut s = spec_basic();
        s.gain = -5.0;
        assert!(OpAmp::design(&tech, topo, s).is_err());
        let mut s = spec_basic();
        s.cl = 0.0;
        assert!(OpAmp::design(&tech, topo, s).is_err());
        let mut s = spec_basic();
        s.ugf_hz = f64::NAN;
        assert!(OpAmp::design(&tech, topo, s).is_err());
    }

    /// A process with zero channel-length modulation makes every stage's
    /// `gm/gds` infinite: the spec passes its field checks, the devices
    /// size fine, and only the composed gain is degenerate — exactly the
    /// case [`ApeError::NonFinite`] exists to catch.
    #[test]
    fn degenerate_process_surfaces_as_non_finite() {
        let mut tech = Technology::default_1p2um();
        let mut n = tech.nmos().unwrap().clone();
        let mut p = tech.pmos().unwrap().clone();
        n.lambda = 0.0;
        p.lambda = 0.0;
        tech.insert_model(n);
        tech.insert_model(p);
        let topo = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let r = OpAmp::design(&tech, topo, spec_basic());
        assert!(matches!(r, Err(ApeError::NonFinite { .. })), "got {r:?}");
    }
}
