//! Sized-transistor object cache.
//!
//! Paper §4.1: *"The sized transistor is saved as an object which contains
//! the size and performance parameters. Several objects can be generated
//! with different operating points as they are needed to construct the
//! other levels in the circuit hierarchy."*
//!
//! Different specifications hit the same transistor-level operating points
//! over and over (bias mirrors at standard overdrives, pairs at standard
//! gm/Id); the cache makes those repeat solves free.

use crate::error::ApeError;
use ape_mos::sizing::{size_for_gm_id_at, size_for_id_vov_at, SizedMos};
use ape_netlist::{MosModelCard, MosPolarity, Technology};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};

/// Default capacity of a [`SizingCache`]: comfortably above what a whole
/// table reproduction touches (a few hundred objects), small enough that a
/// million-point sweep cannot grow a worker's cache without bound.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: usize,
    /// Requests that ran the numeric solver.
    pub misses: usize,
    /// Sized objects evicted to hold the capacity bound.
    pub evictions: usize,
}

impl CacheStats {
    /// Total requests served.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Request {
    GmId,
    IdVov,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    req: Request,
    polarity: MosPolarity,
    // Quantized to 0.1 % so physically-identical requests share an entry
    // while distinct operating points stay distinct.
    a: u64,
    b: u64,
    l: u64,
    vds: u64,
    vsb: u64,
}

fn quant(x: f64) -> u64 {
    if x == 0.0 {
        return 0;
    }
    // ~0.1 % relative quantization: keep the exponent and 10 bits of mantissa.
    let bits = x.to_bits();
    bits >> 42
}

/// A memoizing wrapper over the level-1 sizing solvers.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::cache::SizingCache;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let cache = SizingCache::new(&tech);
/// let a = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)?;
/// let b = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)?;
/// assert_eq!(a.geometry, b.geometry);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SizingCache {
    tech: Technology,
    entries: RefCell<HashMap<Key, SizedMos>>,
    /// Keys in insertion order, for FIFO eviction at the capacity bound.
    order: RefCell<VecDeque<Key>>,
    capacity: usize,
    stats: RefCell<CacheStats>,
}

impl SizingCache {
    /// Creates an empty cache bound to a technology, holding at most
    /// [`DEFAULT_CAPACITY`] sized objects.
    pub fn new(tech: &Technology) -> Self {
        Self::with_capacity(tech, DEFAULT_CAPACITY)
    }

    /// Creates an empty cache holding at most `capacity` sized objects
    /// (minimum 1). Past the bound, the oldest entry is evicted first —
    /// sweep workloads march through parameter space, so the oldest object
    /// is the least likely to be requested again.
    pub fn with_capacity(tech: &Technology, capacity: usize) -> Self {
        SizingCache {
            tech: tech.clone(),
            entries: RefCell::new(HashMap::new()),
            order: RefCell::new(VecDeque::new()),
            capacity: capacity.max(1),
            stats: RefCell::new(CacheStats::default()),
        }
    }

    /// The bound technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The capacity bound (entries, not bytes).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        *self.stats.borrow()
    }

    /// Number of distinct sized objects held.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// `true` when no objects are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
        self.order.borrow_mut().clear();
    }

    fn card(&self, pmos: bool) -> Result<&MosModelCard, ApeError> {
        if pmos {
            self.tech.pmos().ok_or(ApeError::MissingModel("PMOS"))
        } else {
            self.tech.nmos().ok_or(ApeError::MissingModel("NMOS"))
        }
    }

    fn lookup_or<F>(&self, key: Key, solve: F) -> Result<SizedMos, ApeError>
    where
        F: FnOnce() -> Result<SizedMos, ApeError>,
    {
        if let Some(hit) = self.entries.borrow().get(&key) {
            self.stats.borrow_mut().hits += 1;
            ape_probe::counter("ape.cache.hit", 1);
            return Ok(*hit);
        }
        self.stats.borrow_mut().misses += 1;
        ape_probe::counter("ape.cache.miss", 1);
        let solved = solve()?;
        let mut entries = self.entries.borrow_mut();
        let mut order = self.order.borrow_mut();
        while entries.len() >= self.capacity {
            let Some(oldest) = order.pop_front() else {
                break;
            };
            entries.remove(&oldest);
            self.stats.borrow_mut().evictions += 1;
            ape_probe::counter("ape.cache.evict", 1);
        }
        if entries.insert(key, solved).is_none() {
            order.push_back(key);
        }
        Ok(solved)
    }

    /// Human-readable effectiveness summary, e.g. for end-of-run printing:
    ///
    /// ```text
    /// sizing cache: 37 objects, 112 hits / 49 misses (69.6% hit rate), 0 evictions
    /// ```
    pub fn report(&self) -> String {
        let s = self.stats();
        format!(
            "sizing cache: {} objects, {} hits / {} misses ({:.1}% hit rate), {} evictions",
            self.len(),
            s.hits,
            s.misses,
            100.0 * s.hit_rate(),
            s.evictions
        )
    }

    /// Cached [`size_for_gm_id_at`] at default biases (`vds = vdd/2`,
    /// `vsb = 0`).
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_gm_id(
        &self,
        pmos: bool,
        gm: f64,
        id: f64,
        l: f64,
    ) -> Result<SizedMos, ApeError> {
        let vds = self.tech.vdd / 2.0;
        let card = self.card(pmos)?;
        let key = Key {
            req: Request::GmId,
            polarity: card.polarity,
            a: quant(gm),
            b: quant(id),
            l: quant(l),
            vds: quant(vds),
            vsb: 0,
        };
        self.lookup_or(key, || {
            size_for_gm_id_at(card, gm, id, l, vds, 0.0).map_err(ApeError::from)
        })
    }

    /// Cached [`size_for_gm_id_at`] at explicit biases.
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_gm_id_at(
        &self,
        pmos: bool,
        gm: f64,
        id: f64,
        l: f64,
        vds: f64,
        vsb: f64,
    ) -> Result<SizedMos, ApeError> {
        let card = self.card(pmos)?;
        let key = Key {
            req: Request::GmId,
            polarity: card.polarity,
            a: quant(gm),
            b: quant(id),
            l: quant(l),
            vds: quant(vds),
            vsb: quant(vsb),
        };
        self.lookup_or(key, || {
            size_for_gm_id_at(card, gm, id, l, vds, vsb).map_err(ApeError::from)
        })
    }

    /// Cached [`size_for_id_vov_at`] at explicit biases.
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_id_vov_at(
        &self,
        pmos: bool,
        id: f64,
        vov: f64,
        l: f64,
        vds: f64,
        vsb: f64,
    ) -> Result<SizedMos, ApeError> {
        let card = self.card(pmos)?;
        let key = Key {
            req: Request::IdVov,
            polarity: card.polarity,
            a: quant(id),
            b: quant(vov),
            l: quant(l),
            vds: quant(vds),
            vsb: quant(vsb),
        };
        self.lookup_or(key, || {
            size_for_id_vov_at(card, id, vov, l, vds, vsb).map_err(ApeError::from)
        })
    }
}

thread_local! {
    /// One shared cache slot per thread, tagged with the fingerprint of the
    /// technology it was built for. Estimator internals route their level-1
    /// sizing through it so repeated (sub)circuit designs reuse objects, as
    /// the paper's §4.1 object store does.
    static SHARED: RefCell<Option<(u64, SizingCache)>> = const { RefCell::new(None) };
}

fn with_shared<R>(tech: &Technology, f: impl FnOnce(&SizingCache) -> R) -> R {
    let fp = tech.fingerprint();
    SHARED.with(|slot| {
        let mut slot = slot.borrow_mut();
        match &mut *slot {
            Some((have, cache)) if *have == fp => f(cache),
            other => {
                let (_, cache) = other.insert((fp, SizingCache::new(tech)));
                f(cache)
            }
        }
    })
}

/// [`SizingCache::size_for_gm_id_at`] through this thread's shared cache for
/// `tech` (created on first use; replaced when `tech` changes).
///
/// # Errors
///
/// Propagates the solver's errors (errors are not cached).
pub fn cached_size_for_gm_id_at(
    tech: &Technology,
    pmos: bool,
    gm: f64,
    id: f64,
    l: f64,
    vds: f64,
    vsb: f64,
) -> Result<SizedMos, ApeError> {
    with_shared(tech, |c| c.size_for_gm_id_at(pmos, gm, id, l, vds, vsb))
}

/// [`SizingCache::size_for_id_vov_at`] through this thread's shared cache
/// for `tech`.
///
/// # Errors
///
/// Propagates the solver's errors (errors are not cached).
pub fn cached_size_for_id_vov_at(
    tech: &Technology,
    pmos: bool,
    id: f64,
    vov: f64,
    l: f64,
    vds: f64,
    vsb: f64,
) -> Result<SizedMos, ApeError> {
    with_shared(tech, |c| c.size_for_id_vov_at(pmos, id, vov, l, vds, vsb))
}

/// Statistics of this thread's shared cache (zero when none exists yet).
pub fn shared_cache_stats() -> CacheStats {
    SHARED.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|(_, c)| c.stats())
            .unwrap_or_default()
    })
}

/// Number of sized objects in this thread's shared cache.
pub fn shared_cache_len() -> usize {
    SHARED.with(|slot| slot.borrow().as_ref().map(|(_, c)| c.len()).unwrap_or(0))
}

/// [`SizingCache::report`] for this thread's shared cache.
pub fn shared_cache_report() -> String {
    SHARED.with(|slot| match &*slot.borrow() {
        Some((_, c)) => c.report(),
        None => "sizing cache: unused".into(),
    })
}

/// Drops this thread's shared cache entirely (objects and statistics).
pub fn reset_shared_cache() {
    SHARED.with(|slot| *slot.borrow_mut() = None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_requests_hit() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        for _ in 0..5 {
            cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_stay_distinct() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        let a = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        let b = cache.size_for_gm_id(false, 200e-6, 10e-6, 2.4e-6).unwrap();
        let c = cache.size_for_gm_id(true, 100e-6, 10e-6, 2.4e-6).unwrap();
        assert!(a.geometry.w != b.geometry.w);
        assert!(a.geometry.w != c.geometry.w);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn cached_results_match_direct_solver() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        let cached = cache
            .size_for_id_vov_at(false, 50e-6, 0.35, 2.4e-6, 1.2, 0.0)
            .unwrap();
        let direct =
            size_for_id_vov_at(tech.nmos().unwrap(), 50e-6, 0.35, 2.4e-6, 1.2, 0.0).unwrap();
        assert_eq!(cached.geometry, direct.geometry);
    }

    #[test]
    fn errors_are_not_cached() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        // Absurd vov → infeasible, twice: both runs reach the solver.
        assert!(cache.size_for_gm_id(false, 1e-6, 1e-3, 2.4e-6).is_err());
        assert!(cache.size_for_gm_id(false, 1e-6, 1e-3, 2.4e-6).is_err());
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_stats() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::with_capacity(&tech, 3);
        assert_eq!(cache.capacity(), 3);
        // Four distinct operating points into a 3-slot cache.
        for (i, id) in [10e-6, 20e-6, 40e-6, 80e-6].iter().enumerate() {
            cache.size_for_gm_id(false, 100e-6, *id, 2.4e-6).unwrap();
            assert!(cache.len() <= 3, "len {} after insert {i}", cache.len());
        }
        let s = cache.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.evictions, 1);
        // The oldest point (10 µA) was evicted: asking again re-solves...
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        assert_eq!(cache.stats().misses, 5);
        // ...while the newest (80 µA) survived and still hits.
        cache.size_for_gm_id(false, 100e-6, 80e-6, 2.4e-6).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.report().contains("evictions"));
    }

    #[test]
    fn clear_resets_eviction_order() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::with_capacity(&tech, 2);
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        cache.size_for_gm_id(false, 100e-6, 20e-6, 2.4e-6).unwrap();
        cache.clear();
        // A stale order queue would make these evict phantom entries.
        cache.size_for_gm_id(false, 100e-6, 40e-6, 2.4e-6).unwrap();
        cache.size_for_gm_id(false, 100e-6, 80e-6, 2.4e-6).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }
}
