//! Sized-transistor object cache, as a view over the estimation graph.
//!
//! Paper §4.1: *"The sized transistor is saved as an object which contains
//! the size and performance parameters. Several objects can be generated
//! with different operating points as they are needed to construct the
//! other levels in the circuit hierarchy."*
//!
//! Since the estimation-graph refactor, the object store lives in
//! [`crate::graph`]: level-1 sizing requests are
//! [`Component`](crate::graph::Component) nodes
//! (`l1.gm_id`, `l1.id_vov`) memoized per bit-exact input fingerprint,
//! alongside every higher-level node. [`SizingCache`] remains as the
//! level-1-only convenience wrapper (an [`EstimationGraph`] restricted to
//! sizing nodes), and the `cached_size_for_*` free functions now route
//! through the thread-shared graph — so a repeated solve inside an op-amp
//! design and a direct call from user code hit the same memo. The old
//! FIFO-evicting quantised-key cache and its `shared_cache_*` accessors
//! are gone; use [`crate::graph::graph_report`] and friends instead.

use crate::error::ApeError;
use crate::graph::{
    with_thread_graph, EstimationGraph, SizeForGmId, SizeForIdVov, DEFAULT_KIND_CAPACITY,
};
use ape_mos::sizing::SizedMos;
use ape_netlist::Technology;

/// Default capacity of a [`SizingCache`], per request kind (gm/Id and
/// Id/Vov are bounded independently). Matches the graph-wide
/// [`DEFAULT_KIND_CAPACITY`].
pub const DEFAULT_CAPACITY: usize = DEFAULT_KIND_CAPACITY;

/// Cache statistics, summed over the level-1 sizing kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: usize,
    /// Requests that ran the numeric solver.
    pub misses: usize,
    /// Sized objects dropped to hold the capacity bound.
    pub evictions: usize,
}

impl CacheStats {
    /// Total requests served.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// A memoizing wrapper over the level-1 sizing solvers.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::cache::SizingCache;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let cache = SizingCache::new(&tech);
/// let a = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)?;
/// let b = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)?;
/// assert_eq!(a.geometry, b.geometry);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SizingCache {
    graph: EstimationGraph,
}

impl SizingCache {
    /// Creates an empty cache bound to a technology, holding at most
    /// [`DEFAULT_CAPACITY`] sized objects per request kind.
    pub fn new(tech: &Technology) -> Self {
        Self::with_capacity(tech, DEFAULT_CAPACITY)
    }

    /// Creates an empty cache holding at most `capacity` sized objects per
    /// request kind (minimum 1). Past the bound, the kind's whole
    /// generation is dropped at once — sound because a fresh solve is
    /// bit-identical to the dropped object.
    pub fn with_capacity(tech: &Technology, capacity: usize) -> Self {
        SizingCache {
            graph: EstimationGraph::with_kind_capacity(tech, capacity),
        }
    }

    /// The bound technology.
    pub fn technology(&self) -> &Technology {
        self.graph.technology()
    }

    /// The per-kind capacity bound (entries, not bytes).
    pub fn capacity(&self) -> usize {
        self.graph.kind_capacity()
    }

    /// Current hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        let t = self.graph.totals();
        CacheStats {
            hits: t.hits,
            misses: t.misses,
            evictions: t.evictions,
        }
    }

    /// Number of distinct sized objects held.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` when no objects are cached.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&self) {
        self.graph.clear();
    }

    /// Human-readable effectiveness summary, e.g. for end-of-run printing:
    ///
    /// ```text
    /// sizing cache: 37 objects, 112 hits / 49 misses (69.6% hit rate), 0 evictions
    /// ```
    pub fn report(&self) -> String {
        let s = self.stats();
        format!(
            "sizing cache: {} objects, {} hits / {} misses ({:.1}% hit rate), {} evictions",
            self.len(),
            s.hits,
            s.misses,
            100.0 * s.hit_rate(),
            s.evictions
        )
    }

    /// Cached [`size_for_gm_id_at`](ape_mos::sizing::size_for_gm_id_at) at
    /// default biases (`vds = vdd/2`, `vsb = 0`).
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_gm_id(
        &self,
        pmos: bool,
        gm: f64,
        id: f64,
        l: f64,
    ) -> Result<SizedMos, ApeError> {
        let vds = self.technology().vdd / 2.0;
        self.size_for_gm_id_at(pmos, gm, id, l, vds, 0.0)
    }

    /// Cached [`size_for_gm_id_at`](ape_mos::sizing::size_for_gm_id_at) at
    /// explicit biases.
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_gm_id_at(
        &self,
        pmos: bool,
        gm: f64,
        id: f64,
        l: f64,
        vds: f64,
        vsb: f64,
    ) -> Result<SizedMos, ApeError> {
        self.graph.evaluate(&SizeForGmId {
            pmos,
            gm,
            id,
            l,
            vds,
            vsb,
        })
    }

    /// Cached [`size_for_id_vov_at`](ape_mos::sizing::size_for_id_vov_at)
    /// at explicit biases.
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_id_vov_at(
        &self,
        pmos: bool,
        id: f64,
        vov: f64,
        l: f64,
        vds: f64,
        vsb: f64,
    ) -> Result<SizedMos, ApeError> {
        self.graph.evaluate(&SizeForIdVov {
            pmos,
            id,
            vov,
            l,
            vds,
            vsb,
        })
    }
}

/// Level-1 gm/Id sizing through this thread's shared estimation graph for
/// `tech` (created on first use; replaced when `tech` changes).
///
/// # Errors
///
/// Propagates the solver's errors (errors are not memoized).
pub fn cached_size_for_gm_id_at(
    tech: &Technology,
    pmos: bool,
    gm: f64,
    id: f64,
    l: f64,
    vds: f64,
    vsb: f64,
) -> Result<SizedMos, ApeError> {
    with_thread_graph(tech, |g| {
        g.evaluate(&SizeForGmId {
            pmos,
            gm,
            id,
            l,
            vds,
            vsb,
        })
    })
}

/// Level-1 Id/Vov sizing through this thread's shared estimation graph for
/// `tech`.
///
/// # Errors
///
/// Propagates the solver's errors (errors are not memoized).
pub fn cached_size_for_id_vov_at(
    tech: &Technology,
    pmos: bool,
    id: f64,
    vov: f64,
    l: f64,
    vds: f64,
    vsb: f64,
) -> Result<SizedMos, ApeError> {
    with_thread_graph(tech, |g| {
        g.evaluate(&SizeForIdVov {
            pmos,
            id,
            vov,
            l,
            vds,
            vsb,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_mos::sizing::size_for_id_vov_at;

    #[test]
    fn repeat_requests_hit() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        for _ in 0..5 {
            cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_stay_distinct() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        let a = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        let b = cache.size_for_gm_id(false, 200e-6, 10e-6, 2.4e-6).unwrap();
        let c = cache.size_for_gm_id(true, 100e-6, 10e-6, 2.4e-6).unwrap();
        assert!(a.geometry.w != b.geometry.w);
        assert!(a.geometry.w != c.geometry.w);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn cached_results_match_direct_solver() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        let cached = cache
            .size_for_id_vov_at(false, 50e-6, 0.35, 2.4e-6, 1.2, 0.0)
            .unwrap();
        let direct =
            size_for_id_vov_at(tech.nmos().unwrap(), 50e-6, 0.35, 2.4e-6, 1.2, 0.0).unwrap();
        assert_eq!(cached.geometry, direct.geometry);
    }

    #[test]
    fn errors_are_not_cached() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        // Absurd vov → infeasible, twice: both runs reach the solver.
        assert!(cache.size_for_gm_id(false, 1e-6, 1e-3, 2.4e-6).is_err());
        assert!(cache.size_for_gm_id(false, 1e-6, 1e-3, 2.4e-6).is_err());
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_stats() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn capacity_bound_drops_the_oldest_generation() {
        // PR-2 regression, updated for the graph's generation-drop
        // eviction: past the bound the kind is emptied wholesale (a
        // re-solve is bit-identical, so no recency bookkeeping is kept).
        let tech = Technology::default_1p2um();
        let cache = SizingCache::with_capacity(&tech, 3);
        assert_eq!(cache.capacity(), 3);
        // Four distinct operating points into a 3-slot kind.
        for (i, id) in [10e-6, 20e-6, 40e-6, 80e-6].iter().enumerate() {
            cache.size_for_gm_id(false, 100e-6, *id, 2.4e-6).unwrap();
            assert!(cache.len() <= 3, "len {} after insert {i}", cache.len());
        }
        let s = cache.stats();
        assert_eq!(s.misses, 4);
        // The fourth insert dropped the full first generation (3 objects).
        assert_eq!(s.evictions, 3);
        // A dropped point (10 µA) re-solves...
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        assert_eq!(cache.stats().misses, 5);
        // ...while the newest (80 µA, cached after the drop) still hits.
        cache.size_for_gm_id(false, 100e-6, 80e-6, 2.4e-6).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert!(cache.report().contains("evictions"));
    }

    #[test]
    fn clear_resets_eviction_state() {
        // PR-2 regression, updated: clear() starts a fresh generation, so
        // refilling to the bound must not evict phantom entries.
        let tech = Technology::default_1p2um();
        let cache = SizingCache::with_capacity(&tech, 2);
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        cache.size_for_gm_id(false, 100e-6, 20e-6, 2.4e-6).unwrap();
        cache.clear();
        cache.size_for_gm_id(false, 100e-6, 40e-6, 2.4e-6).unwrap();
        cache.size_for_gm_id(false, 100e-6, 80e-6, 2.4e-6).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn free_functions_share_the_thread_graph() {
        crate::graph::reset_thread_graph();
        let tech = Technology::default_1p2um();
        let a = cached_size_for_id_vov_at(&tech, false, 50e-6, 0.35, 2.4e-6, 1.2, 0.0).unwrap();
        let b = cached_size_for_id_vov_at(&tech, false, 50e-6, 0.35, 2.4e-6, 1.2, 0.0).unwrap();
        assert_eq!(a.geometry, b.geometry);
        assert_eq!(crate::graph::thread_graph_totals().hits, 1);
        crate::graph::reset_thread_graph();
    }
}
