//! Sized-transistor object cache.
//!
//! Paper §4.1: *"The sized transistor is saved as an object which contains
//! the size and performance parameters. Several objects can be generated
//! with different operating points as they are needed to construct the
//! other levels in the circuit hierarchy."*
//!
//! Different specifications hit the same transistor-level operating points
//! over and over (bias mirrors at standard overdrives, pairs at standard
//! gm/Id); the cache makes those repeat solves free.

use crate::error::ApeError;
use ape_mos::sizing::{size_for_gm_id_at, size_for_id_vov_at, SizedMos};
use ape_netlist::{MosModelCard, MosPolarity, Technology};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: usize,
    /// Requests that ran the numeric solver.
    pub misses: usize,
}

impl CacheStats {
    /// Total requests served.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of requests answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Request {
    GmId,
    IdVov,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    req: Request,
    polarity: MosPolarity,
    // Quantized to 0.1 % so physically-identical requests share an entry
    // while distinct operating points stay distinct.
    a: u64,
    b: u64,
    l: u64,
    vds: u64,
    vsb: u64,
}

fn quant(x: f64) -> u64 {
    if x == 0.0 {
        return 0;
    }
    // ~0.1 % relative quantization: keep the exponent and 10 bits of mantissa.
    let bits = x.to_bits();
    bits >> 42
}

/// A memoizing wrapper over the level-1 sizing solvers.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_core::cache::SizingCache;
/// # fn main() -> Result<(), ape_core::ApeError> {
/// let tech = Technology::default_1p2um();
/// let cache = SizingCache::new(&tech);
/// let a = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)?;
/// let b = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)?;
/// assert_eq!(a.geometry, b.geometry);
/// assert_eq!(cache.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SizingCache {
    tech: Technology,
    entries: RefCell<HashMap<Key, SizedMos>>,
    stats: RefCell<CacheStats>,
}

impl SizingCache {
    /// Creates an empty cache bound to a technology.
    pub fn new(tech: &Technology) -> Self {
        SizingCache {
            tech: tech.clone(),
            entries: RefCell::new(HashMap::new()),
            stats: RefCell::new(CacheStats::default()),
        }
    }

    /// The bound technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Current hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        *self.stats.borrow()
    }

    /// Number of distinct sized objects held.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// `true` when no objects are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
    }

    fn card(&self, pmos: bool) -> Result<&MosModelCard, ApeError> {
        if pmos {
            self.tech.pmos().ok_or(ApeError::MissingModel("PMOS"))
        } else {
            self.tech.nmos().ok_or(ApeError::MissingModel("NMOS"))
        }
    }

    fn lookup_or<F>(&self, key: Key, solve: F) -> Result<SizedMos, ApeError>
    where
        F: FnOnce() -> Result<SizedMos, ApeError>,
    {
        if let Some(hit) = self.entries.borrow().get(&key) {
            self.stats.borrow_mut().hits += 1;
            ape_probe::counter("ape.cache.hit", 1);
            return Ok(*hit);
        }
        self.stats.borrow_mut().misses += 1;
        ape_probe::counter("ape.cache.miss", 1);
        let solved = solve()?;
        self.entries.borrow_mut().insert(key, solved);
        Ok(solved)
    }

    /// Human-readable effectiveness summary, e.g. for end-of-run printing:
    ///
    /// ```text
    /// sizing cache: 37 objects, 112 hits / 49 misses (69.6% hit rate)
    /// ```
    pub fn report(&self) -> String {
        let s = self.stats();
        format!(
            "sizing cache: {} objects, {} hits / {} misses ({:.1}% hit rate)",
            self.len(),
            s.hits,
            s.misses,
            100.0 * s.hit_rate()
        )
    }

    /// Cached [`size_for_gm_id_at`] at default biases (`vds = vdd/2`,
    /// `vsb = 0`).
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_gm_id(
        &self,
        pmos: bool,
        gm: f64,
        id: f64,
        l: f64,
    ) -> Result<SizedMos, ApeError> {
        let vds = self.tech.vdd / 2.0;
        let card = self.card(pmos)?;
        let key = Key {
            req: Request::GmId,
            polarity: card.polarity,
            a: quant(gm),
            b: quant(id),
            l: quant(l),
            vds: quant(vds),
            vsb: 0,
        };
        self.lookup_or(key, || {
            size_for_gm_id_at(card, gm, id, l, vds, 0.0).map_err(ApeError::from)
        })
    }

    /// Cached [`size_for_gm_id_at`] at explicit biases.
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_gm_id_at(
        &self,
        pmos: bool,
        gm: f64,
        id: f64,
        l: f64,
        vds: f64,
        vsb: f64,
    ) -> Result<SizedMos, ApeError> {
        let card = self.card(pmos)?;
        let key = Key {
            req: Request::GmId,
            polarity: card.polarity,
            a: quant(gm),
            b: quant(id),
            l: quant(l),
            vds: quant(vds),
            vsb: quant(vsb),
        };
        self.lookup_or(key, || {
            size_for_gm_id_at(card, gm, id, l, vds, vsb).map_err(ApeError::from)
        })
    }

    /// Cached [`size_for_id_vov_at`] at explicit biases.
    ///
    /// # Errors
    ///
    /// Propagates the solver's errors (errors are not cached).
    pub fn size_for_id_vov_at(
        &self,
        pmos: bool,
        id: f64,
        vov: f64,
        l: f64,
        vds: f64,
        vsb: f64,
    ) -> Result<SizedMos, ApeError> {
        let card = self.card(pmos)?;
        let key = Key {
            req: Request::IdVov,
            polarity: card.polarity,
            a: quant(id),
            b: quant(vov),
            l: quant(l),
            vds: quant(vds),
            vsb: quant(vsb),
        };
        self.lookup_or(key, || {
            size_for_id_vov_at(card, id, vov, l, vds, vsb).map_err(ApeError::from)
        })
    }
}

/// Stable fingerprint of a [`Technology`]: every model-card parameter and
/// technology scalar participates, so two technologies share a cache slot
/// only when they are numerically identical.
fn tech_fingerprint(tech: &Technology) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    tech.name.hash(&mut h);
    for v in [tech.vdd, tech.vss, tech.lmin, tech.wmin, tech.wmax] {
        v.to_bits().hash(&mut h);
    }
    for c in tech.models() {
        c.name.hash(&mut h);
        c.polarity.hash(&mut h);
        std::mem::discriminant(&c.level).hash(&mut h);
        for v in [
            c.vto, c.kp, c.gamma, c.phi, c.lambda, c.tox, c.u0, c.ld, c.cgso, c.cgdo, c.cgbo, c.cj,
            c.cjsw, c.mj, c.mjsw, c.pb, c.theta, c.vmax, c.eta, c.nfs, c.kappa,
        ] {
            v.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

thread_local! {
    /// One shared cache slot per thread, tagged with the fingerprint of the
    /// technology it was built for. Estimator internals route their level-1
    /// sizing through it so repeated (sub)circuit designs reuse objects, as
    /// the paper's §4.1 object store does.
    static SHARED: RefCell<Option<(u64, SizingCache)>> = const { RefCell::new(None) };
}

fn with_shared<R>(tech: &Technology, f: impl FnOnce(&SizingCache) -> R) -> R {
    let fp = tech_fingerprint(tech);
    SHARED.with(|slot| {
        let mut slot = slot.borrow_mut();
        match &*slot {
            Some((have, _)) if *have == fp => {}
            _ => *slot = Some((fp, SizingCache::new(tech))),
        }
        let (_, cache) = slot.as_ref().expect("just installed");
        f(cache)
    })
}

/// [`SizingCache::size_for_gm_id_at`] through this thread's shared cache for
/// `tech` (created on first use; replaced when `tech` changes).
///
/// # Errors
///
/// Propagates the solver's errors (errors are not cached).
pub fn cached_size_for_gm_id_at(
    tech: &Technology,
    pmos: bool,
    gm: f64,
    id: f64,
    l: f64,
    vds: f64,
    vsb: f64,
) -> Result<SizedMos, ApeError> {
    with_shared(tech, |c| c.size_for_gm_id_at(pmos, gm, id, l, vds, vsb))
}

/// [`SizingCache::size_for_id_vov_at`] through this thread's shared cache
/// for `tech`.
///
/// # Errors
///
/// Propagates the solver's errors (errors are not cached).
pub fn cached_size_for_id_vov_at(
    tech: &Technology,
    pmos: bool,
    id: f64,
    vov: f64,
    l: f64,
    vds: f64,
    vsb: f64,
) -> Result<SizedMos, ApeError> {
    with_shared(tech, |c| c.size_for_id_vov_at(pmos, id, vov, l, vds, vsb))
}

/// Statistics of this thread's shared cache (zero when none exists yet).
pub fn shared_cache_stats() -> CacheStats {
    SHARED.with(|slot| {
        slot.borrow()
            .as_ref()
            .map(|(_, c)| c.stats())
            .unwrap_or_default()
    })
}

/// Number of sized objects in this thread's shared cache.
pub fn shared_cache_len() -> usize {
    SHARED.with(|slot| slot.borrow().as_ref().map(|(_, c)| c.len()).unwrap_or(0))
}

/// [`SizingCache::report`] for this thread's shared cache.
pub fn shared_cache_report() -> String {
    SHARED.with(|slot| match &*slot.borrow() {
        Some((_, c)) => c.report(),
        None => "sizing cache: unused".into(),
    })
}

/// Drops this thread's shared cache entirely (objects and statistics).
pub fn reset_shared_cache() {
    SHARED.with(|slot| *slot.borrow_mut() = None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_requests_hit() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        for _ in 0..5 {
            cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_stay_distinct() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        let a = cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        let b = cache.size_for_gm_id(false, 200e-6, 10e-6, 2.4e-6).unwrap();
        let c = cache.size_for_gm_id(true, 100e-6, 10e-6, 2.4e-6).unwrap();
        assert!(a.geometry.w != b.geometry.w);
        assert!(a.geometry.w != c.geometry.w);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn cached_results_match_direct_solver() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        let cached = cache
            .size_for_id_vov_at(false, 50e-6, 0.35, 2.4e-6, 1.2, 0.0)
            .unwrap();
        let direct =
            size_for_id_vov_at(tech.nmos().unwrap(), 50e-6, 0.35, 2.4e-6, 1.2, 0.0).unwrap();
        assert_eq!(cached.geometry, direct.geometry);
    }

    #[test]
    fn errors_are_not_cached() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        // Absurd vov → infeasible, twice: both runs reach the solver.
        assert!(cache.size_for_gm_id(false, 1e-6, 1e-3, 2.4e-6).is_err());
        assert!(cache.size_for_gm_id(false, 1e-6, 1e-3, 2.4e-6).is_err());
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_keeps_stats() {
        let tech = Technology::default_1p2um();
        let cache = SizingCache::new(&tech);
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
