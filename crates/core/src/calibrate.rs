//! Application of calibration corrections to composed performance.
//!
//! [`Component::calibrate`](crate::graph::Component::calibrate)
//! implementations funnel through [`apply_performance`]: look up this
//! equation's correction for each populated [`Performance`] metric and
//! multiply it in. Absent corrections are *skipped entirely* — no
//! multiply-by-one — so an identity table is bit-identical to
//! uncalibrated estimation, which `graph_equivalence.rs` gates.
//!
//! Corrections are magnitude corrections: a factor scales the value
//! while the sign the composition equations chose (e.g. inverting gain)
//! is preserved, because fitted factors are validated positive.

use crate::attrs::Performance;
use crate::error::ApeError;
use ape_calib::Calibration;

/// `ln x` for positive finite `x`, else `0.0` — response-surface
/// variables must stay finite for arbitrary (even hostile) specs, and a
/// zero variable simply contributes nothing to the surface.
#[must_use]
pub fn ln_or_zero(x: f64) -> f64 {
    if x.is_finite() && x > 0.0 {
        x.ln()
    } else {
        0.0
    }
}

/// Multiplies `value` by the correction for `(equation, metric)` at
/// `vars`, if the table holds one.
///
/// # Errors
///
/// [`ApeError::NonFinite`] when the corrected value (or the applied
/// factor itself, e.g. from an arity-mismatched response surface) is not
/// finite.
pub fn scale_value(
    cal: &Calibration,
    equation: &'static str,
    metric: &'static str,
    vars: &[f64],
    value: f64,
) -> Result<f64, ApeError> {
    match cal.factor(equation, metric, vars) {
        None => Ok(value),
        Some(f) => {
            let scaled = value * f;
            if scaled.is_finite() {
                Ok(scaled)
            } else {
                Err(ApeError::NonFinite {
                    stage: equation,
                    what: metric,
                })
            }
        }
    }
}

/// Applies every correction the table holds for `equation` to the
/// populated fields of `perf`. Fields that are `None` stay `None` —
/// a correction cannot invent a metric the equation did not compose.
///
/// # Errors
///
/// [`ApeError::NonFinite`] when any corrected field is not finite.
pub fn apply_performance(
    cal: &Calibration,
    equation: &'static str,
    vars: &[f64],
    perf: &mut Performance,
) -> Result<(), ApeError> {
    let scale_opt = |field: &mut Option<f64>, metric: &'static str| -> Result<(), ApeError> {
        if let Some(v) = *field {
            *field = Some(scale_value(cal, equation, metric, vars, v)?);
        }
        Ok(())
    };
    scale_opt(&mut perf.dc_gain, "dc_gain")?;
    scale_opt(&mut perf.ugf_hz, "ugf_hz")?;
    scale_opt(&mut perf.bw_hz, "bw_hz")?;
    scale_opt(&mut perf.zout_ohm, "zout_ohm")?;
    scale_opt(&mut perf.cmrr_db, "cmrr_db")?;
    scale_opt(&mut perf.slew_v_per_s, "slew_v_per_s")?;
    scale_opt(&mut perf.ibias_a, "ibias_a")?;
    scale_opt(&mut perf.vout_v, "vout_v")?;
    scale_opt(&mut perf.delay_s, "delay_s")?;
    perf.power_w = scale_value(cal, equation, "power_w", vars, perf.power_w)?;
    perf.gate_area_m2 = scale_value(cal, equation, "gate_area_m2", vars, perf.gate_area_m2)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_table_changes_nothing_bitwise() {
        let cal = Calibration::identity(1, "id");
        let mut p = Performance {
            dc_gain: Some(-19.0),
            ugf_hz: Some(1.0 / 3.0),
            power_w: 0.1 + 0.2, // not exactly 0.3
            gate_area_m2: 5e-11,
            ..Performance::default()
        };
        let before = p;
        apply_performance(&cal, "l2.gain", &[], &mut p).unwrap();
        assert_eq!(
            p.dc_gain.unwrap().to_bits(),
            before.dc_gain.unwrap().to_bits()
        );
        assert_eq!(
            p.ugf_hz.unwrap().to_bits(),
            before.ugf_hz.unwrap().to_bits()
        );
        assert_eq!(p.power_w.to_bits(), before.power_w.to_bits());
    }

    #[test]
    fn factors_scale_only_their_metric_and_keep_sign() {
        let mut cal = Calibration::identity(1, "t");
        cal.set("l2.gain", "dc_gain", 1.25, &[]).unwrap();
        let mut p = Performance {
            dc_gain: Some(-8.0),
            ugf_hz: Some(2e6),
            power_w: 1e-3,
            ..Performance::default()
        };
        apply_performance(&cal, "l2.gain", &[], &mut p).unwrap();
        assert_eq!(p.dc_gain, Some(-10.0), "sign preserved, magnitude scaled");
        assert_eq!(p.ugf_hz, Some(2e6), "uncorrected metrics untouched");
        // A different equation's entries never apply.
        let mut q = Performance {
            dc_gain: Some(-8.0),
            ..Performance::default()
        };
        apply_performance(&cal, "l2.diffpair", &[], &mut q).unwrap();
        assert_eq!(q.dc_gain, Some(-8.0));
    }

    #[test]
    fn arity_mismatch_surfaces_as_typed_non_finite() {
        let mut cal = Calibration::identity(1, "t");
        cal.set("l2.gain", "dc_gain", 1.1, &[0.1, 0.2]).unwrap();
        let mut p = Performance {
            dc_gain: Some(1.0),
            ..Performance::default()
        };
        // Node passes one var where the surface wants two: typed error.
        let err = apply_performance(&cal, "l2.gain", &[1.0], &mut p).unwrap_err();
        assert!(matches!(
            err,
            ApeError::NonFinite {
                stage: "l2.gain",
                what: "dc_gain"
            }
        ));
    }

    #[test]
    fn ln_or_zero_is_total() {
        assert_eq!(ln_or_zero(1.0), 0.0);
        assert!((ln_or_zero(std::f64::consts::E) - 1.0).abs() < 1e-15);
        assert_eq!(ln_or_zero(0.0), 0.0);
        assert_eq!(ln_or_zero(-3.0), 0.0);
        assert_eq!(ln_or_zero(f64::NAN), 0.0);
        assert_eq!(ln_or_zero(f64::INFINITY), 0.0);
    }
}
