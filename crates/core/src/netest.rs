//! Performance estimation for user-level analog netlists.
//!
//! The paper's §6 names this as work in progress: *"We are currently
//! incorporating into the APE performance estimation procedures for
//! user-level analog netlists."* This module implements that feature: given
//! an arbitrary [`Circuit`] (hand-written, parsed from a SPICE deck, or
//! emitted by the hierarchy), it estimates the small-signal performance
//! without a frequency sweep — one nonlinear DC solve, one linearisation,
//! and AWE moment matching:
//!
//! * DC gain from the zeroth moment (exact at DC);
//! * −3 dB bandwidth from the first-moment dominant-pole estimate
//!   `f₋₃dB ≈ |m₀/m₁| / 2π` (the moment-space equivalent of
//!   zero-value-time-constant analysis);
//! * UGF and phase margin from the reduced-order Padé model;
//! * power from the operating point, gate area from the netlist.

use crate::attrs::Performance;
use crate::error::ApeError;
use crate::graph::{with_thread_graph, Component, EstimationGraph};
use ape_awe::awe_transfer_auto;
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, NodeId, Technology};
use ape_spice::{dc_operating_point, linearize, Complex};

/// Result of a netlist-level estimation.
#[derive(Debug, Clone)]
pub struct NetlistEstimate {
    /// Composed performance sheet (gain, bandwidth, UGF, power, area).
    pub perf: Performance,
    /// Phase margin from the reduced model, degrees, when a UGF exists.
    pub phase_margin_deg: Option<f64>,
    /// The dominant poles of the reduced model (negative-real-part = stable).
    pub poles: Vec<Complex>,
    /// Fingerprint of the `(netlist, output)` input this estimate was
    /// computed from — the key [`estimate_netlist_incremental`] uses to
    /// detect an unchanged input.
    pub input_fingerprint: u64,
}

/// Estimation-graph node for a netlist estimate. The netlist estimator is
/// a monolithic pipeline (one DC solve → linearisation → AWE), so it
/// memoizes as a single node keyed on the rendered SPICE deck and the
/// output node; incremental reuse is whole-estimate.
#[derive(Debug, Clone, Copy)]
struct NetestNode<'a> {
    circuit: &'a Circuit,
    output: NodeId,
    fp: u64,
}

impl Component for NetestNode<'_> {
    type Output = NetlistEstimate;

    fn kind(&self) -> &'static str {
        "netest"
    }

    fn fingerprint(&self) -> u64 {
        self.fp
    }

    fn compute(&self, graph: &EstimationGraph) -> Result<NetlistEstimate, ApeError> {
        estimate_uncached(self.circuit, graph.technology(), self.output, self.fp)
    }
}

fn netest_fingerprint(circuit: &Circuit, tech: &Technology, output: NodeId) -> u64 {
    Fingerprint::new()
        .str(&circuit.to_spice_deck(tech))
        .u64(usize::from(output) as u64)
        .finish()
}

impl NetlistEstimate {
    /// `true` when every reduced-model pole is in the left half plane.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }
}

/// Estimates the AC performance of `circuit` from its AC excitation (the
/// sources with non-zero AC magnitude) to `output`.
///
/// # Errors
///
/// * [`ApeError::Infeasible`] when the DC operating point cannot be solved
///   or the circuit has no observable response at `output`.
///
/// # Example
///
/// Estimate a parsed user deck — no sweep, microseconds of work:
///
/// ```
/// use ape_netlist::parse_spice;
/// use ape_core::netest::estimate_netlist;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deck = "\
/// * user amplifier
/// V1 in 0 DC 1.2 AC 1
/// VDD vdd 0 DC 5
/// RD vdd out 50k
/// M1 out in 0 0 CMOSN W=10u L=2.4u
/// .end
/// ";
/// let (ckt, tech) = parse_spice(deck)?;
/// let out = ckt.find_node("out").expect("out exists");
/// let est = estimate_netlist(&ckt, &tech, out)?;
/// assert!(est.perf.dc_gain.unwrap().abs() > 1.0);
/// assert!(est.perf.bw_hz.unwrap() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn estimate_netlist(
    circuit: &Circuit,
    tech: &Technology,
    output: NodeId,
) -> Result<NetlistEstimate, ApeError> {
    let _span = ape_probe::span("ape.netest");
    crate::cancel::check_current()?;
    if usize::from(output) >= circuit.num_nodes() {
        return Err(ApeError::BadSpec {
            param: "output",
            message: format!(
                "output node {} is not in the circuit ({} nodes)",
                usize::from(output),
                circuit.num_nodes()
            ),
        });
    }
    let fp = netest_fingerprint(circuit, tech, output);
    with_thread_graph(tech, |g| {
        g.evaluate(&NetestNode {
            circuit,
            output,
            fp,
        })
    })
}

/// [`estimate_netlist`] given a previous estimate: when the
/// `(netlist, output)` input is unchanged (delta-free), the previous
/// estimate is returned directly; otherwise the circuit is re-estimated
/// through this thread's warm estimation graph. Either way the result is
/// bit-identical to a cold [`estimate_netlist`] of the same input.
///
/// # Errors
///
/// Same as [`estimate_netlist`].
pub fn estimate_netlist_incremental(
    circuit: &Circuit,
    tech: &Technology,
    output: NodeId,
    previous: &NetlistEstimate,
) -> Result<NetlistEstimate, ApeError> {
    if usize::from(output) < circuit.num_nodes()
        && netest_fingerprint(circuit, tech, output) == previous.input_fingerprint
    {
        return Ok(previous.clone());
    }
    estimate_netlist(circuit, tech, output)
}

/// The estimation pipeline itself — [`NetestNode`]'s compute body.
fn estimate_uncached(
    circuit: &Circuit,
    tech: &Technology,
    output: NodeId,
    input_fingerprint: u64,
) -> Result<NetlistEstimate, ApeError> {
    let op = dc_operating_point(circuit, tech).map_err(|e| ApeError::Infeasible {
        component: "netlist",
        message: format!("dc operating point: {e}"),
    })?;
    // The DC solve dominates the cost; re-check before the AWE stage.
    crate::cancel::check_current()?;
    let sys = linearize(circuit, tech, &op).map_err(|e| ApeError::Infeasible {
        component: "netlist",
        message: format!("linearisation: {e}"),
    })?;
    let moments = ape_awe::transfer_moments(&sys, output, 6).map_err(|e| ApeError::Infeasible {
        component: "netlist",
        message: format!("moment computation: {e}"),
    })?;
    let m0 = moments[0];
    if !m0.is_finite() {
        return Err(ApeError::NonFinite {
            stage: "netlist moment composition",
            what: "dc gain",
        });
    }
    if m0.abs() < 1e-15 {
        return Err(ApeError::Infeasible {
            component: "netlist",
            message: "no observable AC response at the output (is any source AC-driven?)".into(),
        });
    }
    // First-moment dominant-pole estimate (ZVTC-equivalent): for
    // H(s) = m0·(1 + s·m1/m0 + …), the -3 dB corner of the dominant pole
    // sits at |m0/m1|/2π.
    let bw = if moments[1].abs() > 0.0 {
        Some((m0 / moments[1]).abs() / (2.0 * std::f64::consts::PI))
    } else {
        None
    };
    let (ugf, pm, poles) = match awe_transfer_auto(&sys, output, 3) {
        Ok(model) => {
            let ugf = model.unity_gain_hz();
            let pm = ugf.map(|fu| {
                let h = model.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * fu));
                180.0 + h.arg().to_degrees()
            });
            (ugf, pm, model.poles().to_vec())
        }
        Err(_) => (None, None, Vec::new()),
    };
    let power = op.supply_power(circuit);
    let area = circuit.total_gate_area();
    for (what, v) in [
        ("power", Some(power)),
        ("gate area", Some(area)),
        ("bandwidth", bw),
        ("unity-gain frequency", ugf),
    ] {
        if v.is_some_and(|v| !v.is_finite()) {
            return Err(ApeError::NonFinite {
                stage: "netlist estimate",
                what,
            });
        }
    }
    let perf = Performance {
        dc_gain: Some(m0),
        bw_hz: bw,
        ugf_hz: ugf,
        power_w: power,
        gate_area_m2: area,
        ..Performance::default()
    };
    Ok(NetlistEstimate {
        perf,
        phase_margin_deg: pm,
        poles,
        input_fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::{parse_spice, SourceWaveform};
    use ape_spice::{ac_sweep, decade_frequencies, measure};

    #[test]
    fn rc_estimate_matches_analytic() {
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("rc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("R1", i, o, 10e3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let est = estimate_netlist(&c, &tech, o).unwrap();
        let f_expect = 1.0 / (2.0 * std::f64::consts::PI * 10e3 * 1e-9);
        assert!((est.perf.dc_gain.unwrap() - 1.0).abs() < 1e-3);
        let bw = est.perf.bw_hz.unwrap();
        assert!((bw - f_expect).abs() / f_expect < 0.01, "bw {bw}");
        assert!(est.is_stable());
    }

    #[test]
    fn user_deck_estimate_matches_full_ac() {
        // The headline use-case: a hand-written SPICE deck, estimated
        // without a sweep, cross-checked against the full simulator.
        let deck = "\
* user amplifier: common source + source follower
V1 in 0 DC 1.2 AC 1
VDD vdd 0 DC 5
RD1 vdd mid 50k
M1 mid in 0 0 CMOSN W=10u L=2.4u
M2 vdd mid out 0 CMOSN W=20u L=2.4u
RS out 0 20k
C1 out 0 5p
.end
";
        let (ckt, tech) = parse_spice(deck).unwrap();
        let out = ckt.find_node("out").unwrap();
        let est = estimate_netlist(&ckt, &tech, out).unwrap();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sweep = ac_sweep(
            &ckt,
            &tech,
            &op,
            &decade_frequencies(10.0, 1e9, 10).unwrap(),
        )
        .unwrap();
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        let g_est = est.perf.dc_gain.unwrap().abs();
        assert!(
            (g_sim - g_est).abs() / g_sim < 0.01,
            "gain est {g_est} vs sweep {g_sim}"
        );
        // The first-moment estimate lumps every time constant, so it sits
        // at or below the swept corner; gate at 40 %.
        let bw_sim = measure::bandwidth_3db(&sweep, out).unwrap();
        let bw_est = est.perf.bw_hz.unwrap();
        assert!(
            bw_est <= bw_sim * 1.05 && bw_est > bw_sim * 0.6,
            "bw est {bw_est} vs sweep {bw_sim}"
        );
    }

    #[test]
    fn opamp_netlist_estimate_agrees_with_hierarchy() {
        use crate::basic::MirrorTopology;
        use crate::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
        let tech = Technology::default_1p2um();
        let spec = OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        };
        let amp = OpAmp::design(
            &tech,
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec,
        )
        .unwrap();
        let tb = amp.testbench_open_loop(&tech).unwrap();
        let out = tb.find_node("out").unwrap();
        let est = estimate_netlist(&tb, &tech, out).unwrap();
        // The netlist-level estimate and the hierarchical estimate answer
        // the same question through different routes.
        let g_hier = amp.perf.dc_gain.unwrap();
        let g_net = est.perf.dc_gain.unwrap().abs();
        assert!(
            (g_net - g_hier).abs() / g_hier < 0.35,
            "net {g_net} vs hier {g_hier}"
        );
        assert!(est.is_stable());
    }

    #[test]
    fn silent_output_is_an_error() {
        // No AC magnitude anywhere → no observable response.
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("quiet");
        let a = c.node("a");
        c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let err = estimate_netlist(&c, &tech, a).unwrap_err();
        assert!(err.to_string().contains("AC"));
    }
}
