//! Polynomial root finding via the Durand-Kerner (Weierstrass) iteration.
//!
//! Degrees in AWE stay tiny (q ≤ 8), where Durand-Kerner is simple and
//! reliable.

use crate::error::AweError;
use ape_spice::Complex;

/// Finds all (complex) roots of the real-coefficient polynomial
/// `c[0] + c[1]·x + … + c[n]·xⁿ`.
///
/// # Errors
///
/// * [`AweError::InvalidOrder`] for empty/constant input or a zero leading
///   coefficient.
/// * [`AweError::RootsFailed`] if the iteration does not converge.
///
/// # Example
///
/// ```
/// use ape_awe::polynomial_roots;
/// // x² - 3x + 2 = (x-1)(x-2)
/// let mut r = polynomial_roots(&[2.0, -3.0, 1.0])?;
/// r.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
/// assert!((r[0].re - 1.0).abs() < 1e-9 && r[0].im.abs() < 1e-9);
/// assert!((r[1].re - 2.0).abs() < 1e-9);
/// # Ok::<(), ape_awe::AweError>(())
/// ```
pub fn roots(coeffs: &[f64]) -> Result<Vec<Complex>, AweError> {
    let n = coeffs.len().saturating_sub(1);
    if n == 0 {
        return Err(AweError::InvalidOrder { q: 0 });
    }
    let lead = coeffs[n];
    if lead == 0.0 || !lead.is_finite() {
        return Err(AweError::InvalidOrder { q: n });
    }
    // Normalise to monic.
    let monic: Vec<f64> = coeffs.iter().map(|c| c / lead).collect();

    if n == 1 {
        return Ok(vec![Complex::real(-monic[0])]);
    }
    if n == 2 {
        // Quadratic formula with complex discriminant.
        let (c0, c1) = (monic[0], monic[1]);
        let disc = c1 * c1 - 4.0 * c0;
        return Ok(if disc >= 0.0 {
            let s = disc.sqrt();
            vec![
                Complex::real((-c1 + s) / 2.0),
                Complex::real((-c1 - s) / 2.0),
            ]
        } else {
            let s = (-disc).sqrt();
            vec![
                Complex::new(-c1 / 2.0, s / 2.0),
                Complex::new(-c1 / 2.0, -s / 2.0),
            ]
        });
    }

    // Durand-Kerner from a spiral of distinct starting points whose radius
    // follows the Cauchy root bound.
    let bound = 1.0 + monic[..n].iter().map(|c| c.abs()).fold(0.0, f64::max);
    let mut z: Vec<Complex> = (0..n)
        .map(|k| {
            let ang = 2.0 * std::f64::consts::PI * k as f64 / n as f64 + 0.4;
            Complex::new(ang.cos(), ang.sin()) * (0.5 * bound)
        })
        .collect();
    let eval = |x: Complex| {
        let mut acc = Complex::ONE; // monic leading term accumulated via Horner
        for k in (0..n).rev() {
            acc = acc * x + Complex::real(monic[k]);
        }
        acc
    };
    for _ in 0..500 {
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut denom = Complex::ONE;
            for j in 0..n {
                if i != j {
                    denom = denom * (z[i] - z[j]);
                }
            }
            if denom.norm() < 1e-300 {
                // Perturb coincident estimates.
                z[i] += Complex::new(1e-6, 1e-6);
                continue;
            }
            let delta = eval(z[i]) / denom;
            z[i] -= delta;
            worst = worst.max(delta.norm());
        }
        if worst < 1e-13 * bound.max(1.0) {
            return Ok(z);
        }
    }
    Err(AweError::RootsFailed { degree: n })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_re(mut r: Vec<Complex>) -> Vec<Complex> {
        r.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        r
    }

    #[test]
    fn linear() {
        let r = roots(&[5.0, 2.0]).unwrap();
        assert!((r[0].re + 2.5).abs() < 1e-12);
    }

    #[test]
    fn quadratic_complex_pair() {
        // x² + 1 → ±j
        let r = sorted_re(roots(&[1.0, 0.0, 1.0]).unwrap());
        assert!((r[0].norm() - 1.0).abs() < 1e-9);
        assert!((r[0].im + r[1].im).abs() < 1e-9);
    }

    #[test]
    fn cubic_known_roots() {
        // (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
        let r = sorted_re(roots(&[-6.0, 11.0, -6.0, 1.0]).unwrap());
        for (root, expect) in r.iter().zip([1.0, 2.0, 3.0]) {
            assert!((root.re - expect).abs() < 1e-8, "{root} vs {expect}");
            assert!(root.im.abs() < 1e-8);
        }
    }

    #[test]
    fn quartic_with_complex_pairs() {
        // (x²+1)(x²+4) = x⁴ + 5x² + 4 → ±j, ±2j
        let r = roots(&[4.0, 0.0, 5.0, 0.0, 1.0]).unwrap();
        let mut mags: Vec<f64> = r.iter().map(|z| z.norm()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mags[0] - 1.0).abs() < 1e-7);
        assert!((mags[3] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn widely_spread_real_roots() {
        // Pole constellations in circuits span decades: (x+1)(x+1e6)
        let r = sorted_re(roots(&[1e6, 1e6 + 1.0, 1.0]).unwrap());
        assert!((r[0].re + 1e6).abs() / 1e6 < 1e-6);
        assert!((r[1].re + 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(roots(&[1.0]).is_err());
        assert!(roots(&[1.0, 0.0]).is_err());
        assert!(roots(&[]).is_err());
    }
}
