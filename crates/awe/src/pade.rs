//! Padé reduction from moments to a pole/residue model.
//!
//! With `H(s) = Σᵢ kᵢ/(s − pᵢ)` the moments satisfy
//! `mⱼ = −Σᵢ kᵢ/pᵢ^(j+1)`. Writing `bᵢ = 1/pᵢ` and `cᵢ = −kᵢ·bᵢ`, the
//! moment sequence is a power sum `mⱼ = Σᵢ cᵢ·bᵢʲ`, so the `bᵢ` are the
//! roots of the characteristic polynomial obtained from the Hankel system
//! of moments — the classic AWE construction.

use crate::error::AweError;
use crate::model::ReducedModel;
use crate::poly;
use ape_spice::linalg::Matrix;
use ape_spice::Complex;

/// Reduces `2q` scalar moments to a `q`-pole [`ReducedModel`].
///
/// # Errors
///
/// * [`AweError::InvalidOrder`] unless `1 ≤ q ≤ 8` and `moments.len() ≥ 2q`.
/// * [`AweError::DegenerateMoments`] when the Hankel matrix is singular.
/// * [`AweError::RootsFailed`] if the characteristic roots cannot be found.
pub fn pade_reduce(moments: &[f64], q: usize) -> Result<ReducedModel, AweError> {
    if q == 0 || q > 8 || moments.len() < 2 * q {
        return Err(AweError::InvalidOrder { q });
    }
    // Hankel solve for characteristic coefficients a₀..a_{q−1}:
    //   Σᵢ aᵢ·m_{j+i} = −m_{j+q},  j = 0..q−1.
    let mut h = Matrix::<f64>::zeros(q);
    let mut rhs = vec![0.0; q];
    for j in 0..q {
        for i in 0..q {
            h[(j, i)] = moments[j + i];
        }
        rhs[j] = -moments[j + q];
    }
    let a = h.solve(&rhs).ok_or(AweError::DegenerateMoments { q })?;

    // Characteristic polynomial bᵠ + a_{q−1}·b^{q−1} + … + a₀ = 0.
    let mut coeffs = a.clone();
    coeffs.push(1.0);
    let b_roots = poly::roots(&coeffs)?;

    // Reject b ≈ 0 (pole at infinity → degenerate).
    for b in &b_roots {
        if b.norm() < 1e-30 {
            return Err(AweError::DegenerateMoments { q });
        }
    }

    // Residue recovery: Vandermonde in b, Σᵢ cᵢ·bᵢʲ = mⱼ, j = 0..q−1.
    let mut v = Matrix::<Complex>::zeros(q);
    let mut mrhs = vec![Complex::ZERO; q];
    for j in 0..q {
        for (i, b) in b_roots.iter().enumerate() {
            let mut val = Complex::ONE; // bᵢʲ
            for _ in 0..j {
                val = val * *b;
            }
            v[(j, i)] = val;
        }
        mrhs[j] = Complex::real(moments[j]);
    }
    let c = v.solve(&mrhs).ok_or(AweError::DegenerateMoments { q })?;

    let mut poles = Vec::with_capacity(q);
    let mut residues = Vec::with_capacity(q);
    for (b, ci) in b_roots.iter().zip(&c) {
        let p = b.inv();
        let k = -(*ci) * p; // kᵢ = −cᵢ·pᵢ
        poles.push(p);
        residues.push(k);
    }
    Ok(ReducedModel::new(poles, residues))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Construct moments from a known pole/residue set and recover it.
    fn moments_of(poles: &[f64], residues: &[f64], count: usize) -> Vec<f64> {
        (0..count)
            .map(|j| {
                -poles
                    .iter()
                    .zip(residues)
                    .map(|(p, k)| k / p.powi(j as i32 + 1))
                    .sum::<f64>()
            })
            .collect()
    }

    #[test]
    fn recovers_single_pole() {
        // H(s) = 1/(1+s/w) = w/(s+w) → pole −w, residue w... with gain 1:
        // k/(s−p) with p = −w, k = w gives H(0) = −k/p = 1.
        let w = 2.0 * std::f64::consts::PI * 1e5;
        let m = moments_of(&[-w], &[w], 2);
        let model = pade_reduce(&m, 1).unwrap();
        assert!((model.poles()[0].re + w).abs() / w < 1e-9);
        assert!((model.dc_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_two_real_poles() {
        let p = [-1e4, -1e7];
        let k = [9.9e3, 1.3e6];
        let m = moments_of(&p, &k, 4);
        let model = pade_reduce(&m, 2).unwrap();
        let mut got: Vec<f64> = model.poles().iter().map(|z| z.re).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((got[0] + 1e7).abs() / 1e7 < 1e-6, "{got:?}");
        assert!((got[1] + 1e4).abs() / 1e4 < 1e-6, "{got:?}");
        assert!(model.is_stable());
    }

    #[test]
    fn recovers_complex_pair_via_eval() {
        // Build moments of a 2nd-order resonant system by expanding
        // H(s) = 1/(1 + s/(Q w0) + s²/w0²) around s = 0.
        let w0 = 1e6;
        let q_factor = 2.0;
        // Power-series coefficients via long division of 1 by the denom.
        let d = [1.0, 1.0 / (q_factor * w0), 1.0 / (w0 * w0)];
        let mut m = vec![0.0; 4];
        m[0] = 1.0;
        for j in 1..4 {
            let mut acc = 0.0;
            for i in 1..=j.min(2) {
                acc -= d[i] * m[j - i];
            }
            m[j] = acc;
        }
        let model = pade_reduce(&m, 2).unwrap();
        assert!(model.is_stable());
        // |p| = w0 for a resonant pair.
        for p in model.poles() {
            assert!((p.norm() - w0).abs() / w0 < 1e-6, "pole {p}");
        }
        // Check the model evaluates correctly at s = j·w0/10.
        let s = Complex::new(0.0, w0 / 10.0);
        let exact =
            Complex::ONE / (Complex::ONE + s * (1.0 / (q_factor * w0)) + s * s * (1.0 / (w0 * w0)));
        let approx = model.eval(s);
        assert!((exact - approx).norm() < 1e-6 * exact.norm());
    }

    #[test]
    fn rejects_bad_orders() {
        assert!(pade_reduce(&[1.0, 2.0], 0).is_err());
        assert!(pade_reduce(&[1.0], 1).is_err());
        assert!(pade_reduce(&[1.0; 20], 9).is_err());
    }

    #[test]
    fn degenerate_moments_detected() {
        // All-zero moments → singular Hankel.
        let err = pade_reduce(&[0.0, 0.0, 0.0, 0.0], 2).unwrap_err();
        assert!(matches!(err, AweError::DegenerateMoments { .. }));
    }
}
