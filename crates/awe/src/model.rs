//! The reduced-order pole/residue model produced by Padé reduction.

use ape_spice::Complex;

/// A reduced-order transfer function `H(s) = Σᵢ kᵢ/(s − pᵢ)`.
///
/// # Example
///
/// ```
/// use ape_awe::ReducedModel;
/// use ape_spice::Complex;
/// // Unity-DC-gain single pole at −ω.
/// let w = 1e6;
/// let model = ReducedModel::new(vec![Complex::real(-w)], vec![Complex::real(w)]);
/// assert!((model.dc_gain() - 1.0).abs() < 1e-12);
/// assert!(model.is_stable());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedModel {
    poles: Vec<Complex>,
    residues: Vec<Complex>,
}

impl ReducedModel {
    /// Builds a model from matched pole and residue lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists have different lengths.
    pub fn new(poles: Vec<Complex>, residues: Vec<Complex>) -> Self {
        assert_eq!(poles.len(), residues.len());
        ReducedModel { poles, residues }
    }

    /// The poles of the model.
    pub fn poles(&self) -> &[Complex] {
        &self.poles
    }

    /// The residues of the model, matched to [`ReducedModel::poles`].
    pub fn residues(&self) -> &[Complex] {
        &self.residues
    }

    /// Approximation order (number of poles).
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// Evaluates `H(s)` at a complex frequency.
    pub fn eval(&self, s: Complex) -> Complex {
        self.poles
            .iter()
            .zip(&self.residues)
            .map(|(p, k)| *k / (s - *p))
            .fold(Complex::ZERO, |acc, v| acc + v)
    }

    /// Magnitude of the response at a real frequency in hertz.
    pub fn magnitude_at(&self, f_hz: f64) -> f64 {
        self.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f_hz))
            .norm()
    }

    /// DC gain `H(0) = −Σ kᵢ/pᵢ` (signed real part; the imaginary part of a
    /// physical model cancels).
    pub fn dc_gain(&self) -> f64 {
        -self
            .poles
            .iter()
            .zip(&self.residues)
            .map(|(p, k)| *k / *p)
            .fold(Complex::ZERO, |acc, v| acc + v)
            .re
    }

    /// `true` when every pole lies strictly in the left half plane.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }

    /// The slowest stable pole's corner frequency in hertz, if any pole is
    /// stable.
    pub fn dominant_pole_hz(&self) -> Option<f64> {
        self.poles
            .iter()
            .filter(|p| p.re < 0.0)
            .map(|p| p.norm() / (2.0 * std::f64::consts::PI))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// −3 dB bandwidth found by bisection on the magnitude response.
    ///
    /// Returns `None` if the magnitude never falls below `|H(0)|/√2` within
    /// `1e12` Hz (e.g. all-pass-like degenerate models).
    pub fn bandwidth_3db_hz(&self) -> Option<f64> {
        let h0 = self.dc_gain().abs();
        if h0 == 0.0 {
            return None;
        }
        let target = h0 / 2f64.sqrt();
        bisect_crossing(|f| self.magnitude_at(f), target)
    }

    /// Unity-gain frequency found by bisection, if the DC gain exceeds 1.
    pub fn unity_gain_hz(&self) -> Option<f64> {
        if self.dc_gain().abs() <= 1.0 {
            return None;
        }
        bisect_crossing(|f| self.magnitude_at(f), 1.0)
    }

    /// Step response value at time `t` for a unit input step:
    /// `y(t) = H(0) + Σᵢ (kᵢ/pᵢ)·e^(pᵢ·t)`.
    pub fn step_response(&self, t: f64) -> f64 {
        let mut acc = Complex::real(self.dc_gain());
        for (p, k) in self.poles.iter().zip(&self.residues) {
            let e = Complex::new(
                (p.re * t).exp() * (p.im * t).cos(),
                (p.re * t).exp() * (p.im * t).sin(),
            );
            acc += (*k / *p) * e;
        }
        acc.re
    }
}

/// First frequency where a decreasing magnitude response crosses `target`,
/// by decade scan + bisection.
fn bisect_crossing(mag: impl Fn(f64) -> f64, target: f64) -> Option<f64> {
    let mut lo = 1e-3;
    if mag(lo) < target {
        return Some(lo);
    }
    let mut hi = lo;
    while hi < 1e12 {
        hi *= 10.0;
        if mag(hi) < target {
            for _ in 0..80 {
                let mid = (lo * hi).sqrt();
                if mag(mid) < target {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            return Some((lo * hi).sqrt());
        }
        lo = hi;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_pole(w: f64, a0: f64) -> ReducedModel {
        // H(s) = a0·w/(s+w)
        ReducedModel::new(vec![Complex::real(-w)], vec![Complex::real(a0 * w)])
    }

    #[test]
    fn dc_gain_and_bandwidth() {
        let w = 2.0 * std::f64::consts::PI * 1e5;
        let m = single_pole(w, 40.0);
        assert!((m.dc_gain() - 40.0).abs() < 1e-9);
        let bw = m.bandwidth_3db_hz().unwrap();
        assert!((bw - 1e5).abs() / 1e5 < 1e-3, "bw = {bw}");
    }

    #[test]
    fn unity_gain_frequency_of_integrator_like() {
        // Single pole with A0 = 1000, pole at 100 Hz → UGF ≈ 100 kHz.
        let w = 2.0 * std::f64::consts::PI * 100.0;
        let m = single_pole(w, 1000.0);
        let fu = m.unity_gain_hz().unwrap();
        assert!((fu - 1e5).abs() / 1e5 < 1e-2, "fu = {fu}");
    }

    #[test]
    fn no_ugf_below_unity_gain() {
        let m = single_pole(1e3, 0.5);
        assert!(m.unity_gain_hz().is_none());
    }

    #[test]
    fn step_response_of_first_order() {
        let w = 1e6;
        let m = single_pole(w, 1.0);
        assert!(m.step_response(0.0).abs() < 1e-9);
        let tau = 1.0 / w;
        let v = m.step_response(tau);
        assert!((v - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        assert!((m.step_response(20.0 * tau) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stability_detection() {
        let stable = single_pole(1e3, 1.0);
        assert!(stable.is_stable());
        let unstable = ReducedModel::new(vec![Complex::real(1e3)], vec![Complex::real(1e3)]);
        assert!(!unstable.is_stable());
        assert!(unstable.dominant_pole_hz().is_none());
    }

    #[test]
    fn complex_pair_step_response_is_real() {
        // Critically-damped-ish resonant pair: conjugate poles/residues.
        let p = Complex::new(-1e4, 5e4);
        let k = Complex::new(0.0, -2.6e4); // conjugate-symmetric residues
        let m = ReducedModel::new(vec![p, p.conj()], vec![k, k.conj()]);
        let y = m.step_response(1e-4);
        assert!(y.is_finite());
        // A conjugate-symmetric model has a real response by construction;
        // make sure eval on the jω axis has conjugate symmetry too.
        let h1 = m.eval(Complex::new(0.0, 1e4));
        let h2 = m.eval(Complex::new(0.0, -1e4));
        assert!((h1 - h2.conj()).norm() < 1e-12 * h1.norm().max(1.0));
    }
}
