//! Asymptotic Waveform Evaluation (AWE).
//!
//! ASTRX/OBLX — the synthesis engine the paper seeds with APE estimates —
//! evaluates candidate circuits with AWE (Pillage & Rohrer, paper ref \[15\])
//! instead of full AC sweeps. This crate reproduces that substrate:
//!
//! 1. **Moments** of the transfer function are computed from the linearised
//!    system `(G + sC)·x = b` by repeated back-substitution:
//!    `G·x₀ = b`, `G·xₖ = −C·xₖ₋₁`, `mₖ = xₖ[out]`.
//! 2. A **Padé approximation** matches `2q` moments to a `q`-pole reduced
//!    model `H(s) ≈ Σ kᵢ/(s − pᵢ)`.
//! 3. The [`ReducedModel`] answers the questions synthesis asks — DC gain,
//!    dominant pole, −3 dB bandwidth, unity-gain frequency, step response —
//!    in microseconds instead of a full sweep.
//!
//! # Example
//!
//! Reduce an RC low-pass to one pole and compare with the exact answer:
//!
//! ```
//! use ape_netlist::{Circuit, Technology, SourceWaveform};
//! use ape_spice::{dc_operating_point, linearize};
//! use ape_awe::awe_transfer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new("rc");
//! let i = ckt.node("in");
//! let o = ckt.node("out");
//! ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)?;
//! ckt.add_resistor("R1", i, o, 1e3)?;
//! ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9)?;
//! let tech = Technology::default_1p2um();
//! let op = dc_operating_point(&ckt, &tech)?;
//! let sys = linearize(&ckt, &tech, &op)?;
//! let model = awe_transfer(&sys, o, 1)?;
//! let f_pole = model.dominant_pole_hz().expect("one real pole");
//! let expect = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
//! assert!((f_pole - expect).abs() / expect < 1e-6);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
mod moments;
mod pade;
mod poly;

pub use error::AweError;
pub use model::ReducedModel;
pub use moments::{moments, transfer_moments};
pub use pade::pade_reduce;
pub use poly::roots as polynomial_roots;

use ape_netlist::NodeId;
use ape_spice::LinearizedSystem;

/// One-call AWE: computes `2q` moments of the voltage at `output` and
/// reduces them to a `q`-pole model.
///
/// # Errors
///
/// * [`AweError::InvalidOrder`] for `q = 0` or `q > 8`.
/// * [`AweError::SingularSystem`] when the conductance matrix cannot be
///   factorised.
/// * [`AweError::DegenerateMoments`] when the Hankel system is singular
///   (the response has fewer than `q` observable poles) — retry with a
///   smaller `q`.
pub fn awe_transfer(
    sys: &LinearizedSystem,
    output: NodeId,
    q: usize,
) -> Result<ReducedModel, AweError> {
    let m = transfer_moments(sys, output, 2 * q)?;
    pade_reduce(&m, q)
}

/// AWE with automatic order fallback: tries `q`, then `q−1`, … down to 1,
/// returning the first order whose Hankel system is well conditioned and
/// whose model is stable.
///
/// # Errors
///
/// Same as [`awe_transfer`] when even `q = 1` fails.
pub fn awe_transfer_auto(
    sys: &LinearizedSystem,
    output: NodeId,
    q_max: usize,
) -> Result<ReducedModel, AweError> {
    let m = transfer_moments(sys, output, 2 * q_max.max(1))?;
    let mut last_err = None;
    for q in (1..=q_max.max(1)).rev() {
        match pade_reduce(&m[..2 * q], q) {
            Ok(model) if model.is_stable() => return Ok(model),
            Ok(_) => last_err = Some(AweError::UnstableModel { order: q }),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(AweError::InvalidOrder { q: q_max }))
}
