//! Error type for AWE reduction.

use std::error::Error;
use std::fmt;

/// Errors produced while computing moments or Padé reductions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AweError {
    /// The requested approximation order is unusable.
    InvalidOrder {
        /// The offending order.
        q: usize,
    },
    /// The conductance matrix is singular; moments cannot be computed.
    SingularSystem,
    /// The Hankel moment matrix is singular: the response has fewer
    /// observable poles than requested.
    DegenerateMoments {
        /// Requested order.
        q: usize,
    },
    /// Polynomial root finding did not converge.
    RootsFailed {
        /// Degree of the polynomial.
        degree: usize,
    },
    /// The reduced model has right-half-plane poles (a known AWE failure
    /// mode); callers usually retry at a lower order.
    UnstableModel {
        /// Order of the unstable model.
        order: usize,
    },
}

impl fmt::Display for AweError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AweError::InvalidOrder { q } => write!(f, "invalid awe order {q} (need 1..=8)"),
            AweError::SingularSystem => write!(f, "singular conductance matrix"),
            AweError::DegenerateMoments { q } => {
                write!(
                    f,
                    "moment matrix singular at order {q}; response has fewer poles"
                )
            }
            AweError::RootsFailed { degree } => {
                write!(f, "root finding failed for degree-{degree} polynomial")
            }
            AweError::UnstableModel { order } => {
                write!(f, "order-{order} reduced model has unstable poles")
            }
        }
    }
}

impl Error for AweError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<AweError>();
        assert!(AweError::SingularSystem.to_string().contains("singular"));
    }
}
