//! Moment computation by recursive back-substitution.

use crate::error::AweError;
use ape_netlist::NodeId;
use ape_spice::linalg::Matrix;
use ape_spice::LinearizedSystem;

/// Computes the first `count` moment *vectors* of `(G + sC)·x = b`:
/// `x(s) = Σ xₖ sᵏ` with `G·x₀ = b` and `G·xₖ = −C·xₖ₋₁`.
///
/// # Errors
///
/// [`AweError::SingularSystem`] when `G` cannot be factorised.
pub fn moments(
    g: &Matrix<f64>,
    c: &Matrix<f64>,
    b: &[f64],
    count: usize,
) -> Result<Vec<Vec<f64>>, AweError> {
    let mut out = Vec::with_capacity(count);
    let mut rhs = b.to_vec();
    for _ in 0..count {
        let x = g.solve(&rhs).ok_or(AweError::SingularSystem)?;
        rhs = c.mul_vec(&x).iter().map(|v| -v).collect();
        out.push(x);
    }
    Ok(out)
}

/// Scalar moments of the voltage at `output`: `mₖ = xₖ[output]`.
///
/// # Errors
///
/// [`AweError::SingularSystem`] when `G` cannot be factorised; moments of
/// the ground node are all zero.
pub fn transfer_moments(
    sys: &LinearizedSystem,
    output: NodeId,
    count: usize,
) -> Result<Vec<f64>, AweError> {
    let Some(row) = sys.node_row(output) else {
        return Ok(vec![0.0; count]);
    };
    let vecs = moments(&sys.g, &sys.c, &sys.b, count)?;
    Ok(vecs.into_iter().map(|x| x[row]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::{Circuit, SourceWaveform, Technology};
    use ape_spice::{dc_operating_point, linearize};

    /// Unit RC low-pass: H(s) = 1/(1+sRC) → moments 1, −RC, (RC)², …
    #[test]
    fn rc_moments_are_geometric() {
        let mut ckt = Circuit::new("rc");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_resistor("R1", i, o, 1e3).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sys = linearize(&ckt, &tech, &op).unwrap();
        let m = transfer_moments(&sys, o, 4).unwrap();
        // Tolerance is set by the 1e-12 S gmin shunt the linearisation adds.
        let tau = 1e-6;
        assert!((m[0] - 1.0).abs() < 1e-6, "m0 = {}", m[0]);
        assert!((m[1] + tau).abs() / tau < 1e-6, "m1 = {}", m[1]);
        assert!(
            (m[2] - tau * tau).abs() / (tau * tau) < 1e-6,
            "m2 = {}",
            m[2]
        );
        assert!((m[3] + tau.powi(3)).abs() / tau.powi(3) < 1e-6);
    }

    #[test]
    fn ground_node_moments_zero() {
        let mut ckt = Circuit::new("rc");
        let i = ckt.node("in");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_resistor("R1", i, Circuit::GROUND, 1e3).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sys = linearize(&ckt, &tech, &op).unwrap();
        let m = transfer_moments(&sys, Circuit::GROUND, 3).unwrap();
        assert_eq!(m, vec![0.0, 0.0, 0.0]);
    }
}
