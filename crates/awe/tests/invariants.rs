// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Sampled invariant tests for the AWE reduction: Padé identities over
//! random stable systems, swept deterministically from fixed seeds.

use ape_awe::{pade_reduce, polynomial_roots, ReducedModel};
use ape_spice::Complex;

/// Moments of a pole/residue set: `mⱼ = −Σ kᵢ/pᵢ^(j+1)`.
fn moments_of(poles: &[f64], residues: &[f64], count: usize) -> Vec<f64> {
    (0..count)
        .map(|j| {
            -poles
                .iter()
                .zip(residues)
                .map(|(p, k)| k / p.powi(j as i32 + 1))
                .sum::<f64>()
        })
        .collect()
}

/// Minimal xorshift sampler (deterministic, dependency-free).
struct Sampler(u64);

impl Sampler {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next()
    }

    /// Log-uniform sample in `[lo, hi]` — pole magnitudes span decades.
    fn log_range(&mut self, lo: f64, hi: f64) -> f64 {
        (self.range(lo.ln(), hi.ln())).exp()
    }
}

/// One real pole: exact recovery.
#[test]
fn single_pole_recovery() {
    let mut s = Sampler(0x1A3E);
    for _ in 0..96 {
        let p_mag = s.log_range(1e2, 1e9);
        let k_scale = s.range(0.1, 100.0);
        let p = -p_mag;
        let k = k_scale * p_mag; // H(0) = -k/p = k_scale
        let m = moments_of(&[p], &[k], 2);
        let model = pade_reduce(&m, 1).unwrap();
        assert!((model.poles()[0].re - p).abs() / p_mag < 1e-6);
        assert!((model.dc_gain() - k_scale).abs() / k_scale < 1e-6);
    }
}

/// Two well-separated real poles: both recovered with their DC gain.
#[test]
fn two_pole_recovery() {
    let mut s = Sampler(0x2B0B);
    for _ in 0..96 {
        let p1_mag = s.log_range(1e2, 1e5);
        let sep = s.log_range(30.0, 1e4);
        let k1 = s.range(1.0, 100.0);
        let k2 = s.range(1.0, 100.0);
        let p1 = -p1_mag;
        let p2 = -p1_mag * sep;
        let res = [k1 * p1_mag, k2 * p1_mag * sep];
        let m = moments_of(&[p1, p2], &res, 4);
        let model = pade_reduce(&m, 2).unwrap();
        assert!(model.is_stable());
        let mut got: Vec<f64> = model.poles().iter().map(|z| z.re).collect();
        got.sort_by(|a, b| b.partial_cmp(a).unwrap()); // slowest first
        assert!(
            (got[0] - p1).abs() / p1_mag < 1e-3,
            "p1 {} vs {}",
            got[0],
            p1
        );
        assert!((got[1] - p2).abs() / (p1_mag * sep) < 1e-3);
        let dc_expect = k1 + k2;
        assert!((model.dc_gain() - dc_expect).abs() / dc_expect < 1e-6);
    }
}

/// The reduced model reproduces the moments it was built from: the Taylor
/// coefficients of `H(s)` at `s = 0` match.
#[test]
fn model_matches_input_moments() {
    let mut s = Sampler(0x3CAD);
    for _ in 0..96 {
        let p1_mag = s.log_range(1e3, 1e6);
        let sep = s.log_range(10.0, 1e3);
        let k1 = s.range(1.0, 50.0);
        let k2 = s.range(1.0, 50.0);
        let poles = [-p1_mag, -p1_mag * sep];
        let res = [k1 * p1_mag, k2 * p1_mag * sep];
        let m_in = moments_of(&poles, &res, 4);
        let model = pade_reduce(&m_in, 2).unwrap();
        // Recompute the moments of the *model* analytically.
        let m_back: Vec<f64> = (0..4)
            .map(|j| {
                -model
                    .poles()
                    .iter()
                    .zip(model.residues())
                    .map(|(p, k)| {
                        // k/p^(j+1) for complex p (here real-ish).
                        let mut denom = *p;
                        for _ in 0..j {
                            denom = denom * *p;
                        }
                        (*k / denom).re
                    })
                    .sum::<f64>()
            })
            .collect();
        for (a, b) in m_in.iter().zip(&m_back) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1e-30), "{a} vs {b}");
        }
    }
}

/// Root finding solves monic polynomials built from known real roots.
#[test]
fn roots_of_constructed_polynomials() {
    let mut s = Sampler(0x4D0C);
    let mut checked = 0;
    while checked < 96 {
        let r1 = s.range(-100.0, -0.1);
        let r2 = s.range(0.1, 100.0);
        let r3 = s.range(-50.0, 50.0);
        // (x-r1)(x-r2)(x-r3), distinct enough roots only.
        if (r1 - r2).abs() <= 0.5 || (r1 - r3).abs() <= 0.5 || (r2 - r3).abs() <= 0.5 {
            continue;
        }
        checked += 1;
        let c0 = -r1 * r2 * r3;
        let c1 = r1 * r2 + r1 * r3 + r2 * r3;
        let c2 = -(r1 + r2 + r3);
        let roots = polynomial_roots(&[c0, c1, c2, 1.0]).unwrap();
        let mut expect = [r1, r2, r3];
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut got: Vec<f64> = roots.iter().map(|z| z.re).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-5 * e.abs().max(1.0), "{g} vs {e}");
        }
        for z in &roots {
            assert!(z.im.abs() < 1e-5 * z.re.abs().max(1.0));
        }
    }
}

/// Step responses of stable models settle to the DC gain.
#[test]
fn step_response_settles() {
    let mut s = Sampler(0x5E77);
    for _ in 0..96 {
        let p_mag = s.log_range(1e3, 1e8);
        let a0 = s.range(0.5, 500.0);
        let model = ReducedModel::new(vec![Complex::real(-p_mag)], vec![Complex::real(a0 * p_mag)]);
        let t_settle = 20.0 / p_mag;
        let y = model.step_response(t_settle);
        assert!((y - a0).abs() / a0 < 1e-6, "settled to {y}, expected {a0}");
    }
}
