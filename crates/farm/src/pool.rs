//! The worker pool: a dispatcher thread drains the bounded job queue and
//! schedules each job as a task on the process-wide [`ape_exec`] executor,
//! executing requests against a shared [`Technology`], publishing results
//! into the single-flight [`ResultCache`], with per-job cancellation,
//! deadlines, and panic isolation. A permit semaphore caps how many jobs
//! are in flight at once ([`FarmConfig::workers`], clamped to the
//! machine), so the farm shares threads with every other executor client
//! — AC sweeps, `evaluate_many` fan-outs, other farms — instead of
//! running a competing pool.

use crate::cache::{Claim, ResultCache};
use crate::job::{canonical_key, FarmError, Request, Response};
use crate::queue::{BoundedQueue, TryPushError};
use ape_calib::Calibration;
use ape_core::cancel::{self, CancelToken};
use ape_core::graph::SharedMemo;
use ape_core::netest::estimate_netlist;
use ape_core::opamp::OpAmp;
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::Technology;
use ape_oblx::synthesize;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`Farm`].
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Maximum jobs in flight at once. Defaults to the machine's available
    /// parallelism, and is clamped to it at construction
    /// ([`ape_exec::clamp_workers`]) — requesting more in-flight jobs than
    /// the machine has cores buys queueing, not throughput. The clamped
    /// value is visible as [`Farm::effective_workers`].
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold). Default 256.
    pub queue_capacity: usize,
    /// Per-job deadline; a job still running past it is abandoned at the
    /// estimator's next cancellation checkpoint. `None` = no deadline.
    pub job_timeout: Option<Duration>,
    /// Reset the per-thread estimation graph before every job (default
    /// `false`). The graph's memo keys are bit-exact fingerprints of every
    /// input, so a warm graph returns exactly what a cold recompute would —
    /// results are independent of job order and worker count either way.
    /// Enable only to measure cold-path latency; it forfeits the
    /// incremental-estimation speedup across a sweep's neighbouring jobs.
    pub isolate_sizing_cache: bool,
    /// Reset the sparse solver's symbolic-factorisation cache before every
    /// job (default `true`). A cached pivot order is a function of the job
    /// that built it; isolated jobs each start cold, keeping a job's
    /// floating-point path independent of what ran before it on the same
    /// worker.
    pub isolate_solver_cache: bool,
    /// Attach one process-wide [`SharedMemo`] to every worker's estimation
    /// graph (default `false`). Memo keys are bit-exact input fingerprints,
    /// so the shared store is a pure read-through cache: results are
    /// identical to isolated per-thread graphs, but a subtree computed by
    /// one worker is served to every other worker — the pool warms up once
    /// instead of once per thread. With this set, per-job graph resets
    /// ([`FarmConfig::isolate_sizing_cache`]) only clear the cheap local
    /// view; warmth survives in the shared store.
    pub shared_graph: bool,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 256,
            job_timeout: None,
            isolate_sizing_cache: false,
            isolate_solver_cache: true,
            shared_graph: false,
        }
    }
}

impl FarmConfig {
    /// Config with `workers` threads and the other fields at their defaults.
    pub fn with_workers(workers: usize) -> Self {
        FarmConfig {
            workers: workers.max(1),
            ..FarmConfig::default()
        }
    }
}

/// Counters accumulated over a farm's lifetime (monotonic, racy reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Requests accepted by `submit`/`try_submit` (including deduplicated
    /// ones, which are accepted without queueing).
    pub submitted: u64,
    /// Jobs actually executed by a worker.
    pub executed: u64,
    /// Submissions served from a completed cache entry.
    pub cache_hits: u64,
    /// Submissions folded into an identical in-flight job.
    pub deduped: u64,
    /// Jobs that finished with [`FarmError::Cancelled`].
    pub cancelled: u64,
    /// Jobs that panicked (worker survived).
    pub panicked: u64,
    /// Fail-fast submissions rejected with [`FarmError::QueueFull`].
    pub rejected: u64,
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    deduped: AtomicU64,
    cancelled: AtomicU64,
    panicked: AtomicU64,
    rejected: AtomicU64,
}

/// Per-submission options for [`Farm::submit_opts`]: tenant technology
/// selection, an externally owned cancellation token, and the
/// blocking-vs-fail-fast queue policy.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Run against the registered technology with this fingerprint instead
    /// of the farm's default. Unknown fingerprints resolve the handle
    /// immediately to [`FarmError::UnknownTechnology`] without queueing.
    pub technology: Option<u64>,
    /// Apply the registered calibration table with this fingerprint to the
    /// job's estimates. Unknown fingerprints resolve the handle immediately
    /// to [`FarmError::UnknownCalibration`]; a table fitted for a different
    /// technology than the job's resolves to
    /// [`FarmError::CalibrationMismatch`]. `None` = uncalibrated estimates.
    pub calibration: Option<u64>,
    /// Parent the job's cancellation token under this caller-owned token
    /// instead of the farm root. The farm's per-job deadline still applies
    /// (composed as a timed child), but [`Farm::cancel_all`] no longer
    /// reaches the job — the caller owns its lifetime.
    pub token: Option<CancelToken>,
    /// Extra deadline for this job, composed with (not replacing) the
    /// farm's [`FarmConfig::job_timeout`]: the job is abandoned at
    /// whichever expires first.
    pub deadline: Option<Duration>,
    /// `true` = behave like [`Farm::try_submit`] (a full queue resolves the
    /// handle to [`FarmError::QueueFull`]); `false` = block for a slot.
    pub fail_fast: bool,
}

struct WorkItem {
    key: u64,
    req: Request,
    tech: Arc<Technology>,
    /// Calibration table the job's estimates run under (`None` = raw).
    calib: Option<Arc<Calibration>>,
    cancel: CancelToken,
    /// Innermost open span on the submitting thread, captured so the
    /// worker-side `ape.farm.job` span parents under the submitting
    /// request in the trace tree.
    parent_span: Option<u64>,
    /// Enqueue time, for the queue-wait histogram.
    enqueued: Instant,
}

/// A counting semaphore bounding in-flight jobs. The dispatcher acquires
/// a permit *before* popping the queue, so while every permit is out,
/// queued items stay in the queue — which is what makes
/// [`Farm::try_submit`] backpressure observable.
struct Permits {
    avail: Mutex<usize>,
    returned: Condvar,
    total: usize,
}

impl Permits {
    fn new(total: usize) -> Self {
        Permits {
            avail: Mutex::new(total),
            returned: Condvar::new(),
            total,
        }
    }

    fn acquire(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        while *avail == 0 {
            avail = self.returned.wait(avail).unwrap_or_else(|e| e.into_inner());
        }
        *avail -= 1;
    }

    fn release(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        *avail += 1;
        self.returned.notify_all();
    }

    /// Blocks until every permit is back — i.e. no job is in flight.
    fn wait_all_returned(&self) {
        let mut avail = self.avail.lock().unwrap_or_else(|e| e.into_inner());
        while *avail < self.total {
            avail = self.returned.wait(avail).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Returns a job's permit when the task finishes — including a panic
/// unwinding past `run_item`'s net (the executor's own `catch_unwind`
/// stops it after this guard has dropped).
struct PermitOnDrop {
    shared: Arc<Shared>,
}

impl Drop for PermitOnDrop {
    fn drop(&mut self) {
        self.shared.permits.release();
    }
}

struct Shared {
    queue: BoundedQueue<WorkItem>,
    cache: ResultCache,
    tech: Arc<Technology>,
    /// Registered tenant technologies, keyed by fingerprint. The default
    /// technology is registered at construction; the map only grows.
    tenants: RwLock<HashMap<u64, Arc<Technology>>>,
    /// Registered calibration tables, keyed by table fingerprint.
    /// Re-registering a *different* table yields a different fingerprint,
    /// so stale cached results are unreachable by construction — the
    /// calibration fingerprint is folded into every job key.
    calibrations: RwLock<HashMap<u64, Arc<Calibration>>>,
    /// Cross-worker estimation memo store when
    /// [`FarmConfig::shared_graph`] is set.
    shared_graph: Option<Arc<SharedMemo>>,
    /// In-flight job bound (the farm's share of the process executor).
    permits: Permits,
    inflight: AtomicUsize,
    isolate_sizing_cache: bool,
    isolate_solver_cache: bool,
    stats: StatCells,
    /// Always-on latency telemetry, independent of whether a probe sink is
    /// installed: the farm owns its own lock-free histograms.
    queue_wait_ns: ape_probe::Histogram,
    job_latency_ns: ape_probe::Histogram,
}

/// A handle to one submitted job.
///
/// Dropping the handle does not cancel the job; call
/// [`JobHandle::cancel`] for that. [`JobHandle::wait`] may be called from
/// any thread and any number of handles for the same key may wait
/// concurrently.
#[derive(Debug, Clone)]
pub struct JobHandle {
    key: u64,
    cancel: CancelToken,
    shared: Arc<Shared>,
    /// A submission rejected before it touched the queue or cache (e.g. an
    /// unknown technology fingerprint): the handle is born resolved and
    /// never consults the single-flight cache, so the bad submission can't
    /// interfere with an honest job under the same key.
    immediate: Option<FarmError>,
}

impl Shared {
    fn lookup_technology(&self, fp: u64) -> Option<Arc<Technology>> {
        self.tenants
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fp)
            .cloned()
    }

    fn lookup_calibration(&self, fp: u64) -> Option<Arc<Calibration>> {
        self.calibrations
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fp)
            .cloned()
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue", &self.queue)
            .field("cache", &self.cache)
            .finish()
    }
}

impl JobHandle {
    /// The job's content-addressed key (stable within this process).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Requests cancellation of this job. The running worker abandons it
    /// at the estimator's next checkpoint; a queued job fails on dequeue.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the job (or the identical job it was deduplicated
    /// into) completes, and returns its result.
    pub fn wait(&self) -> Result<Response, FarmError> {
        if let Some(err) = &self.immediate {
            return Err(err.clone());
        }
        self.shared.cache.wait(self.key)
    }

    /// Non-blocking result peek.
    pub fn peek(&self) -> Option<Result<Response, FarmError>> {
        if let Some(err) = &self.immediate {
            return Some(Err(err.clone()));
        }
        self.shared.cache.peek(self.key)
    }
}

/// A concurrent batch-estimation engine: bounded work queue, fixed worker
/// pool, content-addressed single-flight result cache.
///
/// # Example
///
/// ```
/// use ape_core::basic::MirrorTopology;
/// use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
/// use ape_farm::{Farm, FarmConfig, Request};
/// use ape_netlist::Technology;
///
/// let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(2));
/// let h = farm.submit(Request::OpAmpDesign {
///     topology: OpAmpTopology::miller(MirrorTopology::Simple, false),
///     spec: OpAmpSpec {
///         gain: 200.0,
///         ugf_hz: 5e6,
///         area_max_m2: 5000e-12,
///         ibias: 10e-6,
///         zout_ohm: None,
///         cl: 10e-12,
///     },
/// });
/// let amp = h.wait().unwrap();
/// assert!(amp.as_opamp().unwrap().perf.dc_gain.unwrap().abs() >= 150.0);
/// drop(farm); // joins the workers
/// ```
#[derive(Debug)]
pub struct Farm {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    cancel: CancelToken,
    job_timeout: Option<Duration>,
    configured_workers: usize,
    effective_workers: usize,
}

impl Farm {
    /// Builds a farm over a bounded queue: one dispatcher thread feeds
    /// jobs to the process-wide [`ape_exec`] executor, with at most
    /// `config.workers` (clamped to the machine's parallelism) in flight
    /// at once.
    pub fn new(tech: Technology, config: FarmConfig) -> Self {
        let tech = Arc::new(tech);
        let mut tenants = HashMap::new();
        tenants.insert(tech.fingerprint(), tech.clone());
        let configured_workers = config.workers.max(1);
        // Clamp the in-flight bound to the machine: jobs beyond the core
        // count would only time-slice each other on the shared executor.
        // (There is no per-call work-item count for a long-lived pool, so
        // that clamp term is unbounded here.)
        let effective_workers = ape_exec::clamp_workers(configured_workers, usize::MAX);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: ResultCache::new(),
            tech,
            tenants: RwLock::new(tenants),
            calibrations: RwLock::new(HashMap::new()),
            shared_graph: config.shared_graph.then(|| Arc::new(SharedMemo::new())),
            permits: Permits::new(effective_workers),
            inflight: AtomicUsize::new(0),
            isolate_sizing_cache: config.isolate_sizing_cache,
            isolate_solver_cache: config.isolate_solver_cache,
            stats: StatCells::default(),
            queue_wait_ns: ape_probe::Histogram::new(),
            job_latency_ns: ape_probe::Histogram::new(),
        });
        let cancel = CancelToken::new();
        // The dispatcher is the farm's only dedicated thread. Spawning can
        // fail under resource exhaustion; retry once after a short backoff
        // (transient EAGAIN usually clears) before degrading.
        let mut dispatcher = None;
        for attempt in 0..2 {
            let shared_d = shared.clone();
            match std::thread::Builder::new()
                .name("ape-farm-dispatch".to_string())
                .spawn(move || dispatcher_loop(&shared_d))
            {
                Ok(handle) => {
                    dispatcher = Some(handle);
                    break;
                }
                Err(_) if attempt == 0 => {
                    ape_probe::counter("ape.farm.dispatcher.spawn_retry", 1);
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    ape_probe::counter("ape.farm.worker.spawn_failed", 1);
                }
            }
        }
        if dispatcher.is_none() {
            // Nothing will ever drain the queue: close it so every
            // submission resolves to `ShuttingDown` instead of hanging.
            shared.queue.close();
        }
        Farm {
            shared,
            dispatcher,
            cancel,
            job_timeout: config.job_timeout,
            configured_workers,
            effective_workers,
        }
    }

    /// The in-flight job bound actually in force: `config.workers` after
    /// clamping to the machine's available parallelism. 0 when the farm is
    /// degraded (its dispatcher could not be spawned).
    pub fn effective_workers(&self) -> usize {
        if self.dispatcher.is_some() {
            self.effective_workers
        } else {
            0
        }
    }

    /// The default technology, used by jobs that don't select a tenant.
    pub fn technology(&self) -> &Technology {
        &self.shared.tech
    }

    /// Registers a tenant technology and returns its fingerprint, the id a
    /// [`SubmitOptions::technology`] selection refers to. Registering the
    /// same card twice is idempotent (same fingerprint, same entry); two
    /// cards that differ only in `name` share a fingerprint by design
    /// (the fingerprint covers process-relevant fields only) and the first
    /// registration wins.
    pub fn register_technology(&self, tech: Technology) -> u64 {
        let fp = tech.fingerprint();
        let mut tenants = self
            .shared
            .tenants
            .write()
            .unwrap_or_else(|e| e.into_inner());
        tenants.entry(fp).or_insert_with(|| Arc::new(tech));
        fp
    }

    /// Looks up a registered tenant technology by fingerprint.
    pub fn technology_by_fingerprint(&self, fp: u64) -> Option<Arc<Technology>> {
        self.shared.lookup_technology(fp)
    }

    /// Registers a calibration table and returns its fingerprint, the id a
    /// [`SubmitOptions::calibration`] selection refers to. Registering the
    /// same table twice is idempotent. A *changed* table (re-fitted against
    /// fresh audits, say) has a different content fingerprint and so a
    /// different id: jobs selecting it key differently from jobs that ran
    /// under the old table, which is what makes the result cache (and the
    /// workers' shared estimation memos) safe across re-registration.
    pub fn register_calibration(&self, cal: Calibration) -> u64 {
        let fp = cal.fingerprint();
        let mut cals = self
            .shared
            .calibrations
            .write()
            .unwrap_or_else(|e| e.into_inner());
        cals.entry(fp).or_insert_with(|| Arc::new(cal));
        fp
    }

    /// Looks up a registered calibration table by fingerprint.
    pub fn calibration_by_fingerprint(&self, fp: u64) -> Option<Arc<Calibration>> {
        self.shared.lookup_calibration(fp)
    }

    /// The cross-worker shared estimation memo, when
    /// [`FarmConfig::shared_graph`] is enabled.
    pub fn shared_memo(&self) -> Option<&Arc<SharedMemo>> {
        self.shared.shared_graph.as_ref()
    }

    /// Human-readable summary of the sparse solver's symbolic-factorisation
    /// cache across all workers, in the same spirit as
    /// [`ape_core::graph::graph_report`]. With
    /// [`FarmConfig::isolate_solver_cache`] unset, repeated same-topology
    /// jobs on one worker reuse pivot orders and the hit rate here shows it.
    pub fn solver_cache_report(&self) -> String {
        ape_spice::symbolic_cache_report()
    }

    /// Distribution of per-job queue wait (submit → dequeue),
    /// nanoseconds. Recorded for every executed job whether or not a probe
    /// sink is installed.
    pub fn queue_wait_ns(&self) -> ape_probe::HistogramSnapshot {
        self.shared.queue_wait_ns.snapshot()
    }

    /// Distribution of per-job execution latency (dequeue → published
    /// result), nanoseconds.
    pub fn job_latency_ns(&self) -> ape_probe::HistogramSnapshot {
        self.shared.job_latency_ns.snapshot()
    }

    /// Human-readable one-stop report: lifetime counters plus queue-wait
    /// and job-latency quantiles.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let s = self.stats();
        let wait = self.queue_wait_ns();
        let lat = self.job_latency_ns();
        let mut out = String::from("=== ape-farm report ===\n");
        let exec = ape_exec::Executor::global();
        let _ = writeln!(
            out,
            "  pool: {} in-flight permits ({} configured), shared executor {} workers (parallelism {}){}",
            self.effective_workers,
            self.configured_workers,
            exec.workers(),
            exec.parallelism(),
            if self.dispatcher.is_some() {
                ""
            } else {
                " — DEGRADED: dispatcher spawn failed, submissions are rejected"
            }
        );
        let _ = writeln!(
            out,
            "  jobs: {} submitted, {} executed, {} cache hits, {} deduped, {} cancelled, {} panicked, {} rejected",
            s.submitted, s.executed, s.cache_hits, s.deduped, s.cancelled, s.panicked, s.rejected
        );
        let fmt_ns = |v: f64| ape_probe::fmt_nanos(v.max(0.0) as u64);
        let _ = writeln!(
            out,
            "  queue wait:  p50 {}  p90 {}  p99 {}  max {}  (n={})",
            fmt_ns(wait.p50()),
            fmt_ns(wait.p90()),
            fmt_ns(wait.p99()),
            fmt_ns(if wait.count == 0 { 0.0 } else { wait.max }),
            wait.count
        );
        let _ = writeln!(
            out,
            "  job latency: p50 {}  p90 {}  p99 {}  max {}  (n={})",
            fmt_ns(lat.p50()),
            fmt_ns(lat.p90()),
            fmt_ns(lat.p99()),
            fmt_ns(if lat.count == 0 { 0.0 } else { lat.max }),
            lat.count
        );
        if let Some(store) = &self.shared.shared_graph {
            let _ = writeln!(out, "  {}", store.report());
        }
        out
    }

    /// Lifetime counters (racy snapshot).
    pub fn stats(&self) -> FarmStats {
        let s = &self.shared.stats;
        FarmStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            executed: s.executed.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            deduped: s.deduped.load(Ordering::Relaxed),
            cancelled: s.cancelled.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
        }
    }

    fn job_token(&self, opts: &SubmitOptions) -> CancelToken {
        // The job's token parents under the caller's token when one is
        // given (the caller owns the job's lifetime), else under the farm
        // root (so `cancel_all` reaches it). The effective deadline is the
        // tighter of the farm-wide timeout and the per-submission one.
        let parent = opts.token.as_ref().unwrap_or(&self.cancel);
        let deadline = match (self.job_timeout, opts.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        match deadline {
            Some(t) => parent.child_with_timeout(t),
            None => parent.child(),
        }
    }

    /// Submits a request, blocking while the queue is full (backpressure).
    ///
    /// An identical in-flight or completed request is shared instead of
    /// re-queued; the returned handle then waits on the shared flight.
    pub fn submit(&self, req: Request) -> JobHandle {
        self.submit_opts(req, SubmitOptions::default())
    }

    /// Fail-fast submission: like [`Farm::submit`] but a full queue yields
    /// a handle already resolved to [`FarmError::QueueFull`] instead of
    /// blocking. Deduplicated submissions never fail this way — sharing an
    /// existing flight needs no queue slot.
    pub fn try_submit(&self, req: Request) -> JobHandle {
        self.submit_opts(
            req,
            SubmitOptions {
                fail_fast: true,
                ..SubmitOptions::default()
            },
        )
    }

    /// Submits a request with per-submission [`SubmitOptions`]: tenant
    /// technology selection, caller-owned cancellation, extra deadline,
    /// and queue policy.
    pub fn submit_opts(&self, req: Request, opts: SubmitOptions) -> JobHandle {
        let shared = &self.shared;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let tech = match opts.technology {
            None => shared.tech.clone(),
            Some(fp) => match shared.lookup_technology(fp) {
                Some(t) => t,
                None => {
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    ape_probe::counter("ape.farm.unknown_technology", 1);
                    return JobHandle {
                        key: 0,
                        cancel: CancelToken::new(),
                        shared: shared.clone(),
                        immediate: Some(FarmError::UnknownTechnology(fp)),
                    };
                }
            },
        };
        let calib = match opts.calibration {
            None => None,
            Some(fp) => match shared.lookup_calibration(fp) {
                Some(c) if c.technology_fingerprint() == tech.fingerprint() => Some(c),
                Some(c) => {
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    ape_probe::counter("ape.farm.calibration_mismatch", 1);
                    return JobHandle {
                        key: 0,
                        cancel: CancelToken::new(),
                        shared: shared.clone(),
                        immediate: Some(FarmError::CalibrationMismatch {
                            expected: tech.fingerprint(),
                            got: c.technology_fingerprint(),
                        }),
                    };
                }
                None => {
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    ape_probe::counter("ape.farm.unknown_calibration", 1);
                    return JobHandle {
                        key: 0,
                        cancel: CancelToken::new(),
                        shared: shared.clone(),
                        immediate: Some(FarmError::UnknownCalibration(fp)),
                    };
                }
            },
        };
        let fail_fast = opts.fail_fast;
        // A calibrated job computes different numbers from an uncalibrated
        // one with the same payload, so the table's content fingerprint is
        // part of the job's identity in the single-flight cache.
        let key = match &calib {
            None => canonical_key(&tech, &req),
            Some(c) => Fingerprint::new()
                .u64(canonical_key(&tech, &req))
                .u64(c.fingerprint())
                .finish(),
        };
        let token = self.job_token(&opts);
        let handle = JobHandle {
            key,
            cancel: token.clone(),
            shared: shared.clone(),
            immediate: None,
        };
        match shared.cache.claim(key) {
            Claim::Shared => {
                // Someone owns this key: completed → cache hit, in
                // flight → dedup. Count by peeking at completion state.
                if shared.cache.peek(key).is_some() {
                    shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
                }
                handle
            }
            Claim::Owner => {
                let item = WorkItem {
                    key,
                    req,
                    tech,
                    calib,
                    cancel: token,
                    parent_span: ape_probe::current_span(),
                    enqueued: Instant::now(),
                };
                // Having claimed ownership we MUST publish an outcome for
                // this key on every path, or deduplicated waiters hang.
                if fail_fast {
                    match shared.queue.try_push(item) {
                        Ok(()) => {}
                        Err((_, TryPushError::Full)) => {
                            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            shared.cache.publish(key, Err(FarmError::QueueFull));
                        }
                        Err((_, TryPushError::Closed)) => {
                            shared.cache.publish(key, Err(FarmError::ShuttingDown));
                        }
                    }
                } else if shared.queue.push(item).is_err() {
                    shared.cache.publish(key, Err(FarmError::ShuttingDown));
                }
                handle
            }
        }
    }

    /// Cancels every queued and running job. Workers stay alive and serve
    /// later submissions; only jobs holding a token derived before this
    /// call are affected... which is all of them, so in practice this
    /// empties the farm. Subsequent submissions get fresh tokens from the
    /// same root and are ALSO cancelled — use this only when tearing the
    /// batch down.
    pub fn cancel_all(&self) {
        self.cancel.cancel();
    }

    /// Closes the queue and joins the dispatcher, which first drains the
    /// queue and then waits for every in-flight job's permit to return —
    /// queued-but-unstarted jobs still execute (close drains); new
    /// submissions fail with [`FarmError::ShuttingDown`]. Called
    /// automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.queue.close();
        if let Some(d) = self.dispatcher.take() {
            // A dispatcher that somehow panicked is not worth propagating
            // during teardown.
            let _ = d.join();
        }
    }
}

impl Drop for Farm {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Publishes a `WorkerLost` result for a claimed key unless defused.
///
/// `run_item` already nets ordinary job panics with `catch_unwind`, but a
/// panic *outside* that net (probe sink, cache reset, a non-unwind payload
/// aborting the worker thread) used to leave the key `InFlight` forever —
/// every deduplicated waiter would then sleep until process exit. Arming
/// this guard before running the job guarantees an outcome is published on
/// every exit path.
struct PublishOnDrop<'a> {
    shared: &'a Shared,
    key: u64,
    armed: bool,
}

impl Drop for PublishOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            ape_probe::counter("ape.farm.worker.lost_job", 1);
            self.shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
            self.shared.cache.publish(
                self.key,
                Err(FarmError::WorkerLost(
                    "worker died before publishing a result".to_string(),
                )),
            );
        }
    }
}

/// The farm's only dedicated thread: acquire a permit, pop one job,
/// schedule it as a detached task on the process-wide executor, repeat.
/// Acquiring *before* popping is load-bearing: while every permit is out,
/// queued items stay queued, so [`Farm::try_submit`]'s backpressure
/// contract holds. On a machine whose executor has no worker threads the
/// spawn runs the job inline right here — the dispatcher then doubles as
/// the single worker, and the permit bound degenerates to serial
/// execution, which is all one core can do anyway.
fn dispatcher_loop(shared: &Arc<Shared>) {
    let _span = ape_probe::span("ape.farm.worker");
    loop {
        shared.permits.acquire();
        let Some(item) = shared.queue.pop() else {
            // Queue closed and drained.
            shared.permits.release();
            break;
        };
        let task_shared = shared.clone();
        ape_exec::Executor::global().spawn(move || {
            let _permit = PermitOnDrop {
                shared: task_shared.clone(),
            };
            run_job(&task_shared, &item);
        });
    }
    // Shutdown's contract is "every accepted job has published a result
    // by the time `shutdown` returns": the dispatcher is joined there, so
    // wait for the stragglers' permits before exiting.
    shared.permits.wait_all_returned();
}

/// Executes one dequeued job on whatever thread the executor chose and
/// publishes its outcome. This is the old per-worker loop body, minus the
/// loop: thread affinity is gone, so per-thread state (the estimation
/// graph's shared-memo attachment) is asserted per job instead of once at
/// worker start.
fn run_job(shared: &Shared, item: &WorkItem) {
    // Attach (or detach) this thread's estimation graph to the farm's
    // memo store. Executor threads are shared between farms and other
    // clients, so this is per-job — but `ensure` compares by `Arc`
    // identity, so consecutive jobs from the same farm keep the thread's
    // warm graph and pay nothing.
    ape_core::graph::ensure_thread_shared_memo(shared.shared_graph.clone());
    // Install (or clear) the job's calibration table on this thread.
    // Comparison is by content fingerprint, so consecutive jobs under the
    // same table keep the warm graph; the fingerprint is also folded into
    // every memo key, so a stale entry can never answer a calibrated job.
    ape_core::graph::ensure_thread_calibration(item.calib.clone());
    let mut guard = PublishOnDrop {
        shared,
        key: item.key,
        armed: true,
    };
    let wait_ns = item.enqueued.elapsed().as_nanos() as f64;
    shared.queue_wait_ns.record(wait_ns);
    ape_probe::value("ape.farm.queue.wait_ns", wait_ns);
    let inflight = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
    ape_probe::gauge("ape.farm.inflight", inflight as f64);
    let t0 = Instant::now();
    let result = run_item(shared, item);
    let latency_ns = t0.elapsed().as_nanos() as f64;
    shared.job_latency_ns.record(latency_ns);
    ape_probe::value("ape.farm.job.latency_ns", latency_ns);
    shared.stats.executed.fetch_add(1, Ordering::Relaxed);
    match &result {
        Err(FarmError::Cancelled) => {
            shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            ape_probe::counter("ape.farm.job.cancelled", 1);
        }
        Err(FarmError::Panicked(_)) => {
            shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
            ape_probe::counter("ape.farm.job.panicked", 1);
        }
        Err(_) => ape_probe::counter("ape.farm.job.failed", 1),
        Ok(_) => ape_probe::counter("ape.farm.job.ok", 1),
    }
    guard.armed = false;
    shared.cache.publish(item.key, result);
    let inflight = shared.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
    ape_probe::gauge("ape.farm.inflight", inflight as f64);
}

fn run_item(shared: &Shared, item: &WorkItem) -> Result<Response, FarmError> {
    // Parent the worker-side span under the innermost span that was open on
    // the submitting thread, so a sweep's jobs hang off its request span in
    // the exported trace tree instead of floating as roots.
    let _span = ape_probe::span_with_parent("ape.farm.job", item.parent_span);
    if item.cancel.is_cancelled() {
        return Err(FarmError::Cancelled);
    }
    let _token_guard = cancel::set_current(item.cancel.clone());
    if shared.isolate_sizing_cache {
        ape_core::graph::reset_thread_graph();
    }
    if shared.isolate_solver_cache {
        ape_spice::reset_symbolic_cache();
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(&item.tech, &item.req)));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(FarmError::Panicked(msg))
        }
    }
}

fn execute(tech: &Technology, req: &Request) -> Result<Response, FarmError> {
    match req {
        Request::OpAmpDesign { topology, spec } => {
            let amp = OpAmp::design(tech, *topology, *spec)?;
            Ok(Response::OpAmp(Box::new(amp)))
        }
        Request::NetlistEstimate { circuit, output } => {
            let est = estimate_netlist(circuit, tech, *output)?;
            Ok(Response::Netlist(Box::new(est)))
        }
        Request::Synthesize {
            topology,
            spec,
            init,
            opts,
        } => {
            let out = synthesize(tech, *topology, spec, init, opts)?;
            Ok(Response::Synthesis(Box::new(out)))
        }
        Request::Custom { run, .. } => run(tech),
    }
}
