//! Design-space sweeps: expand a parameter grid into farm jobs, collect
//! the estimates, reduce them to a Pareto front, and stream the lot as
//! JSON Lines.
//!
//! The sweep is deterministic by construction: points are enumerated in a
//! fixed row-major order, every job is a pure function of
//! `(technology, request)` (the estimation graph memoizes on bit-exact
//! input fingerprints, so warm and cold workers agree), and results are
//! collected in point order — so the JSONL output is byte-identical
//! whatever the worker count.

use crate::job::Request;
use crate::pool::Farm;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use std::fmt::Write as _;

/// A rectangular grid of op-amp specifications to estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Required DC gains (absolute).
    pub gains: Vec<f64>,
    /// Required unity-gain frequencies, hertz.
    pub ugfs_hz: Vec<f64>,
    /// Load capacitances, farads.
    pub loads_f: Vec<f64>,
    /// Topology alternatives to race against each other.
    pub topologies: Vec<OpAmpTopology>,
    /// Bias reference current, amperes (fixed across the grid).
    pub ibias_a: f64,
    /// Gate-area budget, square metres (fixed across the grid).
    pub area_max_m2: f64,
    /// Output-impedance requirement for buffered topologies.
    pub zout_ohm: Option<f64>,
}

impl SweepPlan {
    /// The demo grid used by `examples/batch_sweep.rs`: 4 gains × 4 UGFs
    /// × 3 loads × 3 topologies = 144 design points.
    pub fn example() -> Self {
        use ape_core::basic::MirrorTopology;
        SweepPlan {
            gains: vec![100.0, 200.0, 500.0, 1000.0],
            ugfs_hz: vec![1e6, 3e6, 5e6, 10e6],
            loads_f: vec![5e-12, 10e-12, 20e-12],
            topologies: vec![
                OpAmpTopology::miller(MirrorTopology::Simple, false),
                OpAmpTopology::miller(MirrorTopology::Wilson, false),
                OpAmpTopology::miller(MirrorTopology::Simple, true),
            ],
            ibias_a: 10e-6,
            area_max_m2: 20_000e-12,
            zout_ohm: Some(10e3),
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.topologies.len() * self.gains.len() * self.ugfs_hz.len() * self.loads_f.len()
    }

    /// `true` for a degenerate empty grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the grid in deterministic row-major order
    /// (topology-major, load-minor).
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut pts = Vec::with_capacity(self.len());
        let mut index = 0usize;
        for &topology in &self.topologies {
            for &gain in &self.gains {
                for &ugf_hz in &self.ugfs_hz {
                    for &cl_f in &self.loads_f {
                        pts.push(SweepPoint {
                            index,
                            topology,
                            gain,
                            ugf_hz,
                            cl_f,
                        });
                        index += 1;
                    }
                }
            }
        }
        pts
    }

    fn request_for(&self, p: &SweepPoint) -> Request {
        Request::OpAmpDesign {
            topology: p.topology,
            spec: OpAmpSpec {
                gain: p.gain,
                ugf_hz: p.ugf_hz,
                area_max_m2: self.area_max_m2,
                ibias: self.ibias_a,
                zout_ohm: if p.topology.buffer {
                    self.zout_ohm
                } else {
                    None
                },
                cl: p.cl_f,
            },
        }
    }

    /// Runs the whole grid on `farm` and reduces it to a report with the
    /// Pareto front marked. Results are collected in point order, so the
    /// report (and its JSONL rendering) does not depend on the farm's
    /// worker count.
    pub fn run(&self, farm: &Farm) -> SweepReport {
        let _span = ape_probe::span("ape.farm.sweep");
        let points = self.points();
        ape_probe::counter("ape.farm.sweep.points", points.len() as u64);
        let handles: Vec<_> = points
            .iter()
            .map(|p| farm.submit(self.request_for(p)))
            .collect();
        let mut records: Vec<SweepRecord> = points
            .iter()
            .zip(&handles)
            .map(|(p, h)| {
                let outcome = match h.wait() {
                    Ok(resp) => match resp.as_opamp() {
                        Some(amp) => Ok(SweepMetrics::from_design(p, amp)),
                        None => Err("unexpected response variant".to_string()),
                    },
                    Err(e) => Err(e.to_string()),
                };
                SweepRecord {
                    point: *p,
                    outcome,
                    pareto: false,
                }
            })
            .collect();
        mark_pareto(&mut records);
        SweepReport { records }
    }
}

/// One grid point of a [`SweepPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Position in row-major enumeration order.
    pub index: usize,
    /// Topology of this point.
    pub topology: OpAmpTopology,
    /// Required DC gain.
    pub gain: f64,
    /// Required unity-gain frequency, hertz.
    pub ugf_hz: f64,
    /// Load capacitance, farads.
    pub cl_f: f64,
}

impl SweepPoint {
    /// Compact topology label for reports (`simple`, `wilson`,
    /// `simple+buf`, …).
    pub fn topology_label(&self) -> String {
        let mut s = format!("{:?}", self.topology.current_source).to_lowercase();
        if self.topology.buffer {
            s.push_str("+buf");
        }
        if !self.topology.compensated {
            s.push_str("+uncomp");
        }
        s
    }
}

/// The estimator's answer at one grid point, reduced to the sweep's
/// objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepMetrics {
    /// Total gate area, square micrometres.
    pub area_um2: f64,
    /// Static power, milliwatts.
    pub power_mw: f64,
    /// Achieved DC gain magnitude.
    pub gain: f64,
    /// Fractional gain shortfall against the spec (0 when met or exceeded).
    pub gain_err_frac: f64,
    /// Achieved unity-gain frequency, hertz (0 when none).
    pub ugf_hz: f64,
}

impl SweepMetrics {
    fn from_design(p: &SweepPoint, amp: &ape_core::opamp::OpAmp) -> Self {
        let gain = amp.perf.dc_gain.map(f64::abs).unwrap_or(0.0);
        SweepMetrics {
            area_um2: amp.perf.gate_area_m2 * 1e12,
            power_mw: amp.perf.power_w * 1e3,
            gain,
            gain_err_frac: ((p.gain - gain) / p.gain).max(0.0),
            ugf_hz: amp.perf.ugf_hz.unwrap_or(0.0),
        }
    }
}

/// One row of a sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// The grid point.
    pub point: SweepPoint,
    /// Metrics, or the failure rendered as a string.
    pub outcome: Result<SweepMetrics, String>,
    /// `true` when this point is on the area/power/gain-error Pareto
    /// front of the successful points.
    pub pareto: bool,
}

/// All records of a finished sweep, in point order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per grid point, index order.
    pub records: Vec<SweepRecord>,
}

/// `a` dominates `b` when it is no worse on every objective and strictly
/// better on at least one (all objectives minimised).
fn dominates(a: &SweepMetrics, b: &SweepMetrics) -> bool {
    let le =
        a.area_um2 <= b.area_um2 && a.power_mw <= b.power_mw && a.gain_err_frac <= b.gain_err_frac;
    let lt =
        a.area_um2 < b.area_um2 || a.power_mw < b.power_mw || a.gain_err_frac < b.gain_err_frac;
    le && lt
}

fn mark_pareto(records: &mut [SweepRecord]) {
    let oks: Vec<(usize, SweepMetrics)> = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.outcome.as_ref().ok().map(|m| (i, *m)))
        .collect();
    for (i, m) in &oks {
        let dominated = oks.iter().any(|(j, other)| j != i && dominates(other, m));
        records[*i].pareto = !dominated;
    }
}

impl SweepReport {
    /// Successful records.
    pub fn successes(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records.iter().filter(|r| r.outcome.is_ok())
    }

    /// Records on the Pareto front.
    pub fn pareto_front(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records.iter().filter(|r| r.pareto)
    }

    /// Renders the report as JSON Lines, one record per grid point in
    /// index order. Floats are written with Rust's shortest round-trip
    /// `Display`, so equal runs produce byte-identical output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let p = &r.point;
            let _ = write!(
                out,
                "{{\"index\":{},\"topology\":\"{}\",\"gain_spec\":{},\"ugf_spec_hz\":{},\"cl_f\":{}",
                p.index,
                p.topology_label(),
                Num(p.gain),
                Num(p.ugf_hz),
                Num(p.cl_f),
            );
            match &r.outcome {
                Ok(m) => {
                    let _ = write!(
                        out,
                        ",\"area_um2\":{},\"power_mw\":{},\"gain\":{},\"gain_err_frac\":{},\"ugf_hz\":{},\"pareto\":{}",
                        Num(m.area_um2),
                        Num(m.power_mw),
                        Num(m.gain),
                        Num(m.gain_err_frac),
                        Num(m.ugf_hz),
                        r.pareto,
                    );
                }
                Err(e) => {
                    let _ = write!(out, ",\"error\":\"{}\"", escape_json(e));
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

/// JSON-safe float rendering: Rust `Display` is shortest-round-trip and
/// deterministic, but non-finite values need a textual stand-in.
struct Num(f64);

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "\"{}\"", self.0)
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_core::basic::MirrorTopology;

    fn metrics(area: f64, power: f64, err: f64) -> SweepMetrics {
        SweepMetrics {
            area_um2: area,
            power_mw: power,
            gain: 100.0,
            gain_err_frac: err,
            ugf_hz: 1e6,
        }
    }

    fn record(index: usize, m: Option<SweepMetrics>) -> SweepRecord {
        SweepRecord {
            point: SweepPoint {
                index,
                topology: OpAmpTopology::miller(MirrorTopology::Simple, false),
                gain: 100.0,
                ugf_hz: 1e6,
                cl_f: 1e-11,
            },
            outcome: m.ok_or_else(|| "failed".to_string()),
            pareto: false,
        }
    }

    #[test]
    fn grid_enumeration_is_row_major_and_complete() {
        let plan = SweepPlan::example();
        let pts = plan.points();
        assert_eq!(pts.len(), 144);
        assert_eq!(plan.len(), 144);
        assert!(pts.iter().enumerate().all(|(i, p)| p.index == i));
        // Load is the fastest-varying axis.
        assert_eq!(pts[0].cl_f, 5e-12);
        assert_eq!(pts[1].cl_f, 10e-12);
        assert_eq!(pts[0].gain, pts[1].gain);
    }

    #[test]
    fn pareto_marks_non_dominated_points_only() {
        let mut records = vec![
            record(0, Some(metrics(100.0, 1.0, 0.0))), // dominated by 2
            record(1, Some(metrics(50.0, 2.0, 0.0))),  // front (least area)
            record(2, Some(metrics(90.0, 0.5, 0.0))),  // front (least power)
            record(3, None),                           // failed: never on front
            record(4, Some(metrics(100.0, 1.0, 0.0))), // tie with 0: both dominated by 2
        ];
        mark_pareto(&mut records);
        let flags: Vec<bool> = records.iter().map(|r| r.pareto).collect();
        assert_eq!(flags, vec![false, true, true, false, false]);
    }

    #[test]
    fn jsonl_renders_one_parseable_line_per_record() {
        let mut records = vec![record(0, Some(metrics(100.0, 1.0, 0.25))), record(1, None)];
        mark_pareto(&mut records);
        let report = SweepReport { records };
        let text = report.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"area_um2\":100"));
        assert!(lines[0].contains("\"pareto\":true"));
        assert!(lines[1].contains("\"error\":\"failed\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
