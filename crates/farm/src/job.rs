//! The typed job model: what a farm can be asked to do ([`Request`]), what
//! it answers ([`Response`]), how it fails ([`FarmError`]), and the
//! content-addressed key that identifies a request for deduplication.

use ape_core::netest::NetlistEstimate;
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_core::ApeError;
use ape_netlist::{Circuit, NodeId, Technology};
use ape_oblx::{InitialPoint, OblxError, SynthesisOptions, SynthesisOutcome};
use std::hash::{Hash, Hasher};

/// A unit of work submitted to a [`Farm`](crate::Farm).
///
/// Every variant is a pure function of the request payload plus the farm's
/// [`Technology`]: submitting the same request twice yields the same
/// response, which is what makes result caching and in-flight deduplication
/// sound (workers reset the per-thread sizing cache before each job).
#[derive(Debug, Clone)]
pub enum Request {
    /// Size a two-stage op-amp with [`OpAmp::design`] (hierarchy levels
    /// 1–3 of the estimator).
    OpAmpDesign {
        /// Topology selections.
        topology: OpAmpTopology,
        /// Performance specification.
        spec: OpAmpSpec,
    },
    /// Estimate an arbitrary netlist with
    /// [`estimate_netlist`](ape_core::netest::estimate_netlist).
    NetlistEstimate {
        /// The circuit to analyse (boxed: circuits are large relative to
        /// the other variants).
        circuit: Box<Circuit>,
        /// Node whose AC response is observed.
        output: NodeId,
    },
    /// Run the full annealing synthesis with
    /// [`synthesize`](ape_oblx::synthesize).
    Synthesize {
        /// Topology selections.
        topology: OpAmpTopology,
        /// Performance specification.
        spec: OpAmpSpec,
        /// Search starting point.
        init: InitialPoint,
        /// Annealing options.
        opts: SynthesisOptions,
    },
    /// An arbitrary user job. The dedup key covers only `label` and
    /// `nonce` — callers must pick a distinct `nonce` per distinct
    /// computation (or a fresh one per call to opt out of caching).
    Custom {
        /// Human-readable label (also part of the dedup key).
        label: &'static str,
        /// Disambiguates distinct custom computations under one label.
        nonce: u64,
        /// The computation; receives the farm's technology.
        run: fn(&Technology) -> Result<Response, FarmError>,
    },
}

/// The result payload of a completed [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// From [`Request::OpAmpDesign`].
    OpAmp(Box<OpAmp>),
    /// From [`Request::NetlistEstimate`].
    Netlist(Box<NetlistEstimate>),
    /// From [`Request::Synthesize`].
    Synthesis(Box<SynthesisOutcome>),
    /// Free-form payload for [`Request::Custom`] jobs.
    Text(String),
}

impl Response {
    /// The op-amp payload, if this is an [`Response::OpAmp`].
    pub fn as_opamp(&self) -> Option<&OpAmp> {
        match self {
            Response::OpAmp(a) => Some(a),
            _ => None,
        }
    }

    /// The netlist estimate, if this is a [`Response::Netlist`].
    pub fn as_netlist(&self) -> Option<&NetlistEstimate> {
        match self {
            Response::Netlist(n) => Some(n),
            _ => None,
        }
    }

    /// The synthesis outcome, if this is a [`Response::Synthesis`].
    pub fn as_synthesis(&self) -> Option<&SynthesisOutcome> {
        match self {
            Response::Synthesis(s) => Some(s),
            _ => None,
        }
    }
}

/// How a farm job can fail.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FarmError {
    /// The estimator rejected or could not satisfy the request.
    Ape(ApeError),
    /// The synthesis engine failed.
    Oblx(OblxError),
    /// The job was cancelled (explicitly or by its deadline) before it
    /// produced a result.
    Cancelled,
    /// The job panicked; the worker survived and the panic payload (when
    /// it was a string) is preserved.
    Panicked(String),
    /// Fail-fast submission found the queue at capacity.
    QueueFull,
    /// The farm was shutting down when the job was submitted or queued.
    ShuttingDown,
    /// The farm lost track of the job: its worker died outside the panic
    /// net, or a result was awaited for a key no submission ever claimed.
    /// Surfaced as an error instead of hanging or panicking the waiter.
    WorkerLost(String),
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Ape(e) => write!(f, "estimator error: {e}"),
            FarmError::Oblx(e) => write!(f, "synthesis error: {e}"),
            FarmError::Cancelled => write!(f, "job cancelled"),
            FarmError::Panicked(m) => write!(f, "job panicked: {m}"),
            FarmError::QueueFull => write!(f, "queue full"),
            FarmError::ShuttingDown => write!(f, "farm shutting down"),
            FarmError::WorkerLost(m) => write!(f, "farm lost the job: {m}"),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<ApeError> for FarmError {
    fn from(e: ApeError) -> Self {
        match e {
            ApeError::Cancelled => FarmError::Cancelled,
            other => FarmError::Ape(other),
        }
    }
}

impl From<OblxError> for FarmError {
    fn from(e: OblxError) -> Self {
        match e {
            OblxError::Cancelled => FarmError::Cancelled,
            other => FarmError::Oblx(other),
        }
    }
}

fn hash_f64<H: Hasher>(h: &mut H, v: f64) {
    v.to_bits().hash(h);
}

fn hash_topology<H: Hasher>(h: &mut H, t: &OpAmpTopology) {
    t.current_source.hash(h);
    t.buffer.hash(h);
    t.compensated.hash(h);
}

fn hash_spec<H: Hasher>(h: &mut H, s: &OpAmpSpec) {
    hash_f64(h, s.gain);
    hash_f64(h, s.ugf_hz);
    hash_f64(h, s.area_max_m2);
    hash_f64(h, s.ibias);
    match s.zout_ohm {
        Some(z) => {
            1u8.hash(h);
            hash_f64(h, z);
        }
        None => 0u8.hash(h),
    }
    hash_f64(h, s.cl);
}

/// Content-addressed identity of `(technology, request)`.
///
/// Two requests with the same key are treated as the same computation by
/// the farm's result cache. The hash is stable within a process (it uses
/// `DefaultHasher` with a fixed key and bit-exact float hashing) but is
/// not a persistent format. Circuits are hashed through their canonical
/// SPICE deck; `InitialPoint` and `SynthesisOptions` are hashed through
/// their `Debug` rendering, which is exact for this crate's field types.
pub fn canonical_key(tech: &Technology, req: &Request) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    tech.fingerprint().hash(&mut h);
    match req {
        Request::OpAmpDesign { topology, spec } => {
            0u8.hash(&mut h);
            hash_topology(&mut h, topology);
            hash_spec(&mut h, spec);
        }
        Request::NetlistEstimate { circuit, output } => {
            1u8.hash(&mut h);
            circuit.to_spice_deck(tech).hash(&mut h);
            output.hash(&mut h);
        }
        Request::Synthesize {
            topology,
            spec,
            init,
            opts,
        } => {
            2u8.hash(&mut h);
            hash_topology(&mut h, topology);
            hash_spec(&mut h, spec);
            format!("{init:?}").hash(&mut h);
            format!("{opts:?}").hash(&mut h);
        }
        Request::Custom { label, nonce, .. } => {
            3u8.hash(&mut h);
            label.hash(&mut h);
            nonce.hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_core::basic::MirrorTopology;

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn identical_requests_share_a_key() {
        let tech = Technology::default_1p2um();
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let a = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        let b = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        assert_eq!(canonical_key(&tech, &a), canonical_key(&tech, &b));
    }

    #[test]
    fn spec_and_topology_perturbations_change_the_key() {
        let tech = Technology::default_1p2um();
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let base = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        let k0 = canonical_key(&tech, &base);

        let mut s = spec();
        s.gain += 1e-9;
        let k1 = canonical_key(
            &tech,
            &Request::OpAmpDesign {
                topology: t,
                spec: s,
            },
        );
        assert_ne!(k0, k1, "bit-level spec change must re-key");

        let k2 = canonical_key(
            &tech,
            &Request::OpAmpDesign {
                topology: OpAmpTopology::miller(MirrorTopology::Wilson, false),
                spec: spec(),
            },
        );
        assert_ne!(k0, k2);
    }

    #[test]
    fn technology_is_part_of_the_key() {
        let tech = Technology::default_1p2um();
        let mut tech2 = tech.clone();
        tech2.vdd += 0.1;
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let req = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        assert_ne!(canonical_key(&tech, &req), canonical_key(&tech2, &req));
    }

    #[test]
    fn cancelled_errors_fold_into_the_cancelled_variant() {
        assert_eq!(FarmError::from(ApeError::Cancelled), FarmError::Cancelled);
        assert_eq!(FarmError::from(OblxError::Cancelled), FarmError::Cancelled);
    }
}
