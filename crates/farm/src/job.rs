//! The typed job model: what a farm can be asked to do ([`Request`]), what
//! it answers ([`Response`]), how it fails ([`FarmError`]), and the
//! content-addressed key that identifies a request for deduplication.

use ape_core::netest::NetlistEstimate;
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_core::ApeError;
use ape_mos::fingerprint::Fingerprint;
use ape_netlist::{Circuit, NodeId, Technology};
use ape_oblx::{InitialPoint, OblxError, SynthesisOptions, SynthesisOutcome};

/// A unit of work submitted to a [`Farm`](crate::Farm).
///
/// Every variant is a pure function of the request payload plus the farm's
/// [`Technology`]: submitting the same request twice yields the same
/// response, which is what makes result caching and in-flight deduplication
/// sound. The estimation graph's bit-exact memo keys make every estimate a
/// pure function of its inputs, so results are identical whether a worker's
/// graph is cold or warm.
#[derive(Debug, Clone)]
pub enum Request {
    /// Size a two-stage op-amp with [`OpAmp::design`] (hierarchy levels
    /// 1–3 of the estimator).
    OpAmpDesign {
        /// Topology selections.
        topology: OpAmpTopology,
        /// Performance specification.
        spec: OpAmpSpec,
    },
    /// Estimate an arbitrary netlist with
    /// [`estimate_netlist`](ape_core::netest::estimate_netlist).
    NetlistEstimate {
        /// The circuit to analyse (boxed: circuits are large relative to
        /// the other variants).
        circuit: Box<Circuit>,
        /// Node whose AC response is observed.
        output: NodeId,
    },
    /// Run the full annealing synthesis with
    /// [`synthesize`](ape_oblx::synthesize).
    Synthesize {
        /// Topology selections.
        topology: OpAmpTopology,
        /// Performance specification.
        spec: OpAmpSpec,
        /// Search starting point.
        init: InitialPoint,
        /// Annealing options.
        opts: SynthesisOptions,
    },
    /// An arbitrary user job. The dedup key covers only `label` and
    /// `nonce` — callers must pick a distinct `nonce` per distinct
    /// computation (or a fresh one per call to opt out of caching).
    Custom {
        /// Human-readable label (also part of the dedup key).
        label: &'static str,
        /// Disambiguates distinct custom computations under one label.
        nonce: u64,
        /// The computation; receives the farm's technology.
        run: fn(&Technology) -> Result<Response, FarmError>,
    },
}

/// The result payload of a completed [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// From [`Request::OpAmpDesign`].
    OpAmp(Box<OpAmp>),
    /// From [`Request::NetlistEstimate`].
    Netlist(Box<NetlistEstimate>),
    /// From [`Request::Synthesize`].
    Synthesis(Box<SynthesisOutcome>),
    /// Free-form payload for [`Request::Custom`] jobs.
    Text(String),
}

impl Response {
    /// The op-amp payload, if this is an [`Response::OpAmp`].
    pub fn as_opamp(&self) -> Option<&OpAmp> {
        match self {
            Response::OpAmp(a) => Some(a),
            _ => None,
        }
    }

    /// The netlist estimate, if this is a [`Response::Netlist`].
    pub fn as_netlist(&self) -> Option<&NetlistEstimate> {
        match self {
            Response::Netlist(n) => Some(n),
            _ => None,
        }
    }

    /// The synthesis outcome, if this is a [`Response::Synthesis`].
    pub fn as_synthesis(&self) -> Option<&SynthesisOutcome> {
        match self {
            Response::Synthesis(s) => Some(s),
            _ => None,
        }
    }
}

/// How a farm job can fail.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FarmError {
    /// The estimator rejected or could not satisfy the request.
    Ape(ApeError),
    /// The synthesis engine failed.
    Oblx(OblxError),
    /// The job was cancelled (explicitly or by its deadline) before it
    /// produced a result.
    Cancelled,
    /// The job panicked; the worker survived and the panic payload (when
    /// it was a string) is preserved.
    Panicked(String),
    /// Fail-fast submission found the queue at capacity.
    QueueFull,
    /// The farm was shutting down when the job was submitted or queued.
    ShuttingDown,
    /// The farm lost track of the job: its worker died outside the panic
    /// net, or a result was awaited for a key no submission ever claimed.
    /// Surfaced as an error instead of hanging or panicking the waiter.
    WorkerLost(String),
    /// A submission referenced a technology fingerprint that was never
    /// registered with [`Farm::register_technology`](crate::Farm::register_technology).
    /// The job is rejected before it touches the queue or the result cache.
    UnknownTechnology(u64),
    /// A submission referenced a calibration fingerprint that was never
    /// registered with [`Farm::register_calibration`](crate::Farm::register_calibration).
    /// The job is rejected before it touches the queue or the result cache.
    UnknownCalibration(u64),
    /// A submission paired a calibration with a technology other than the
    /// one the table was fitted for. Applying it would silently correct
    /// with the wrong anchors, so the job is rejected up front.
    CalibrationMismatch {
        /// The selected technology's fingerprint.
        expected: u64,
        /// The technology fingerprint the calibration table carries.
        got: u64,
    },
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Ape(e) => write!(f, "estimator error: {e}"),
            FarmError::Oblx(e) => write!(f, "synthesis error: {e}"),
            FarmError::Cancelled => write!(f, "job cancelled"),
            FarmError::Panicked(m) => write!(f, "job panicked: {m}"),
            FarmError::QueueFull => write!(f, "queue full"),
            FarmError::ShuttingDown => write!(f, "farm shutting down"),
            FarmError::WorkerLost(m) => write!(f, "farm lost the job: {m}"),
            FarmError::UnknownTechnology(fp) => {
                write!(f, "unknown technology fingerprint {fp:#018x}")
            }
            FarmError::UnknownCalibration(fp) => {
                write!(f, "unknown calibration fingerprint {fp:#018x}")
            }
            FarmError::CalibrationMismatch { expected, got } => write!(
                f,
                "calibration was fitted for technology {got:#018x}, job runs on {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for FarmError {}

impl From<ApeError> for FarmError {
    fn from(e: ApeError) -> Self {
        match e {
            ApeError::Cancelled => FarmError::Cancelled,
            other => FarmError::Ape(other),
        }
    }
}

impl From<OblxError> for FarmError {
    fn from(e: OblxError) -> Self {
        match e {
            OblxError::Cancelled => FarmError::Cancelled,
            other => FarmError::Oblx(other),
        }
    }
}

/// Content-addressed identity of `(technology, request)`.
///
/// Two requests with the same key are treated as the same computation by
/// the farm's result cache. The key is built on the same bit-exact
/// [`Fingerprint`] helper the estimation graph uses for its memo keys
/// (topologies and specs fold through their `fold_fingerprint` methods),
/// so the farm cache and the graph agree on what "the same inputs" means.
/// The hash is stable within a process but is not a persistent format.
/// Circuits are hashed through their canonical SPICE deck; `InitialPoint`
/// and `SynthesisOptions` are hashed through their `Debug` rendering,
/// which is exact for this crate's field types.
pub fn canonical_key(tech: &Technology, req: &Request) -> u64 {
    let fp = Fingerprint::new().u64(tech.fingerprint());
    match req {
        Request::OpAmpDesign { topology, spec } => spec
            .fold_fingerprint(topology.fold_fingerprint(fp.u8(0)))
            .finish(),
        Request::NetlistEstimate { circuit, output } => fp
            .u8(1)
            .str(&circuit.to_spice_deck(tech))
            .u64(usize::from(*output) as u64)
            .finish(),
        Request::Synthesize {
            topology,
            spec,
            init,
            opts,
        } => spec
            .fold_fingerprint(topology.fold_fingerprint(fp.u8(2)))
            .str(&format!("{init:?}"))
            .str(&format!("{opts:?}"))
            .finish(),
        Request::Custom { label, nonce, .. } => fp.u8(3).str(label).u64(*nonce).finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_core::basic::MirrorTopology;

    fn spec() -> OpAmpSpec {
        OpAmpSpec {
            gain: 200.0,
            ugf_hz: 5e6,
            area_max_m2: 5000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        }
    }

    #[test]
    fn identical_requests_share_a_key() {
        let tech = Technology::default_1p2um();
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let a = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        let b = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        assert_eq!(canonical_key(&tech, &a), canonical_key(&tech, &b));
    }

    #[test]
    fn spec_and_topology_perturbations_change_the_key() {
        let tech = Technology::default_1p2um();
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let base = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        let k0 = canonical_key(&tech, &base);

        let mut s = spec();
        s.gain += 1e-9;
        let k1 = canonical_key(
            &tech,
            &Request::OpAmpDesign {
                topology: t,
                spec: s,
            },
        );
        assert_ne!(k0, k1, "bit-level spec change must re-key");

        let k2 = canonical_key(
            &tech,
            &Request::OpAmpDesign {
                topology: OpAmpTopology::miller(MirrorTopology::Wilson, false),
                spec: spec(),
            },
        );
        assert_ne!(k0, k2);
    }

    #[test]
    fn canonical_key_matches_the_shared_fingerprint_helper() {
        // The farm's content-addressed key and the estimation graph's memo
        // keys are built from the same `ape_mos::fingerprint` helper and the
        // same `fold_fingerprint` methods, so a hand-built chain reproduces
        // the farm key exactly.
        let tech = Technology::default_1p2um();
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let req = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        let expect = spec()
            .fold_fingerprint(t.fold_fingerprint(Fingerprint::new().u64(tech.fingerprint()).u8(0)))
            .finish();
        assert_eq!(canonical_key(&tech, &req), expect);
    }

    #[test]
    fn solver_choice_is_part_of_the_key() {
        // `SynthesisOptions` is hashed through its `Debug` rendering, so a
        // job resized by a different search engine must never hit a cached
        // result computed by another one.
        use ape_oblx::{InitialPoint, SolverChoice, SynthesisOptions};
        let tech = Technology::default_1p2um();
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let req_with = |solver: SolverChoice| Request::Synthesize {
            topology: t,
            spec: spec(),
            init: InitialPoint::Blind,
            opts: SynthesisOptions {
                solver,
                ..SynthesisOptions::default()
            },
        };
        let keys: Vec<u64> = [
            SolverChoice::Sa,
            SolverChoice::CmaEs,
            SolverChoice::ParticleSwarm,
            SolverChoice::NewtonPolish,
            SolverChoice::Portfolio,
        ]
        .into_iter()
        .map(|s| canonical_key(&tech, &req_with(s)))
        .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "solvers {i} and {j} collide");
            }
        }
        assert_eq!(
            canonical_key(&tech, &req_with(SolverChoice::Sa)),
            canonical_key(&tech, &req_with(SolverChoice::default())),
        );
    }

    #[test]
    fn technology_is_part_of_the_key() {
        let tech = Technology::default_1p2um();
        let mut tech2 = tech.clone();
        tech2.vdd += 0.1;
        let t = OpAmpTopology::miller(MirrorTopology::Simple, false);
        let req = Request::OpAmpDesign {
            topology: t,
            spec: spec(),
        };
        assert_ne!(canonical_key(&tech, &req), canonical_key(&tech2, &req));
    }

    #[test]
    fn cancelled_errors_fold_into_the_cancelled_variant() {
        assert_eq!(FarmError::from(ApeError::Cancelled), FarmError::Cancelled);
        assert_eq!(FarmError::from(OblxError::Cancelled), FarmError::Cancelled);
    }
}
