//! A bounded multi-producer/multi-consumer queue with blocking and
//! fail-fast submission, built on `Mutex` + `Condvar` only (the workspace
//! builds offline, so no crossbeam).
//!
//! Backpressure is the point: when estimation jobs arrive faster than the
//! workers drain them, producers either block ([`BoundedQueue::push`]) or
//! get an immediate [`TryPushError::Full`] ([`BoundedQueue::try_push`])
//! instead of growing an unbounded backlog.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a fail-fast submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushError {
    /// The queue is at capacity; retry later or use a blocking push.
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC FIFO queue. All methods take `&self`; share it behind an
/// `Arc` between producers and consumers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy by nature; for gauges and tests).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there is room, then enqueues `item`. Returns
    /// `Err(item)` (handing the item back) when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                ape_probe::gauge("ape.farm.queue.depth", st.items.len() as f64);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues `item` without blocking, failing fast when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), (T, TryPushError)> {
        let mut st = self.lock();
        if st.closed {
            return Err((item, TryPushError::Closed));
        }
        if st.items.len() >= self.capacity {
            ape_probe::counter("ape.farm.queue.rejected", 1);
            return Err((item, TryPushError::Full));
        }
        st.items.push_back(item);
        ape_probe::gauge("ape.farm.queue.depth", st.items.len() as f64);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// once the queue is closed *and* drained — the consumer's signal to
    /// exit its loop.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                ape_probe::gauge("ape.farm.queue.depth", st.items.len() as f64);
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: producers fail from now on, consumers drain the
    /// backlog and then receive `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, TryPushError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.try_push(3), Err((3, TryPushError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_room() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.push(1).is_ok())
        };
        // Give the producer time to block on the full queue, then drain.
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn consumers_wake_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop())
        };
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(4));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..25u64 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 100);
        all.dedup();
        assert_eq!(all.len(), 100, "no item delivered twice");
    }
}
