//! `ape-farm`: a concurrent batch-estimation and design-space-sweep engine
//! for the APE analog performance estimator.
//!
//! The estimator itself ([`ape_core`]) answers one question — "what does
//! this sized circuit do?" — in microseconds to milliseconds. Synthesis
//! front-ends want to ask that question thousands of times: topology
//! races, specification sweeps, seeding experiments. This crate turns the
//! single-shot estimator into a throughput engine:
//!
//! * a typed job model ([`Request`]/[`Response`]) covering op-amp design,
//!   netlist estimation, and full annealing synthesis;
//! * a bounded MPMC work queue ([`queue::BoundedQueue`]) with blocking
//!   *and* fail-fast submission, so producers feel backpressure instead of
//!   growing an unbounded backlog;
//! * a fixed worker pool ([`Farm`]) with per-job deadlines, cooperative
//!   cancellation (via [`ape_core::cancel`]), and panic isolation — a
//!   panicking job fails that job, not the farm;
//! * a content-addressed, single-flight result cache
//!   ([`cache::ResultCache`]): identical requests are computed once,
//!   whether they collide in flight or arrive after completion;
//! * a sweep driver ([`SweepPlan`]) that expands a parameter grid into
//!   jobs, reduces the results to an area/power/gain-error Pareto front,
//!   and streams the lot as deterministic JSON Lines.
//!
//! Determinism is a design constraint, not an accident: sweeps produce
//! byte-identical output whatever the worker count, because every job is
//! executed as a pure function of `(technology, request)` — the estimation
//! graph's bit-exact memo keys make a warm worker return exactly what a
//! cold one would (see [`FarmConfig::isolate_solver_cache`] for the one
//! cache that still resets per job) — and results are collected in grid
//! order.
//!
//! Everything is built on `std` only — no external dependencies — and the
//! whole stack is instrumented with [`ape_probe`] spans, counters, and
//! gauges (`farm.*` names).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod pool;
pub mod queue;
pub mod sweep;

pub use cache::{Claim, ResultCache};
pub use job::{canonical_key, FarmError, Request, Response};
pub use pool::{Farm, FarmConfig, FarmStats, JobHandle, SubmitOptions};
pub use queue::{BoundedQueue, TryPushError};
pub use sweep::{SweepMetrics, SweepPlan, SweepPoint, SweepRecord, SweepReport};
