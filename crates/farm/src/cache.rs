//! Content-addressed result cache with single-flight deduplication.
//!
//! A request's [`canonical_key`](crate::job::canonical_key) identifies the
//! computation. The first submitter of a key becomes its *owner* and runs
//! the job; every later submitter of the same key — whether the job is
//! still in flight or already finished — shares the owner's result without
//! re-running anything. Errors are **not sticky**: a key whose last run
//! failed is re-claimed by the next submitter, so a transient
//! `QueueFull`/`ShuttingDown` outcome doesn't poison the cache.

use crate::job::{FarmError, Response};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

enum Entry {
    /// Claimed; the owner is computing. Waiters sleep on the condvar.
    InFlight,
    /// Finished. `Ok` results are served forever; `Err` results are served
    /// to the waiters of that flight and then reclaimed.
    Done(Result<Response, FarmError>),
}

/// What [`ResultCache::claim`] decided about a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The caller owns the key and must run the job, then
    /// [`publish`](ResultCache::publish) — even on failure, or waiters
    /// sharing the key will sleep forever.
    Owner,
    /// Someone else owns (or already finished) the key;
    /// [`wait`](ResultCache::wait) returns the shared result.
    Shared,
}

/// Single-flight, content-addressed cache of job results.
pub struct ResultCache {
    entries: Mutex<HashMap<u64, Entry>>,
    done: Condvar,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache {
            entries: Mutex::new(HashMap::new()),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of keys resident (in-flight + completed).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no key is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims `key`. [`Claim::Owner`] means the caller must compute and
    /// [`publish`](Self::publish); [`Claim::Shared`] means the result is
    /// (or will be) available via [`wait`](Self::wait).
    pub fn claim(&self, key: u64) -> Claim {
        let mut map = self.lock();
        match map.get(&key) {
            None => {
                map.insert(key, Entry::InFlight);
                Claim::Owner
            }
            Some(Entry::InFlight) => {
                ape_probe::counter("ape.farm.cache.dedup", 1);
                Claim::Shared
            }
            Some(Entry::Done(Ok(_))) => {
                ape_probe::counter("ape.farm.cache.hit", 1);
                Claim::Shared
            }
            Some(Entry::Done(Err(_))) => {
                // Failed flights are not cached: reclaim and retry.
                ape_probe::counter("ape.farm.cache.retry", 1);
                map.insert(key, Entry::InFlight);
                Claim::Owner
            }
        }
    }

    /// Publishes the result of a claimed flight and wakes every waiter.
    pub fn publish(&self, key: u64, result: Result<Response, FarmError>) {
        let mut map = self.lock();
        map.insert(key, Entry::Done(result));
        drop(map);
        self.done.notify_all();
    }

    /// Blocks until `key` has a published result and returns a clone of it.
    ///
    /// Waiting on a key that was never claimed is a caller bug; it yields
    /// [`FarmError::WorkerLost`] instead of sleeping forever or panicking.
    pub fn wait(&self, key: u64) -> Result<Response, FarmError> {
        let mut map = self.lock();
        loop {
            match map.get(&key) {
                Some(Entry::Done(result)) => return result.clone(),
                Some(Entry::InFlight) => {
                    map = self.done.wait(map).unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    ape_probe::counter("ape.farm.cache.unclaimed_wait", 1);
                    return Err(FarmError::WorkerLost(format!(
                        "wait on key {key:#x} that was never claimed"
                    )));
                }
            }
        }
    }

    /// Non-blocking peek: the published result, if any.
    pub fn peek(&self, key: u64) -> Option<Result<Response, FarmError>> {
        match self.lock().get(&key) {
            Some(Entry::Done(result)) => Some(result.clone()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn first_claim_owns_then_shares() {
        let c = ResultCache::new();
        assert_eq!(c.claim(7), Claim::Owner);
        assert_eq!(c.claim(7), Claim::Shared, "in-flight dedup");
        c.publish(7, Ok(Response::Text("done".into())));
        assert_eq!(c.claim(7), Claim::Shared, "completed hit");
        match c.wait(7) {
            Ok(Response::Text(s)) => assert_eq!(s, "done"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_are_not_sticky() {
        let c = ResultCache::new();
        assert_eq!(c.claim(1), Claim::Owner);
        c.publish(1, Err(FarmError::QueueFull));
        // The failure is delivered to this flight's waiters…
        assert_eq!(c.wait(1).unwrap_err(), FarmError::QueueFull);
        // …but the next claimant re-owns the key and can succeed.
        assert_eq!(c.claim(1), Claim::Owner);
        c.publish(1, Ok(Response::Text("ok".into())));
        assert!(c.wait(1).is_ok());
    }

    #[test]
    fn waiting_on_unclaimed_key_is_an_error() {
        let c = ResultCache::new();
        assert!(matches!(c.wait(42), Err(FarmError::WorkerLost(_))));
    }

    #[test]
    fn waiters_block_until_publish() {
        let c = Arc::new(ResultCache::new());
        assert_eq!(c.claim(3), Claim::Owner);
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || c.wait(3))
            })
            .collect();
        thread::sleep(std::time::Duration::from_millis(20));
        c.publish(3, Ok(Response::Text("late".into())));
        for w in waiters {
            assert!(w.join().unwrap().is_ok());
        }
    }
}
