// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Worker-count independence: the same sweep plan must produce
//! byte-identical JSONL whether one worker or eight execute it. This holds
//! because every job runs as a pure function of `(technology, request)` —
//! the estimation graph's bit-exact memo keys make warm workers answer
//! exactly as cold ones would — and the report collects results in grid
//! order.

use ape_core::basic::MirrorTopology;
use ape_core::opamp::OpAmpTopology;
use ape_farm::{Farm, FarmConfig, SweepPlan};
use ape_netlist::Technology;

fn small_plan() -> SweepPlan {
    SweepPlan {
        gains: vec![100.0, 400.0],
        ugfs_hz: vec![1e6, 5e6],
        loads_f: vec![5e-12, 20e-12],
        topologies: vec![
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            OpAmpTopology::miller(MirrorTopology::Wilson, false),
        ],
        ibias_a: 10e-6,
        area_max_m2: 20_000e-12,
        zout_ohm: None,
    }
}

fn run_with(workers: usize) -> String {
    let farm = Farm::new(
        Technology::default_1p2um(),
        FarmConfig::with_workers(workers),
    );
    small_plan().run(&farm).to_jsonl()
}

#[test]
fn one_and_eight_workers_emit_identical_jsonl() {
    let serial = run_with(1);
    let parallel = run_with(8);
    assert_eq!(
        serial.lines().count(),
        small_plan().len(),
        "one JSONL line per grid point"
    );
    assert_eq!(serial, parallel, "sweep output depends on the worker count");
    // The sweep must actually produce designs, not a wall of errors.
    assert!(
        serial
            .lines()
            .filter(|l| l.contains("\"area_um2\""))
            .count()
            >= small_plan().len() / 2,
        "most grid points should size successfully:\n{serial}"
    );
    assert!(
        serial.contains("\"pareto\":true"),
        "a non-empty sweep has a non-empty Pareto front"
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    assert_eq!(run_with(2), run_with(2));
}
