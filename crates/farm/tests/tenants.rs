// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Multi-tenant technologies, per-submission options, and the pool-wide
//! shared estimation graph.

use ape_core::basic::MirrorTopology;
use ape_core::cancel::CancelToken;
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_farm::{Farm, FarmConfig, FarmError, Request, SubmitOptions};
use ape_netlist::Technology;
use std::time::Duration;

fn spec(gain: f64) -> OpAmpSpec {
    OpAmpSpec {
        gain,
        ugf_hz: 5e6,
        area_max_m2: 20_000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    }
}

fn design(gain: f64) -> Request {
    Request::OpAmpDesign {
        topology: OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec: spec(gain),
    }
}

#[test]
fn tenant_technology_selects_the_registered_card() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(2));
    let other = Technology::default_0p5um();
    let fp = farm.register_technology(other.clone());
    assert_eq!(fp, other.fingerprint());
    assert!(farm.technology_by_fingerprint(fp).is_some());
    // The default technology is registered at construction too.
    assert!(farm
        .technology_by_fingerprint(farm.technology().fingerprint())
        .is_some());

    let h = farm.submit_opts(
        design(200.0),
        SubmitOptions {
            technology: Some(fp),
            ..SubmitOptions::default()
        },
    );
    let tenant_amp = h.wait().expect("tenant design succeeds");
    let default_amp = farm.submit(design(200.0)).wait().expect("default design");

    // Same request under two technologies: distinct results, each
    // bit-identical to a direct design against its own card.
    let direct = OpAmp::design(
        &other,
        OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec(200.0),
    )
    .expect("direct design");
    assert_eq!(
        format!("{:?}", tenant_amp.as_opamp().unwrap()),
        format!("{direct:?}")
    );
    assert_ne!(
        format!("{:?}", tenant_amp.as_opamp().unwrap()),
        format!("{:?}", default_amp.as_opamp().unwrap())
    );
}

#[test]
fn unknown_technology_resolves_immediately_without_touching_the_cache() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    let h = farm.submit_opts(
        design(200.0),
        SubmitOptions {
            technology: Some(0xDEAD_BEEF),
            ..SubmitOptions::default()
        },
    );
    assert!(matches!(
        h.peek(),
        Some(Err(FarmError::UnknownTechnology(0xDEAD_BEEF)))
    ));
    assert!(matches!(
        h.wait(),
        Err(FarmError::UnknownTechnology(0xDEAD_BEEF))
    ));
    assert_eq!(farm.stats().rejected, 1);
    assert_eq!(farm.stats().executed, 0);

    // An honest submission of the same request afterwards succeeds: the
    // rejected one never claimed the key.
    assert!(farm.submit(design(200.0)).wait().is_ok());
}

#[test]
fn caller_owned_token_cancels_the_job() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    let token = CancelToken::new();
    token.cancel();
    let h = farm.submit_opts(
        design(321.5),
        SubmitOptions {
            token: Some(token),
            ..SubmitOptions::default()
        },
    );
    assert!(matches!(h.wait(), Err(FarmError::Cancelled)));
}

#[test]
fn per_submission_deadline_expires_a_stuck_job() {
    fn stuck(_tech: &Technology) -> Result<ape_farm::Response, FarmError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            ape_core::cancel::check_current().map_err(|_| FarmError::Cancelled)?;
            if std::time::Instant::now() > deadline {
                return Ok(ape_farm::Response::Text("never".into()));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    let h = farm.submit_opts(
        Request::Custom {
            label: "deadline-probe",
            nonce: 7,
            run: stuck,
        },
        SubmitOptions {
            deadline: Some(Duration::from_millis(20)),
            ..SubmitOptions::default()
        },
    );
    assert!(matches!(h.wait(), Err(FarmError::Cancelled)));
}

/// The satellite regression: with the shared graph enabled, a pool of
/// workers does NOT each pay the same cold evaluations — a subtree computed
/// once is read through by every other worker, and results stay
/// bit-identical to direct, isolated designs.
#[test]
fn shared_graph_skips_redundant_worker_warmup() {
    let config = FarmConfig {
        shared_graph: true,
        // Reset local graphs per job so *every* job leans on the shared
        // store — the harshest setting for the read-through path.
        isolate_sizing_cache: true,
        ..FarmConfig::with_workers(4)
    };
    let farm = Farm::new(Technology::default_1p2um(), config);
    let store = farm.shared_memo().expect("shared graph enabled").clone();

    // Distinct specs (no farm-level dedup) over a shared topology: the L1
    // sizing solves and bias subtrees overlap across jobs.
    let gains: Vec<f64> = (0..16).map(|i| 150.0 + 10.0 * f64::from(i)).collect();
    let handles: Vec<_> = gains.iter().map(|&g| farm.submit(design(g))).collect();
    let results: Vec<String> = handles
        .iter()
        .map(|h| {
            format!(
                "{:?}",
                h.wait().expect("design succeeds").as_opamp().unwrap()
            )
        })
        .collect();

    let stats = store.stats();
    assert!(
        stats.hits > 0,
        "workers must share subtrees through the store: {stats:?}"
    );
    assert!(stats.inserts > 0);

    // Bit-identical to direct designs on a cold, isolated thread graph.
    ape_core::graph::reset_thread_graph();
    for (g, farm_result) in gains.iter().zip(&results) {
        let direct = OpAmp::design(
            farm.technology(),
            OpAmpTopology::miller(MirrorTopology::Simple, false),
            spec(*g),
        )
        .expect("direct design");
        assert_eq!(farm_result, &format!("{direct:?}"), "gain {g}");
    }

    assert!(farm.report().contains("shared memo"));
}

#[test]
fn shared_graph_default_off() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    assert!(farm.shared_memo().is_none());
}
