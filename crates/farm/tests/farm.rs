// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! End-to-end behaviour of the farm: real estimator jobs, deduplication,
//! cancellation, panic isolation, and backpressure.

use ape_core::basic::MirrorTopology;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_farm::{Farm, FarmConfig, FarmError, Request, Response};
use ape_netlist::Technology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn spec(gain: f64) -> OpAmpSpec {
    OpAmpSpec {
        gain,
        ugf_hz: 5e6,
        area_max_m2: 20_000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    }
}

fn design(gain: f64) -> Request {
    Request::OpAmpDesign {
        topology: OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec: spec(gain),
    }
}

#[test]
fn opamp_design_end_to_end() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(2));
    let h = farm.submit(design(200.0));
    let resp = h.wait().expect("design succeeds");
    let amp = resp.as_opamp().expect("opamp response");
    assert!(amp.perf.dc_gain.unwrap().abs() >= 150.0);
    let stats = farm.stats();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.executed, 1);
}

static SLOW_RUNS: AtomicUsize = AtomicUsize::new(0);

fn slow_job(_tech: &Technology) -> Result<Response, FarmError> {
    SLOW_RUNS.fetch_add(1, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(100));
    Ok(Response::Text("slow done".into()))
}

#[test]
fn identical_submissions_run_once() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    let req = Request::Custom {
        label: "dedup-probe",
        nonce: 1,
        run: slow_job,
    };
    let handles: Vec<_> = (0..3).map(|_| farm.submit(req.clone())).collect();
    for h in &handles {
        let r = h.wait().expect("shared flight succeeds");
        assert!(matches!(r, Response::Text(ref s) if s == "slow done"));
    }
    // Same key again, after completion: a pure cache hit.
    farm.submit(req).wait().expect("cache hit succeeds");
    assert_eq!(SLOW_RUNS.load(Ordering::SeqCst), 1, "one execution total");
    let stats = farm.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.executed, 1);
    assert_eq!(
        stats.cache_hits + stats.deduped,
        3,
        "three submissions shared the first flight: {stats:?}"
    );
}

fn panicking_job(_tech: &Technology) -> Result<Response, FarmError> {
    panic!("deliberate test panic");
}

#[test]
fn a_panicking_job_fails_alone() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    let bad = farm.submit(Request::Custom {
        label: "panics",
        nonce: 2,
        run: panicking_job,
    });
    match bad.wait() {
        Err(FarmError::Panicked(msg)) => assert!(msg.contains("deliberate test panic")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The worker survived and keeps serving real jobs.
    let good = farm.submit(design(150.0));
    assert!(good.wait().is_ok());
    assert_eq!(farm.stats().panicked, 1);
}

#[test]
fn expired_deadline_cancels_jobs() {
    let cfg = FarmConfig {
        job_timeout: Some(Duration::from_millis(0)),
        ..FarmConfig::with_workers(1)
    };
    let farm = Farm::new(Technology::default_1p2um(), cfg);
    let h = farm.submit(design(300.0));
    assert_eq!(h.wait().unwrap_err(), FarmError::Cancelled);
    assert_eq!(farm.stats().cancelled, 1);
}

#[test]
fn cancel_all_drains_queued_jobs() {
    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    // Occupy the single worker so the design jobs stay queued. Uses its own
    // job fn: sharing `slow_job` would bump SLOW_RUNS concurrently with
    // `identical_submissions_run_once` and flake its exact-count assertion.
    fn blocker_job(_tech: &Technology) -> Result<Response, FarmError> {
        std::thread::sleep(Duration::from_millis(100));
        Ok(Response::Text("blocker done".into()))
    }
    let blocker = farm.submit(Request::Custom {
        label: "blocker",
        nonce: 3,
        run: blocker_job,
    });
    let queued: Vec<_> = (0..4)
        .map(|i| farm.submit(design(100.0 + i as f64)))
        .collect();
    farm.cancel_all();
    for h in queued {
        assert_eq!(h.wait().unwrap_err(), FarmError::Cancelled);
    }
    // The blocker itself had already started; it either finished or was
    // cancelled depending on timing — both are sound. It must terminate.
    let _ = blocker.wait();
}

fn very_slow_job(_tech: &Technology) -> Result<Response, FarmError> {
    std::thread::sleep(Duration::from_millis(300));
    Ok(Response::Text("done".into()))
}

#[test]
fn try_submit_feels_backpressure() {
    let cfg = FarmConfig {
        queue_capacity: 1,
        ..FarmConfig::with_workers(1)
    };
    let farm = Farm::new(Technology::default_1p2um(), cfg);
    // First job: picked up by the worker (sleeps 300 ms).
    let running = farm.submit(Request::Custom {
        label: "bp",
        nonce: 10,
        run: very_slow_job,
    });
    // Give the worker time to dequeue it, then fill the single queue slot.
    std::thread::sleep(Duration::from_millis(50));
    let queued = farm.submit(Request::Custom {
        label: "bp",
        nonce: 11,
        run: very_slow_job,
    });
    // Distinct third request: the queue is full, fail-fast refuses it.
    let rejected = farm.try_submit(Request::Custom {
        label: "bp",
        nonce: 12,
        run: very_slow_job,
    });
    assert_eq!(rejected.wait().unwrap_err(), FarmError::QueueFull);
    assert_eq!(farm.stats().rejected, 1);
    // A duplicate of an in-flight request needs no queue slot, so
    // fail-fast submission shares it even while the queue is full.
    let shared = farm.try_submit(Request::Custom {
        label: "bp",
        nonce: 10,
        run: very_slow_job,
    });
    assert!(shared.wait().is_ok());
    assert!(running.wait().is_ok());
    assert!(queued.wait().is_ok());
    // QueueFull was not sticky: the same request succeeds once room exists.
    let retried = farm.try_submit(Request::Custom {
        label: "bp",
        nonce: 12,
        run: very_slow_job,
    });
    assert!(retried.wait().is_ok());
}

#[test]
fn shutdown_rejects_new_submissions() {
    let mut farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    farm.shutdown();
    let h = farm.submit(design(120.0));
    assert_eq!(h.wait().unwrap_err(), FarmError::ShuttingDown);
}

/// Netlist-estimation jobs exercise the SPICE sparse solver; with
/// `isolate_solver_cache` set (the default) every job starts with a cold
/// symbolic-factorisation cache, so each distinct job re-analyses its
/// pattern — visible as cache misses — and the farm exposes the counters
/// through `solver_cache_report()`.
#[test]
fn netlist_jobs_reset_solver_cache_and_report_it() {
    use ape_netlist::{Circuit, SourceWaveform};

    fn ladder(r: f64) -> Box<Circuit> {
        let mut c = Circuit::new("ladder");
        let mut prev = c.node("n0");
        c.add_vsource("VIN", prev, Circuit::GROUND, 1.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        for k in 1..=9 {
            let next = c.node(&format!("n{k}"));
            c.add_resistor(&format!("R{k}"), prev, next, r).unwrap();
            c.add_capacitor(&format!("C{k}"), next, Circuit::GROUND, 10e-12)
                .unwrap();
            prev = next;
        }
        Box::new(c)
    }

    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(1));
    let (_, misses_before, _) = ape_spice::symbolic_cache_stats();
    for r in [1e3, 2e3] {
        let circuit = ladder(r);
        let output = circuit.find_node("n9").expect("ladder output node");
        let resp = farm
            .submit(Request::NetlistEstimate { circuit, output })
            .wait()
            .expect("netlist estimate succeeds");
        assert!(resp.as_netlist().is_some());
    }
    let (_, misses_after, _) = ape_spice::symbolic_cache_stats();
    assert!(
        misses_after >= misses_before + 2,
        "each isolated job should re-analyse: {misses_before} -> {misses_after}"
    );
    let report = farm.solver_cache_report();
    assert!(
        report.contains("solver symbolic cache"),
        "unexpected report: {report}"
    );
}

/// Regression: a panicking job must not poison the single-flight cache.
/// Its waiters (the owner and every deduplicated submission) all receive
/// `Panicked`, and the *next* submission of the same key re-owns the entry
/// and can succeed — at one worker and at eight.
#[test]
fn panicking_job_does_not_poison_the_cache() {
    for workers in [1usize, 8] {
        let farm = Farm::new(
            Technology::default_1p2um(),
            FarmConfig::with_workers(workers),
        );
        let req = Request::Custom {
            label: "panic-then-recover",
            nonce: 77,
            run: panicking_job,
        };
        let handles: Vec<_> = (0..4).map(|_| farm.submit(req.clone())).collect();
        for h in handles {
            match h.wait() {
                Err(FarmError::Panicked(_)) => {}
                other => panic!("expected Panicked at {workers} workers, got {other:?}"),
            }
        }
        // The failed flight is reclaimed: an honest job under the same key
        // runs and succeeds instead of being served the stale panic.
        fn honest_job(_tech: &Technology) -> Result<Response, FarmError> {
            Ok(Response::Text("recovered".into()))
        }
        let again = farm.submit(Request::Custom {
            label: "panic-then-recover",
            nonce: 77,
            run: honest_job,
        });
        match again.wait() {
            Ok(Response::Text(s)) => assert_eq!(s, "recovered"),
            other => panic!("expected recovery at {workers} workers, got {other:?}"),
        }
        assert!(farm.stats().panicked >= 1);
    }
}
