// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Compile-time guarantees the farm relies on: every job payload and
//! result type crossing a thread boundary is `Clone + Send + Sync +
//! Debug`, and the farm's own handles are shareable. These are static
//! assertions — if a `Rc`/`RefCell` sneaks into a result type, this file
//! stops compiling.

use std::fmt::Debug;

fn assert_job_data<T: Clone + Send + Sync + Debug + 'static>() {}
fn assert_shareable<T: Send + Sync>() {}

#[test]
fn result_types_are_thread_safe_plain_data() {
    // Level 1–3 estimator outputs.
    assert_job_data::<ape_core::Performance>();
    assert_job_data::<ape_core::opamp::OpAmp>();
    assert_job_data::<ape_core::opamp::OpAmpSpec>();
    assert_job_data::<ape_core::opamp::OpAmpTopology>();
    assert_job_data::<ape_core::netest::NetlistEstimate>();
    assert_job_data::<ape_core::ApeError>();
    // Sized-device reports.
    assert_job_data::<ape_mos::sizing::SizedMos>();
    // Synthesis inputs and outcomes.
    assert_job_data::<ape_oblx::SynthesisOutcome>();
    assert_job_data::<ape_oblx::SynthesisOptions>();
    assert_job_data::<ape_oblx::InitialPoint>();
    assert_job_data::<ape_oblx::DesignPoint>();
    assert_job_data::<ape_oblx::AuditReport>();
    assert_job_data::<ape_oblx::OblxError>();
    // Netlist-level payloads.
    assert_job_data::<ape_netlist::Circuit>();
    assert_job_data::<ape_netlist::Technology>();
    // The farm's own job model.
    assert_job_data::<ape_farm::Request>();
    assert_job_data::<ape_farm::Response>();
    assert_job_data::<ape_farm::FarmError>();
    assert_job_data::<ape_farm::FarmStats>();
}

#[test]
fn farm_machinery_is_shareable_across_threads() {
    assert_shareable::<ape_farm::Farm>();
    assert_shareable::<ape_farm::JobHandle>();
    assert_shareable::<ape_farm::ResultCache>();
    assert_shareable::<ape_farm::BoundedQueue<ape_farm::Request>>();
    assert_shareable::<ape_core::cancel::CancelToken>();
}
