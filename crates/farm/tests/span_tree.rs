// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Span-tree well-formedness across the farm boundary: every worker-side
//! `ape.farm.job` span must parent under the span that was open on the
//! submitting thread, and that parent must have been live (started, not
//! yet closed) when the job span started.
//!
//! One `#[test]` only: the probe sink is process-global and this file gets
//! its own test binary, so nothing else can race the install.

use ape_core::basic::MirrorTopology;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_farm::{Farm, FarmConfig, Request};
use ape_netlist::Technology;
use ape_probe::ChromeTraceSink;
use std::sync::Arc;

fn design(gain: f64) -> Request {
    Request::OpAmpDesign {
        topology: OpAmpTopology::miller(MirrorTopology::Simple, false),
        spec: OpAmpSpec {
            gain,
            ugf_hz: 5e6,
            area_max_m2: 20_000e-12,
            ibias: 10e-6,
            zout_ohm: None,
            cl: 10e-12,
        },
    }
}

#[test]
fn worker_job_spans_parent_under_the_submitting_request() {
    let sink = Arc::new(ChromeTraceSink::new());
    ape_probe::install(sink.clone());

    let farm = Farm::new(Technology::default_1p2um(), FarmConfig::with_workers(4));
    let request_span_id;
    {
        let request = ape_probe::span("sweep.request");
        request_span_id = request.id().expect("sink installed, span live");
        // Distinct gains: identical requests would dedupe into one job.
        let handles: Vec<_> = (0..8)
            .map(|i| farm.submit(design(150.0 + 10.0 * i as f64)))
            .collect();
        for h in handles {
            h.wait().expect("design succeeds");
        }
        // The request span closes only after every job finished, so it is
        // live for the whole sweep — exactly the production shape.
    }
    drop(farm);
    ape_probe::uninstall();

    let spans = sink.spans();
    let jobs: Vec<_> = spans.iter().filter(|s| s.name == "ape.farm.job").collect();
    assert_eq!(jobs.len(), 8, "one job span per distinct request");

    let request = spans
        .iter()
        .find(|s| s.name == "sweep.request")
        .expect("request span recorded");
    assert_eq!(request.id, request_span_id);

    for job in &jobs {
        // Every worker span has a parent, and it is the submitting request.
        let pid = job.parent.unwrap_or_else(|| {
            panic!("job span {job:?} floats as a root — parent link lost across the queue")
        });
        assert_eq!(pid, request.id, "job parents under the submitting span");
        // The parent exists in the record set, started before the child,
        // and was still live at the child's start.
        let parent = spans
            .iter()
            .find(|s| s.id == pid)
            .expect("parent record exists");
        assert!(
            parent.start_ns <= job.start_ns,
            "parent started after child: {parent:?} vs {job:?}"
        );
        assert!(
            parent.start_ns + parent.dur_ns >= job.start_ns,
            "parent closed before child started: {parent:?} vs {job:?}"
        );
        // Cross-thread propagation is the whole point: the job ran on a
        // worker thread, not the submitting one.
        assert_ne!(job.tid, request.tid, "job must run on a worker thread");
    }

    // The rendered Chrome trace carries flow arrows for those cross-thread
    // parent links.
    let json = sink.render();
    assert!(json.contains("\"ph\":\"s\""), "flow-start events present");
    assert!(json.contains("\"ph\":\"f\""), "flow-finish events present");
}
