//! Minimal timing harness for the `benches/` binaries.
//!
//! The container builds offline, so the benches use this self-contained
//! measurement loop instead of an external harness: each benchmark runs a
//! warm-up pass, then `samples` timed iterations, and the group prints an
//! aligned min/mean/max table on `finish()`.

use std::hint::black_box;
use std::time::Instant;

/// One named group of benchmarks, printed as a table when finished.
pub struct BenchGroup {
    name: String,
    samples: u32,
    rows: Vec<Vec<String>>,
}

impl BenchGroup {
    /// Creates a group; `samples` is the default timed-iteration count.
    pub fn new(name: &str, samples: u32) -> Self {
        BenchGroup {
            name: name.to_string(),
            samples: samples.max(1),
            rows: Vec::new(),
        }
    }

    /// Runs `f` once for warm-up and `samples` more times under the clock.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        black_box(f());
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_nanos() as u64);
        }
        let min = *times.iter().min().expect("at least one sample");
        let max = *times.iter().max().expect("at least one sample");
        let mean = times.iter().sum::<u64>() / times.len() as u64;
        self.rows.push(vec![
            name.to_string(),
            ape_probe::fmt_nanos(min),
            ape_probe::fmt_nanos(mean),
            ape_probe::fmt_nanos(max),
            format!("{}", self.samples),
        ]);
    }

    /// Prints the group's results table.
    pub fn finish(self) {
        println!("\n== {} ==", self.name);
        println!(
            "{}",
            crate::render_table(&["bench", "min", "mean", "max", "n"], &self.rows)
        );
    }
}
