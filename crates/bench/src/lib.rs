//! Shared harness code for regenerating every table and figure of the APE
//! paper (DATE 1999).
//!
//! The `table1`–`table5` binaries print the tables; this library holds the
//! specification sets and the est-vs-sim row computations so the root
//! integration tests can gate on the same numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod minijson;
pub mod report;
pub mod rows;
pub mod specs;

use std::fmt::Write as _;

/// Renders a simple aligned text table.
///
/// # Example
///
/// ```
/// let s = ape_bench::render_table(
///     &["ckt", "gain"],
///     &[vec!["oa0".into(), "200".into()]],
/// );
/// assert!(s.contains("oa0"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(ncol) {
            let _ = write!(out, "| {:w$} ", c, w = widths[i]);
        }
        out.push_str("|\n");
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let mut sep = String::new();
    for w in &widths {
        let _ = write!(sep, "|{}", "-".repeat(w + 2));
    }
    sep.push_str("|\n");
    out.push_str(&sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a float with 3 significant-ish digits for table cells.
pub fn fmt_val(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 100.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_val(0.0), "0");
        assert_eq!(fmt_val(123.456), "123.5");
        assert_eq!(fmt_val(1.5), "1.50");
        assert_eq!(fmt_val(0.25), "0.250");
        assert!(fmt_val(1e-6).contains('e'));
    }
}
