//! The paper's specification sets.

use ape_core::basic::MirrorTopology;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};

/// One op-amp synthesis task from Table 1.
#[derive(Debug, Clone, Copy)]
pub struct OpAmpTask {
    /// Circuit name (`oa0` … `oa9`).
    pub name: &'static str,
    /// The performance specification.
    pub spec: OpAmpSpec,
    /// The fixed topology selections.
    pub topology: OpAmpTopology,
}

/// The ten operational-amplifier specifications of Table 1.
///
/// Columns taken from the paper: Gain (abs), UGF (MHz), Area (µm²),
/// Ibias (µA), current-source topology, buffer, Zout (kΩ), CL (pF).
pub fn table1_opamps() -> Vec<OpAmpTask> {
    let t = |cs, buf| OpAmpTopology::miller(cs, buf);
    let s =
        |gain: f64, ugf_mhz: f64, area_um2: f64, ibias_ua: f64, z_kohm: Option<f64>| OpAmpSpec {
            gain,
            ugf_hz: ugf_mhz * 1e6,
            area_max_m2: area_um2 * 1e-12,
            ibias: ibias_ua * 1e-6,
            zout_ohm: z_kohm.map(|z| z * 1e3),
            cl: 10e-12,
        };
    use MirrorTopology::{Simple, Wilson};
    vec![
        OpAmpTask {
            name: "oa0",
            spec: s(200.0, 1.3, 5000.0, 1.0, Some(1.0)),
            topology: t(Wilson, true),
        },
        OpAmpTask {
            name: "oa1",
            spec: s(70.0, 3.0, 3000.0, 2.0, Some(1.0)),
            topology: t(Wilson, true),
        },
        OpAmpTask {
            name: "oa2",
            spec: s(100.0, 2.5, 2000.0, 1.5, Some(2.0)),
            topology: t(Wilson, true),
        },
        OpAmpTask {
            name: "oa3",
            spec: s(250.0, 8.0, 1000.0, 1.0, None),
            topology: t(Simple, false),
        },
        OpAmpTask {
            name: "oa4",
            spec: s(150.0, 3.0, 1000.0, 100.0, None),
            topology: t(Simple, false),
        },
        OpAmpTask {
            name: "oa5",
            spec: s(200.0, 8.0, 5000.0, 10.0, None),
            topology: t(Simple, false),
        },
        OpAmpTask {
            name: "oa6",
            spec: s(50.0, 10.0, 200.0, 10.0, None),
            topology: t(Simple, false),
        },
        OpAmpTask {
            name: "oa7",
            spec: s(200.0, 3.0, 6000.0, 1.0, Some(1.0)),
            topology: t(Simple, true),
        },
        OpAmpTask {
            name: "oa8",
            spec: s(100.0, 2.0, 1000.0, 1.0, Some(10.0)),
            topology: t(Simple, true),
        },
        OpAmpTask {
            name: "oa9",
            spec: s(200.0, 5.0, 5000.0, 10.0, Some(10.0)),
            topology: t(Simple, true),
        },
    ]
}

/// The four op-amps of Table 3 (estimation-accuracy study).
///
/// Paper note 1: OpAmp1–3 use the Wilson bias + buffered topology,
/// OpAmp4 the simple mirror without buffer. Specs approximate the sized
/// values reported in the paper's table.
pub fn table3_opamps() -> Vec<OpAmpTask> {
    use MirrorTopology::{Simple, Wilson};
    let t = |cs, buf| OpAmpTopology::miller(cs, buf);
    let s = |gain: f64, ugf_mhz: f64, ibias_ua: f64, z_kohm: Option<f64>| OpAmpSpec {
        gain,
        ugf_hz: ugf_mhz * 1e6,
        area_max_m2: 5000e-12,
        ibias: ibias_ua * 1e-6,
        zout_ohm: z_kohm.map(|z| z * 1e3),
        cl: 10e-12,
    };
    vec![
        OpAmpTask {
            name: "OpAmp1",
            spec: s(206.0, 1.3, 1.0, Some(1.0)),
            topology: t(Wilson, true),
        },
        OpAmpTask {
            name: "OpAmp2",
            spec: s(374.0, 8.0, 2.0, Some(1.0)),
            topology: t(Wilson, true),
        },
        OpAmpTask {
            name: "OpAmp3",
            spec: s(167.0, 12.4, 1.5, Some(2.0)),
            topology: t(Wilson, true),
        },
        OpAmpTask {
            name: "OpAmp4",
            spec: s(514.0, 2.6, 1.0, None),
            topology: t(Simple, false),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_shape() {
        let tasks = table1_opamps();
        assert_eq!(tasks.len(), 10);
        // Wilson rows are oa0..oa2; buffered rows are oa0..2 and oa7..9.
        assert_eq!(
            tasks
                .iter()
                .filter(|t| t.topology.current_source == MirrorTopology::Wilson)
                .count(),
            3
        );
        assert_eq!(tasks.iter().filter(|t| t.topology.buffer).count(), 6);
        // All loads are 10 pF as in the paper.
        assert!(tasks.iter().all(|t| (t.spec.cl - 10e-12).abs() < 1e-18));
        // oa4 carries the 100 µA bias.
        assert!((tasks[4].spec.ibias - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn table3_topologies() {
        let tasks = table3_opamps();
        assert_eq!(tasks.len(), 4);
        assert!(tasks[..3]
            .iter()
            .all(|t| t.topology.current_source == MirrorTopology::Wilson && t.topology.buffer));
        assert!(!tasks[3].topology.buffer);
    }
}
