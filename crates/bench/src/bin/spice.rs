//! Solver-path benchmarks: DC, AC, and transient on the paper's testbench
//! circuits, dense backend vs the sparse pattern-cached path, with the AC
//! sweep additionally fanned out over 1/2/4/8 threads.
//!
//! Prints aligned tables and writes a machine-readable summary to
//! `results/BENCH_spice.json` (analyses per second, solver allocation
//! counters, symbolic-cache statistics).
//!
//! Run with `cargo run --release -p ape-bench --bin spice`; pass `--smoke`
//! for the fast CI variant (fewer samples and frequency points).

use ape_bench::report::{latency_section, BENCH_SCHEMA};
use ape_bench::{fmt_val, render_table};
use ape_core::basic::{GainStage, GainTopology};
use ape_core::module::SallenKeyLowPass;
use ape_core::opamp::OpAmp;
use ape_netlist::{Circuit, Technology};
use ape_spice::{
    ac_sweep_on, ac_sweep_with, alloc_events, dc_operating_point_with, decade_frequencies,
    symbolic_cache_stats, transient, AcOptions, Backend, DcOptions, OperatingPoint, TranOptions,
    Unknowns,
};
use std::fmt::Write as _;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Case {
    name: &'static str,
    ckt: Circuit,
}

fn cases(tech: &Technology) -> Vec<Case> {
    let gain = GainStage::design(tech, GainTopology::CmosActive, -19.0, 120e-6, 1e-12)
        .expect("gain stage designs");
    let opamp_task = &ape_bench::specs::table3_opamps()[3];
    let opamp = OpAmp::design(tech, opamp_task.topology, opamp_task.spec).expect("op-amp designs");
    let lpf = SallenKeyLowPass::design(tech, 1e3, 4, 10e-12).expect("filter designs");
    vec![
        Case {
            name: "gain-stage",
            ckt: gain.testbench(tech).expect("gain testbench"),
        },
        Case {
            name: "opamp-ol",
            ckt: opamp.testbench_open_loop(tech).expect("open-loop tb"),
        },
        Case {
            name: "lpf4",
            ckt: lpf.testbench(tech).expect("filter tb"),
        },
    ]
}

/// Per-analysis latency distributions over every sampled sparse call,
/// pooled across the testbench circuits — the standardized `latency_ns`
/// block of `BENCH_spice.json`.
#[derive(Default)]
struct Latencies {
    dc_sparse: ape_probe::Histogram,
    ac_sparse: ape_probe::Histogram,
    tran_sparse: ape_probe::Histogram,
}

/// Median-of-samples wall time per call, seconds. Every sample also lands
/// in `hist` (when given) so quantiles survive the median reduction.
fn time_it<R>(samples: u32, hist: Option<&ape_probe::Histogram>, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f()); // warm-up
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let secs = t0.elapsed().as_secs_f64();
            if let Some(h) = hist {
                h.record(secs * 1e9);
            }
            secs
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    times[times.len() / 2]
}

fn dc_opts(backend: Backend) -> DcOptions {
    DcOptions {
        backend,
        ..DcOptions::default()
    }
}

struct CaseResult {
    name: &'static str,
    unknowns: usize,
    dc_dense: f64,
    dc_sparse: f64,
    ac_points: usize,
    ac_dense: f64,
    /// Sparse AC wall time per sweep, indexed like [`THREADS`].
    ac_sparse: Vec<f64>,
    /// Sparse AC wall time per sweep on explicit `Executor::new(w)` pools,
    /// indexed like [`THREADS`] — real cross-thread chunking even where
    /// `ac_sweep_with` would clamp to sequential.
    ac_exec: Vec<f64>,
    tran_dense: f64,
    tran_sparse: f64,
    /// Solver allocation events in one steady-state sparse AC sweep.
    ac_allocs: u64,
}

fn run_case(
    tech: &Technology,
    case: &Case,
    samples: u32,
    freq_ppd: usize,
    lat: &Latencies,
) -> CaseResult {
    let ckt = &case.ckt;
    let unknowns = Unknowns::for_circuit(ckt).dim();
    let freqs = decade_frequencies(10.0, 1e9, freq_ppd).unwrap();

    let dc_dense = time_it(samples, None, || {
        dc_operating_point_with(ckt, tech, dc_opts(Backend::Dense)).expect("dense DC")
    });
    let dc_sparse = time_it(samples, Some(&lat.dc_sparse), || {
        dc_operating_point_with(ckt, tech, dc_opts(Backend::Sparse)).expect("sparse DC")
    });

    let op: OperatingPoint =
        dc_operating_point_with(ckt, tech, DcOptions::default()).expect("op for AC");
    let ac = |backend: Backend, threads: usize| {
        ac_sweep_with(ckt, tech, &op, &freqs, AcOptions { threads, backend }).expect("AC sweep")
    };
    let ac_dense = time_it(samples, None, || ac(Backend::Dense, 1));
    let ac_sparse: Vec<f64> = THREADS
        .iter()
        .map(|&t| {
            let hist = (t == 1).then_some(&lat.ac_sparse);
            time_it(samples, hist, || ac(Backend::Sparse, t))
        })
        .collect();
    let ac_exec: Vec<f64> = THREADS
        .iter()
        .map(|&w| {
            let exec = ape_exec::Executor::new(w);
            let opts = AcOptions {
                threads: w,
                backend: Backend::Sparse,
            };
            time_it(samples, None, || {
                ac_sweep_on(&exec, ckt, tech, &op, &freqs, opts).expect("executor AC sweep")
            })
        })
        .collect();
    let before = alloc_events();
    ac(Backend::Sparse, 1);
    let ac_allocs = alloc_events() - before;

    let mut topts = TranOptions::new(2e-7, 20e-6);
    topts.backend = Backend::Dense;
    let tran_dense = time_it(samples, None, || {
        transient(ckt, tech, &op, topts).expect("tran")
    });
    topts.backend = Backend::Sparse;
    let tran_sparse = time_it(samples, Some(&lat.tran_sparse), || {
        transient(ckt, tech, &op, topts).expect("tran")
    });

    CaseResult {
        name: case.name,
        unknowns,
        dc_dense,
        dc_sparse,
        ac_points: freqs.len(),
        ac_dense,
        ac_sparse,
        ac_exec,
        tran_dense,
        tran_sparse,
        ac_allocs,
    }
}

/// Hardware threads available to this run — the ceiling for any observed
/// AC-sweep scaling (on a 1-core runner every multi-thread row reads ≤ 1x).
fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn json(results: &[CaseResult], samples: u32, lat: &Latencies) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"spice\",");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"samples\": {samples},");
    let _ = writeln!(out, "  \"threads\": [1, 2, 4, 8],");
    let _ = writeln!(
        out,
        "  \"detected_parallelism\": {},",
        detected_parallelism()
    );
    out.push_str("  \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"unknowns\": {},", r.unknowns);
        let _ = writeln!(
            out,
            "      \"dc_ops_per_s\": {{\"dense\": {:.3}, \"sparse\": {:.3}}},",
            1.0 / r.dc_dense,
            1.0 / r.dc_sparse
        );
        let _ = writeln!(out, "      \"ac_points\": {},", r.ac_points);
        let _ = writeln!(
            out,
            "      \"ac_sweeps_per_s\": {{\"dense\": {:.3}, \"sparse\": [{}]}},",
            1.0 / r.ac_dense,
            r.ac_sparse
                .iter()
                .map(|t| format!("{:.3}", 1.0 / t))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "      \"ac_speedup_sparse_vs_dense\": {:.3},",
            r.ac_dense / r.ac_sparse[0]
        );
        let _ = writeln!(
            out,
            "      \"tran_runs_per_s\": {{\"dense\": {:.3}, \"sparse\": {:.3}}},",
            1.0 / r.tran_dense,
            1.0 / r.tran_sparse
        );
        let _ = writeln!(out, "      \"ac_sweep_alloc_events\": {}", r.ac_allocs);
        let _ = write!(
            out,
            "    }}{}",
            if i + 1 < results.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("  ],\n");
    // Worker-count scaling on explicit executors — the section `ape-bench
    // report` gates for monotone throughput (auto-skipped when
    // detected_parallelism is 1, where extra workers only add overhead).
    out.push_str("  \"executor\": {\n");
    let _ = writeln!(out, "    \"workers\": [1, 2, 4, 8],");
    out.push_str("    \"circuits\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "      {{\"name\": \"{}\", \"ac_sweeps_per_s\": [{}]}}{}",
            r.name,
            r.ac_exec
                .iter()
                .map(|t| format!("{:.3}", 1.0 / t))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < results.len() { ",\n" } else { "\n" }
        );
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    let (hits, misses, repivots) = symbolic_cache_stats();
    let _ = writeln!(
        out,
        "  \"symbolic_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"repivots\": {repivots}}},"
    );
    let _ = writeln!(
        out,
        "  {}",
        latency_section(&[
            ("dc_sparse", &lat.dc_sparse.snapshot()),
            ("ac_sparse_1t", &lat.ac_sparse.snapshot()),
            ("tran_sparse", &lat.tran_sparse.snapshot()),
        ])
    );
    out.push_str("}\n");
    out
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (samples, freq_ppd) = if smoke { (1, 4) } else { (5, 20) };
    let tech = Technology::default_1p2um();

    let lat = Latencies::default();
    let mut results = Vec::new();
    for case in cases(&tech) {
        results.push(run_case(&tech, &case, samples, freq_ppd, &lat));
    }

    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.name.to_string(),
            r.unknowns.to_string(),
            fmt_val(1.0 / r.dc_dense),
            fmt_val(1.0 / r.dc_sparse),
            fmt_val(1.0 / r.ac_dense),
            fmt_val(1.0 / r.ac_sparse[0]),
            format!("{:.2}x", r.ac_dense / r.ac_sparse[0]),
            fmt_val(1.0 / r.tran_dense),
            fmt_val(1.0 / r.tran_sparse),
            r.ac_allocs.to_string(),
        ]);
    }
    println!("== Solver throughput: dense vs sparse (per analysis) ==");
    println!(
        "{}",
        render_table(
            &[
                "circuit", "n", "dc-d/s", "dc-s/s", "ac-d/s", "ac-s/s", "ac-spd", "tr-d/s",
                "tr-s/s", "allocs"
            ],
            &rows,
        )
    );

    let mut rows = Vec::new();
    for r in &results {
        let mut row = vec![r.name.to_string()];
        for (k, &t) in THREADS.iter().enumerate() {
            let _ = t;
            row.push(format!("{:.2}x", r.ac_sparse[0] / r.ac_sparse[k]));
        }
        rows.push(row);
    }
    println!("== Sparse AC sweep scaling over threads (vs 1 thread) ==");
    println!(
        "{}",
        render_table(&["circuit", "1t", "2t", "4t", "8t"], &rows)
    );

    let mut rows = Vec::new();
    for r in &results {
        let mut row = vec![r.name.to_string()];
        for k in 0..THREADS.len() {
            row.push(format!("{:.2}x", r.ac_exec[0] / r.ac_exec[k]));
        }
        rows.push(row);
    }
    println!("== Sparse AC sweep scaling on explicit executors (vs 1 worker) ==");
    println!(
        "{}",
        render_table(&["circuit", "1w", "2w", "4w", "8w"], &rows)
    );
    println!(
        "detected parallelism: {} (scaling saturates there)",
        detected_parallelism()
    );
    if detected_parallelism() == 1 {
        eprintln!(
            "spice bench: WARNING: detected parallelism is 1 — thread counts above 1 \
             serialize on one core, so the scaling table measures scheduling overhead, \
             not concurrent speedup"
        );
    }

    let payload = json(&results, samples, &lat);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_spice.json", &payload).expect("write BENCH_spice.json");
    println!("wrote results/BENCH_spice.json");
    ape_probe::finish();
}
