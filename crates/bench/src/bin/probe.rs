//! Telemetry overhead micro-bench: what does a probe call cost?
//!
//! Measures the disabled path (no sink installed: the dispatch helpers
//! must early-return), the [`ape_probe::NullSink`] path (full dispatch
//! into a no-op sink), and the enabled paths that matter on the hot loop —
//! lock-free [`ape_probe::Histogram::record`], striped
//! [`ape_probe::Counter::add`], and a registry-backed
//! [`ape_probe::SummarySink`] `value()` end to end. Writes
//! `results/BENCH_probe.json` (schema 2) with a `latency_ns` block holding
//! the distribution of per-operation cost across timing batches.
//!
//! Run with `cargo run --release -p ape-bench --bin probe`; pass `--smoke`
//! for the fast CI variant.

use ape_bench::report::{latency_section, BENCH_SCHEMA};
use ape_bench::{fmt_val, render_table};
use ape_probe::{Counter, Histogram, NullSink, SummarySink};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Times `batches` batches of `per_batch` calls to `op`, recording each
/// batch's per-op cost (ns) into a histogram. Returns the histogram; its
/// p50 is the steady-state cost estimate, its p99 the scheduler tail.
fn measure(batches: usize, per_batch: usize, mut op: impl FnMut(u64)) -> Histogram {
    let h = Histogram::new();
    // Warm-up batch: first-touch effects (thread-local handle caches, lazy
    // shard maps) belong to setup, not the steady state.
    for i in 0..per_batch {
        op(i as u64);
    }
    for b in 0..batches {
        let t0 = Instant::now();
        for i in 0..per_batch {
            op((b * per_batch + i) as u64);
        }
        h.record(t0.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    h
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (batches, per_batch) = if smoke { (50, 2_000) } else { (400, 10_000) };

    // Disabled path: no sink installed, every helper early-returns.
    ape_probe::uninstall();
    let disabled_counter = measure(batches, per_batch, |_| {
        ape_probe::counter("bench.probe.ctr", 1);
    });
    let disabled_value = measure(batches, per_batch, |i| {
        ape_probe::value("bench.probe.val", i as f64);
    });

    // NullSink path: full dynamic dispatch into a sink that drops the event.
    ape_probe::install(Arc::new(NullSink));
    let null_counter = measure(batches, per_batch, |_| {
        ape_probe::counter("bench.probe.ctr", 1);
    });
    let null_value = measure(batches, per_batch, |i| {
        ape_probe::value("bench.probe.val", i as f64);
    });

    // Enabled paths: the lock-free primitives themselves, then the full
    // registry-backed SummarySink pipeline.
    let hist = Histogram::new();
    let hist_record = measure(batches, per_batch, |i| {
        hist.record(i as f64);
    });
    let ctr = Counter::new();
    let counter_add = measure(batches, per_batch, |_| {
        ctr.add(1);
    });
    let summary = Arc::new(SummarySink::new());
    ape_probe::install(summary.clone());
    let summary_value = measure(batches, per_batch, |i| {
        ape_probe::value("bench.probe.val", i as f64);
    });
    ape_probe::uninstall();
    std::hint::black_box((ctr.total(), hist.snapshot().count));

    let cases: Vec<(&str, &Histogram)> = vec![
        ("disabled.counter", &disabled_counter),
        ("disabled.value", &disabled_value),
        ("nullsink.counter", &null_counter),
        ("nullsink.value", &null_value),
        ("histogram.record", &hist_record),
        ("counter.add", &counter_add),
        ("summarysink.value", &summary_value),
    ];

    println!("== Probe overhead (ns per operation, across {batches} batches) ==");
    let snaps: Vec<(&str, ape_probe::HistogramSnapshot)> =
        cases.iter().map(|(n, h)| (*n, h.snapshot())).collect();
    let rows: Vec<Vec<String>> = snaps
        .iter()
        .map(|(name, s)| {
            vec![
                (*name).to_string(),
                fmt_val(s.p50()),
                fmt_val(s.p90()),
                fmt_val(s.p99()),
                fmt_val(s.mean()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["path", "p50", "p90", "p99", "mean"], &rows)
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"probe\",");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"batches\": {batches},");
    let _ = writeln!(out, "  \"ops_per_batch\": {per_batch},");
    let entries: Vec<(&str, &ape_probe::HistogramSnapshot)> =
        snaps.iter().map(|(n, s)| (*n, s)).collect();
    let _ = writeln!(out, "  {}", latency_section(&entries));
    out.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_probe.json", &out).expect("write BENCH_probe.json");
    println!("wrote results/BENCH_probe.json");

    // Sanity gate: the disabled path must stay cheap relative to the
    // enabled one — if early-return dispatch costs as much as actually
    // recording, the is_enabled() fast path regressed.
    let disabled = snaps[0].1.p50().min(snaps[1].1.p50());
    if smoke && disabled > 1_000.0 {
        eprintln!("FAIL: disabled-path dispatch p50 {disabled:.0} ns exceeds 1000 ns");
        std::process::exit(1);
    }
}
