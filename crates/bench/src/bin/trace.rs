//! JSONL trace validator and Perfetto converter:
//! `cargo run -p ape-bench --bin trace -- <trace.jsonl> [chrome-out.json]`.
//!
//! Validates every line of an `APE_TRACE=jsonl` capture against the event
//! schema (known `type`, required fields, well-formed span links: every
//! referenced parent exists, started no later than its child, and was
//! still live at the child's start), converts the spans to Chrome
//! trace-event JSON with [`ape_probe::render_chrome_trace`], and
//! parse-checks the converted output. Exits non-zero on the first schema
//! violation — this is the CI gate behind the `batch_sweep` trace smoke.

use ape_bench::minijson::{self, Json};
use ape_probe::{render_chrome_trace, SpanRecord};

fn fail(line_no: usize, line: &str, msg: &str) -> ! {
    eprintln!("trace schema violation at line {line_no}: {msg}\n  {line}");
    std::process::exit(1);
}

fn req_u64(doc: &Json, key: &str) -> Option<u64> {
    let v = doc.get(key)?.as_f64()?;
    (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace <trace.jsonl> [chrome-out.json]");
        std::process::exit(2);
    };
    let out_path = args.next();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });

    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut counters = 0usize;
    let mut values = 0usize;
    let mut gauges = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = minijson::parse(line)
            .unwrap_or_else(|e| fail(line_no, line, &format!("not a JSON object: {e}")));
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(line_no, line, "missing string field `type`"));
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(line_no, line, "missing string field `name`"));
        if name.is_empty() {
            fail(line_no, line, "empty event name");
        }
        match kind {
            "span" => {
                let id = req_u64(&doc, "id")
                    .unwrap_or_else(|| fail(line_no, line, "span needs integer `id`"));
                if id == 0 {
                    fail(line_no, line, "span id 0 is reserved");
                }
                let parent = match doc.get("parent") {
                    Some(Json::Null) => None,
                    Some(_) => Some(req_u64(&doc, "parent").unwrap_or_else(|| {
                        fail(line_no, line, "span `parent` must be integer or null")
                    })),
                    None => fail(line_no, line, "span needs `parent` (integer or null)"),
                };
                let record = SpanRecord {
                    name: name.to_string(),
                    id,
                    parent,
                    tid: req_u64(&doc, "tid")
                        .unwrap_or_else(|| fail(line_no, line, "span needs integer `tid`")),
                    depth: req_u64(&doc, "depth")
                        .unwrap_or_else(|| fail(line_no, line, "span needs integer `depth`"))
                        as usize,
                    start_ns: req_u64(&doc, "start_ns")
                        .unwrap_or_else(|| fail(line_no, line, "span needs integer `start_ns`")),
                    dur_ns: req_u64(&doc, "ns")
                        .unwrap_or_else(|| fail(line_no, line, "span needs integer `ns`")),
                };
                spans.push(record);
            }
            "counter" => {
                req_u64(&doc, "delta")
                    .unwrap_or_else(|| fail(line_no, line, "counter needs integer `delta`"));
                counters += 1;
            }
            "value" | "gauge" => {
                // `null` encodes a non-finite sample and is valid.
                match doc.get("value") {
                    Some(Json::Num(_) | Json::Null) => {}
                    _ => fail(line_no, line, "needs numeric or null `value`"),
                }
                if kind == "value" {
                    values += 1;
                } else {
                    gauges += 1;
                }
            }
            other => fail(line_no, line, &format!("unknown event type `{other}`")),
        }
    }

    // Span-link well-formedness over the whole capture: every parent
    // reference resolves, and the parent's lifetime covers the child's
    // start (the "live parent" invariant the span tree promises).
    for s in &spans {
        if let Some(pid) = s.parent {
            let Some(p) = spans.iter().find(|c| c.id == pid) else {
                eprintln!(
                    "trace schema violation: span {} `{}` references missing parent {pid}",
                    s.id, s.name
                );
                std::process::exit(1);
            };
            if p.start_ns > s.start_ns || p.start_ns + p.dur_ns < s.start_ns {
                eprintln!(
                    "trace schema violation: parent {pid} `{}` [{}, {}] not live at child {} start {}",
                    p.name,
                    p.start_ns,
                    p.start_ns + p.dur_ns,
                    s.id,
                    s.start_ns
                );
                std::process::exit(1);
            }
        }
    }

    let chrome = render_chrome_trace(&spans);
    let parsed = minijson::parse(&chrome).unwrap_or_else(|e| {
        eprintln!("chrome trace export does not parse: {e}");
        std::process::exit(1);
    });
    let n_events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| {
            eprintln!("chrome trace export lacks a traceEvents array");
            std::process::exit(1);
        })
        .len();

    if let Some(out) = out_path {
        std::fs::write(&out, &chrome).unwrap_or_else(|e| {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(2);
        });
        println!("wrote {out} ({n_events} trace events; load in ui.perfetto.dev)");
    }
    println!(
        "trace OK: {} spans, {counters} counters, {values} values, {gauges} gauges, {n_events} chrome events",
        spans.len()
    );
}
