//! Regenerates **Table 1**: stand-alone ASTRX/OBLX-style synthesis of the
//! ten op-amp specifications, started blind over decade-wide intervals.
//!
//! Usage: `cargo run --release -p ape-bench --bin table1 [evals]`

use ape_bench::specs::table1_opamps;
use ape_bench::{fmt_val, render_table};
use ape_netlist::Technology;
use ape_oblx::{synthesize, InitialPoint, SynthesisOptions};

fn main() {
    let _trace = ape_probe::install_from_env();
    let evals: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let tech = Technology::default_1p2um();
    println!("Table 1: stand-alone synthesis (blind intervals), {evals} evaluations each\n");
    let mut rows = Vec::new();
    for task in table1_opamps() {
        let opts = SynthesisOptions {
            max_evals: evals,
            seed: 1000 + task.name.as_bytes()[2] as u64,
            ..SynthesisOptions::default()
        };
        let out = synthesize(
            &tech,
            task.topology,
            &task.spec,
            &InitialPoint::Blind,
            &opts,
        )
        .expect("spec is well-formed");
        let (gain, ugf, area, power, comment) = match &out.audit {
            Ok(a) => (
                a.measured.dc_gain.unwrap_or(0.0),
                a.measured.ugf_hz.unwrap_or(0.0) * 1e-6,
                a.measured.gate_area_um2(),
                a.measured.power_mw(),
                if a.meets_spec() {
                    "Meets spec".to_string()
                } else {
                    a.violations.join("; ")
                },
            ),
            Err(f) => (0.0, 0.0, 0.0, 0.0, format!("doesn't work ({}).", f.reason)),
        };
        rows.push(vec![
            task.name.to_string(),
            format!("{:.0}", task.spec.gain),
            format!("{:.1}", task.spec.ugf_hz * 1e-6),
            fmt_val(gain),
            fmt_val(ugf),
            fmt_val(area),
            fmt_val(power),
            format!("{:.2}", out.wall.as_secs_f64()),
            comment,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "ckt",
                "spec gain",
                "spec UGF MHz",
                "gain",
                "UGF MHz",
                "area um2",
                "power mW",
                "CPU s",
                "comments"
            ],
            &rows
        )
    );
    ape_probe::finish();
}
