//! Bench regression differ: `cargo run -p ape-bench --bin report --
//! <baseline.json> <new.json> [--tolerance 0.10]`.
//!
//! Flattens both `BENCH_*.json` files to dotted numeric paths, infers each
//! metric's quality direction from its name (`*_per_s` up is good, `*_ns`
//! down is good, `count`/`schema`/... informational), and prints every
//! path that moved the bad way past the tolerance. Exits non-zero when any
//! regression is flagged, so CI can gate on
//! `report results/BENCH_x.json.baseline results/BENCH_x.json`.

use ape_bench::minijson;
use ape_bench::report::{diff, Delta, Direction};

fn load(path: &str) -> minijson::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    minijson::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

fn arrow(d: &Delta) -> &'static str {
    match d.direction {
        Direction::HigherIsBetter => "higher is better",
        Direction::LowerIsBetter => "lower is better",
        Direction::Informational => "informational",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.10f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().and_then(|v| v.parse().ok());
            tolerance = v.unwrap_or_else(|| {
                eprintln!("error: --tolerance needs a fractional number (e.g. 0.10)");
                std::process::exit(2);
            });
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        eprintln!("usage: report <baseline.json> <new.json> [--tolerance 0.10]");
        std::process::exit(2);
    };

    let old = load(baseline);
    let new = load(candidate);
    let deltas = diff(&old, &new, tolerance);
    if deltas.is_empty() {
        eprintln!("error: no numeric paths shared between {baseline} and {candidate}");
        std::process::exit(2);
    }

    let regressions: Vec<&Delta> = deltas.iter().filter(|d| d.regression).collect();
    let improved = deltas
        .iter()
        .filter(|d| {
            !d.regression
                && match d.direction {
                    Direction::HigherIsBetter => d.rel_change() > tolerance,
                    Direction::LowerIsBetter => d.rel_change() < -tolerance,
                    Direction::Informational => false,
                }
        })
        .count();

    println!(
        "compared {} numeric paths ({baseline} -> {candidate}, tolerance {:.0}%)",
        deltas.len(),
        tolerance * 100.0
    );
    println!(
        "  {improved} improved past the tolerance, {} regressed",
        regressions.len()
    );
    for d in &regressions {
        println!(
            "  REGRESSION {}: {:.3} -> {:.3} ({:+.1}%, {})",
            d.path,
            d.old,
            d.new,
            d.rel_change() * 100.0,
            arrow(d)
        );
    }
    if !regressions.is_empty() {
        std::process::exit(1);
    }
    println!("no regressions");
}
