//! Bench regression differ: `cargo run -p ape-bench --bin report --
//! <baseline.json> <new.json> [--tolerance 0.10]`.
//!
//! Flattens both `BENCH_*.json` files to dotted numeric paths, infers each
//! metric's quality direction from its name (`*_per_s` up is good, `*_ns`
//! down is good, `count`/`schema`/... informational), and prints every
//! path that moved the bad way past the tolerance. Exits non-zero when any
//! regression is flagged, so CI can gate on
//! `report results/BENCH_x.json.baseline results/BENCH_x.json`.
//!
//! Reports carrying an `"executor"` section (worker-count scaling arrays)
//! additionally pass through the monotone-scaling gate: every `*per_s`
//! array under it must not fall below its 1-worker entry by more than the
//! tolerance at any higher worker count. Both the cross-report executor
//! diff and the monotone gate auto-skip with a loud warning when either
//! run recorded `detected_parallelism` of 1 — worker counts serialize on
//! one core there, so the arrays measure scheduling overhead, not scaling.

use ape_bench::minijson::{self, Json};
use ape_bench::report::{diff, Delta, Direction};

fn load(path: &str) -> minijson::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    minijson::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}

/// The hardware parallelism the run recorded, defaulting to 1 for bench
/// files that don't carry the field (they have no scaling sections).
fn detected_parallelism(doc: &Json) -> f64 {
    doc.get("detected_parallelism")
        .and_then(Json::as_f64)
        .unwrap_or(1.0)
}

/// Walks the `"executor"` section for throughput arrays (`*per_s` keys)
/// and returns a violation line for every entry that falls below the
/// first (1-worker) entry by more than `slack`: adding workers must never
/// cost throughput.
fn monotone_violations(prefix: &str, v: &Json, slack: f64, out: &mut Vec<String>) {
    match v {
        Json::Obj(members) => {
            for (k, child) in members {
                let path = format!("{prefix}.{k}");
                if k.contains("per_s") {
                    if let Some(items) = child.as_arr() {
                        let vals: Vec<f64> = items.iter().filter_map(Json::as_f64).collect();
                        if let Some(&base) = vals.first() {
                            for (i, &t) in vals.iter().enumerate().skip(1) {
                                if t < base * (1.0 - slack) {
                                    out.push(format!(
                                        "{path}.{i}: {t:.3}/s at a higher worker count vs \
                                         {base:.3}/s at the lowest ({:+.1}%)",
                                        (t / base - 1.0) * 100.0
                                    ));
                                }
                            }
                        }
                    }
                }
                monotone_violations(&path, child, slack, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                monotone_violations(&format!("{prefix}.{i}"), child, slack, out);
            }
        }
        _ => {}
    }
}

fn arrow(d: &Delta) -> &'static str {
    match d.direction {
        Direction::HigherIsBetter => "higher is better",
        Direction::LowerIsBetter => "lower is better",
        Direction::Informational => "informational",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.10f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            let v = it.next().and_then(|v| v.parse().ok());
            tolerance = v.unwrap_or_else(|| {
                eprintln!("error: --tolerance needs a fractional number (e.g. 0.10)");
                std::process::exit(2);
            });
        } else {
            paths.push(a.clone());
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        eprintln!("usage: report <baseline.json> <new.json> [--tolerance 0.10]");
        std::process::exit(2);
    };

    let old = load(baseline);
    let new = load(candidate);
    let mut deltas = diff(&old, &new, tolerance);
    if deltas.is_empty() {
        eprintln!("error: no numeric paths shared between {baseline} and {candidate}");
        std::process::exit(2);
    }

    // Worker-count scaling only measures real concurrency when both runs
    // had more than one hardware thread to scale onto.
    let scaling_live = detected_parallelism(&old).min(detected_parallelism(&new)) > 1.0;
    let has_executor = new.get("executor").is_some() || old.get("executor").is_some();
    if !scaling_live && has_executor {
        let mut masked = 0usize;
        for d in deltas
            .iter_mut()
            .filter(|d| d.path.starts_with("executor."))
        {
            d.regression = false;
            masked += 1;
        }
        eprintln!(
            "WARNING: detected_parallelism is 1 in at least one run — skipping the \
             executor scaling gate and {masked} executor.* path(s): worker counts \
             serialize on one core, the arrays measure overhead, not scaling"
        );
    }

    // Monotone-scaling gate on the candidate's own executor section. The
    // slack floor absorbs scheduler noise in short scaling runs.
    let mut scaling_failures = Vec::new();
    if scaling_live {
        if let Some(exec) = new.get("executor") {
            monotone_violations("executor", exec, tolerance.max(0.15), &mut scaling_failures);
        }
    }

    let regressions: Vec<&Delta> = deltas.iter().filter(|d| d.regression).collect();
    let improved = deltas
        .iter()
        .filter(|d| {
            !d.regression
                && match d.direction {
                    Direction::HigherIsBetter => d.rel_change() > tolerance,
                    Direction::LowerIsBetter => d.rel_change() < -tolerance,
                    Direction::Informational => false,
                }
        })
        .count();

    println!(
        "compared {} numeric paths ({baseline} -> {candidate}, tolerance {:.0}%)",
        deltas.len(),
        tolerance * 100.0
    );
    println!(
        "  {improved} improved past the tolerance, {} regressed",
        regressions.len()
    );
    for d in &regressions {
        println!(
            "  REGRESSION {}: {:.3} -> {:.3} ({:+.1}%, {})",
            d.path,
            d.old,
            d.new,
            d.rel_change() * 100.0,
            arrow(d)
        );
    }
    for f in &scaling_failures {
        println!("  SCALING REGRESSION {f}");
    }
    if !regressions.is_empty() || !scaling_failures.is_empty() {
        std::process::exit(1);
    }
    println!("no regressions");
}
