//! Daemon load generator: N connections × M requests against `ape-serve`.
//!
//! Two phases per run:
//!
//! * **closed loop** — each connection sends one request and waits for its
//!   response before sending the next; the per-request latency histogram
//!   comes from this phase.
//! * **open loop (pipelined)** — each connection keeps a window of
//!   requests in flight; the sustained req/s number comes from this phase.
//!
//! By default the daemon runs in-process on an ephemeral port (so the
//! bench is self-contained); `--addr HOST:PORT` drives an external daemon
//! instead (the CI workflow starts one and points the bench at it).
//! Request streams across connections overlap on purpose: the shared
//! estimation graph must show cross-connection hits.
//!
//! Writes `results/BENCH_serve.json` (schema 2). `--smoke` shrinks the
//! request counts for CI.
//!
//! Run with `cargo run --release -p ape-bench --bin serve`.

use ape_bench::report::{latency_section, BENCH_SCHEMA};
use ape_bench::{fmt_val, render_table};
use ape_netlist::Technology;
use ape_serve::client::Client;
use ape_serve::json::{n, obj, s, Value};
use ape_serve::{Server, ServerConfig};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const CONNECTIONS: usize = 4;
/// Open-loop pipelining window, kept under the server's per-connection
/// in-flight budget so admission control never rejects the bench's own
/// well-behaved stream.
const WINDOW: usize = 16;

fn design_fields(gain: f64, ugf: f64) -> Value {
    obj([
        ("topology", obj([("mirror", s("simple"))])),
        (
            "spec",
            obj([
                ("gain", n(gain)),
                ("ugf_hz", n(ugf)),
                ("area_max_m2", n(20e-9)),
                ("ibias", n(1e-5)),
                ("cl", n(1e-11)),
            ]),
        ),
    ])
}

/// The request stream for one connection. Streams overlap between
/// neighbouring connections (half the points are shared) so the daemon's
/// shared graph gets cross-connection traffic without farm-level dedup
/// hiding it (dedup only folds *concurrent* identical jobs).
fn stream(conn: usize, requests: usize) -> Vec<(f64, f64)> {
    (0..requests)
        .map(|i| {
            let k = ((i * CONNECTIONS + (conn % 2)) % 160) as f64;
            (100.0 + k * 3.0, 1e6 + k * 2.9e4)
        })
        .collect()
}

struct PhaseOutcome {
    secs: f64,
    ok: u64,
    errors: u64,
    dropped: u64,
    latency: ape_probe::HistogramSnapshot,
}

fn run_phase(addr: SocketAddr, requests: usize, pipelined: bool) -> PhaseOutcome {
    let hist = Arc::new(ape_probe::Histogram::new());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|conn| {
            let hist = hist.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut errors = 0u64;
                let mut dropped = 0u64;
                let Ok(mut client) = Client::connect(addr) else {
                    return (0, 0, requests as u64);
                };
                let points = stream(conn, requests);
                if pipelined {
                    let mut inflight = 0usize;
                    let mut iter = points.iter();
                    let mut sent = 0usize;
                    let mut received = 0usize;
                    while received < points.len() {
                        while inflight < WINDOW && sent < points.len() {
                            if let Some((gain, ugf)) = iter.next() {
                                if client.send("design", design_fields(*gain, *ugf)).is_err() {
                                    dropped += 1;
                                    received += 1;
                                } else {
                                    inflight += 1;
                                }
                                sent += 1;
                            }
                        }
                        match client.recv() {
                            Ok(reply) => {
                                if reply.outcome.is_ok() {
                                    ok += 1;
                                } else {
                                    errors += 1;
                                }
                            }
                            Err(_) => dropped += 1,
                        }
                        inflight = inflight.saturating_sub(1);
                        received += 1;
                    }
                } else {
                    for (gain, ugf) in points {
                        let t = Instant::now();
                        match client.call("design", design_fields(gain, ugf)) {
                            Ok(reply) => {
                                hist.record(t.elapsed().as_nanos() as f64);
                                if reply.outcome.is_ok() {
                                    ok += 1;
                                } else {
                                    errors += 1;
                                }
                            }
                            Err(_) => dropped += 1,
                        }
                    }
                }
                (ok, errors, dropped)
            })
        })
        .collect();
    let mut ok = 0;
    let mut errors = 0;
    let mut dropped = 0;
    for h in handles {
        let (o, e, d) = h.join().unwrap_or((0, 0, 0));
        ok += o;
        errors += e;
        dropped += d;
    }
    PhaseOutcome {
        secs: t0.elapsed().as_secs_f64(),
        ok,
        errors,
        dropped,
        latency: hist.snapshot(),
    }
}

fn shared_graph_hits(addr: SocketAddr) -> u64 {
    let Ok(mut client) = Client::connect(addr) else {
        return 0;
    };
    let Ok(reply) = client.call("stats", obj([])) else {
        return 0;
    };
    reply
        .outcome
        .ok()
        .and_then(|r| {
            r.get("shared_graph")
                .and_then(|g| g.get("hits"))
                .and_then(Value::as_f64)
        })
        .map_or(0, |v| v as u64)
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let external: Option<SocketAddr> = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let requests_per_conn = if smoke { 25 } else { 200 };

    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== ape-serve sustained load: {CONNECTIONS} connections ==");
    println!("detected parallelism: {detected}");
    if detected == 1 {
        eprintln!(
            "serve bench: WARNING: detected parallelism is 1 — connections and workers \
             serialize on one core; latency quantiles are valid but req/s does NOT \
             demonstrate concurrent scaling"
        );
    }

    // In-process daemon unless --addr points at an external one. At least
    // two workers even on a single-core box, so the shared graph actually
    // has two thread-local graphs trading subtrees.
    let server = if external.is_none() {
        let config = ServerConfig {
            workers: detected.max(2),
            inflight_per_conn: 64,
            shared_graph: true,
            ..ServerConfig::default()
        };
        let srv = Server::bind("127.0.0.1:0", Technology::default_1p2um(), config)
            .expect("bind in-process daemon");
        Some(srv.spawn().expect("spawn daemon"))
    } else {
        None
    };
    let addr = external.unwrap_or_else(|| server.as_ref().map(|s| s.addr()).expect("addr"));

    let closed = run_phase(addr, requests_per_conn, false);
    let open = run_phase(addr, requests_per_conn * 2, true);
    let hits = shared_graph_hits(addr);

    let closed_total = (CONNECTIONS * requests_per_conn) as f64;
    let open_total = (CONNECTIONS * requests_per_conn * 2) as f64;
    let closed_rps = closed_total / closed.secs;
    let sustained_rps = open_total / open.secs;

    println!(
        "{}",
        render_table(
            &[
                "phase",
                "requests",
                "wall (ms)",
                "req/s",
                "ok",
                "errors",
                "dropped"
            ],
            &[
                vec![
                    "closed".into(),
                    format!("{closed_total}"),
                    fmt_val(closed.secs * 1e3),
                    fmt_val(closed_rps),
                    closed.ok.to_string(),
                    closed.errors.to_string(),
                    closed.dropped.to_string(),
                ],
                vec![
                    "open".into(),
                    format!("{open_total}"),
                    fmt_val(open.secs * 1e3),
                    fmt_val(sustained_rps),
                    open.ok.to_string(),
                    open.errors.to_string(),
                    open.dropped.to_string(),
                ],
            ],
        )
    );
    println!(
        "closed-loop latency: p50 {}  p99 {}  (n={})",
        ape_probe::fmt_nanos(closed.latency.p50() as u64),
        ape_probe::fmt_nanos(closed.latency.p99() as u64),
        closed.latency.count
    );
    println!("shared graph cross-request hits: {hits}");

    let dropped = closed.dropped + open.dropped;
    let errors = closed.errors + open.errors;

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve\",");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"connections\": {CONNECTIONS},");
    let _ = writeln!(out, "  \"requests_per_connection\": {requests_per_conn},");
    let _ = writeln!(out, "  \"detected_parallelism\": {detected},");
    let _ = writeln!(out, "  \"closed_loop_req_per_s\": {closed_rps:.3},");
    let _ = writeln!(out, "  \"sustained_req_per_s\": {sustained_rps:.3},");
    let _ = writeln!(out, "  \"ok\": {},", closed.ok + open.ok);
    let _ = writeln!(out, "  \"errors\": {errors},");
    let _ = writeln!(out, "  \"dropped\": {dropped},");
    let _ = writeln!(out, "  \"shared_graph_hits\": {hits},");
    let _ = writeln!(
        out,
        "  {}",
        latency_section(&[("request", &closed.latency)])
    );
    out.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("wrote results/BENCH_serve.json");

    if let Some(server) = server {
        server.stop();
    }
    ape_probe::finish();

    assert_eq!(dropped, 0, "daemon dropped responses under load");
    assert!(
        external.is_some() || hits > 0,
        "shared graph saw no cross-request hits"
    );
}
