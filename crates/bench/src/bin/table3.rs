//! Regenerates **Table 3**: APE estimate vs simulation for four sized
//! operational amplifiers.
//!
//! Usage: `cargo run --release -p ape-bench --bin table3`

use ape_bench::rows::table3_row;
use ape_bench::specs::table3_opamps;
use ape_bench::{fmt_val, render_table};
use ape_netlist::Technology;

fn main() {
    let _trace = ape_probe::install_from_env();
    let tech = Technology::default_1p2um();
    println!("Table 3: estimation vs simulation of op-amps\n");
    println!(
        "Note: OpAmp1-3 topology: Wilson, DiffCMOS, output buffer; OpAmp4: Mirror, DiffCMOS\n"
    );
    let mut printable = Vec::new();
    for task in table3_opamps() {
        let row = table3_row(&tech, &task).expect("table 3 row computes");
        let cell = |name: &str, est: bool| -> String {
            row.metric(name)
                .map(|m| fmt_val(if est { m.est } else { m.sim }))
                .unwrap_or_default()
        };
        printable.push(vec![
            row.name.clone(),
            cell("power", true),
            cell("power", false),
            cell("adm", true),
            cell("adm", false),
            cell("ugf", true),
            cell("ugf", false),
            cell("itail", true),
            cell("itail", false),
            cell("zout", true),
            cell("zout", false),
            cell("area", true),
            cell("area", false),
            cell("cmrr", true),
            cell("cmrr", false),
            cell("slew", true),
            cell("slew", false),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Circuit",
                "P est mW",
                "P sim",
                "Adm est",
                "Adm sim",
                "UGF est MHz",
                "UGF sim",
                "Itail est uA",
                "Itail sim",
                "Zout est k",
                "Zout sim",
                "area est um2",
                "area sim",
                "CMRR est dB",
                "CMRR sim",
                "SR est V/us",
                "SR sim",
            ],
            &printable
        )
    );
    ape_probe::finish();
}
