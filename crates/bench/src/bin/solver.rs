//! Solver-portfolio benchmark: wall-time and success-rate per search
//! engine on APE-seeded Table 1/4 specifications.
//!
//! Each engine (`sa`, `cma-es`, `pso`, `newton`, and the raced
//! `portfolio`) synthesizes the same specs from the same ±20 % APE-seeded
//! intervals with the same evaluation budget, across several seeds. The
//! gate — the reason this bench exists — is that the portfolio must never
//! be *less* successful than simulated annealing alone: racing engines
//! and taking the first feasible winner can only add coverage.
//!
//! Writes `results/BENCH_solver.json` (schema 2). `--smoke` shrinks the
//! spec/seed matrix for CI and exits non-zero if the gate fails.
//!
//! Run with `cargo run --release -p ape-bench --bin solver [-- --smoke]`.

use ape_bench::specs::table1_opamps;
use ape_bench::{fmt_val, render_table};
use ape_core::opamp::OpAmp;
use ape_netlist::Technology;
use ape_oblx::{design_point_from_ape, synthesize, InitialPoint, SolverChoice, SynthesisOptions};
use std::fmt::Write as _;
use std::time::Instant;

use ape_bench::report::{latency_section, BENCH_SCHEMA};

const SOLVERS: [(&str, SolverChoice); 5] = [
    ("sa", SolverChoice::Sa),
    ("cma_es", SolverChoice::CmaEs),
    ("pso", SolverChoice::ParticleSwarm),
    ("newton", SolverChoice::NewtonPolish),
    ("portfolio", SolverChoice::Portfolio),
];

fn main() {
    let _trace = ape_probe::install_from_env();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let evals: usize = args
        .iter()
        .skip(1)
        .find_map(|s| s.parse().ok())
        .unwrap_or(if smoke { 120 } else { 300 });
    let seeds: &[u64] = if smoke { &[1] } else { &[1, 2, 3] };
    let tech = Technology::default_1p2um();

    // APE-seeded mode (Table 4): every task the estimator can size is a
    // candidate; take the first few so the full run stays in CPU budget.
    let take = if smoke { 2 } else { 4 };
    let tasks: Vec<_> = table1_opamps()
        .into_iter()
        .filter_map(|t| {
            OpAmp::design(&tech, t.topology, t.spec)
                .ok()
                .map(|amp| (t, design_point_from_ape(&tech, &amp)))
        })
        .take(take)
        .collect();
    assert!(
        tasks.len() >= 2,
        "need at least two seedable Table 1 specs, got {}",
        tasks.len()
    );
    let spec_names: Vec<&str> = tasks.iter().map(|(t, _)| t.name).collect();
    println!(
        "solver portfolio bench: specs {:?}, {} seed(s), {evals} evals per run\n",
        spec_names,
        seeds.len()
    );

    let mut rows = Vec::new();
    let mut json_solvers = String::new();
    let mut hists = Vec::new();
    let mut success_rates = Vec::new();
    for (si, (label, choice)) in SOLVERS.iter().enumerate() {
        let hist = ape_probe::Histogram::new();
        let mut successes = 0usize;
        let mut runs = 0usize;
        let mut wall_total = 0.0f64;
        let mut evals_total = 0usize;
        for (task, point) in &tasks {
            for &seed in seeds {
                let init = InitialPoint::ApeSeeded {
                    point: point.clone(),
                    interval_frac: 0.2,
                };
                let opts = SynthesisOptions {
                    max_evals: evals,
                    moves_per_temp: 20,
                    seed,
                    solver: *choice,
                    ..SynthesisOptions::default()
                };
                let t0 = Instant::now();
                let out = synthesize(&tech, task.topology, &task.spec, &init, &opts)
                    .expect("table specs are well-formed");
                let wall = t0.elapsed();
                hist.record(wall.as_nanos() as f64);
                wall_total += wall.as_secs_f64();
                evals_total += out.evals;
                runs += 1;
                if out.meets_spec() {
                    successes += 1;
                }
            }
        }
        let success_rate = successes as f64 / runs.max(1) as f64;
        success_rates.push(success_rate);
        rows.push(vec![
            (*label).to_string(),
            format!("{:.0}%", 100.0 * success_rate),
            fmt_val(wall_total / runs.max(1) as f64),
            format!("{}", evals_total / runs.max(1)),
        ]);
        let _ = writeln!(
            json_solvers,
            "    \"{label}\": {{\"success_rate\": {success_rate:.4}, \"wall_s\": {:.4}, \"evals\": {}}}{}",
            wall_total / runs.max(1) as f64,
            evals_total / runs.max(1),
            if si + 1 < SOLVERS.len() { "," } else { "" }
        );
        hists.push(((*label).to_string(), hist.snapshot()));
    }
    println!(
        "{}",
        render_table(&["solver", "success", "mean wall s", "mean evals"], &rows)
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"solver\",");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"evals_budget\": {evals},");
    let _ = writeln!(out, "  \"seeds\": {},", seeds.len());
    let _ = writeln!(
        out,
        "  \"specs\": [{}],",
        spec_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"solvers\": {{");
    out.push_str(&json_solvers);
    let _ = writeln!(out, "  }},");
    let entries: Vec<(&str, &ape_probe::HistogramSnapshot)> =
        hists.iter().map(|(n, h)| (n.as_str(), h)).collect();
    let _ = writeln!(out, "  {}", latency_section(&entries));
    out.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_solver.json", &out).expect("write BENCH_solver.json");
    println!("wrote results/BENCH_solver.json");

    // The gate: racing can only add coverage over annealing alone.
    let sa_rate = success_rates[0];
    let portfolio_rate = success_rates[SOLVERS.len() - 1];
    if portfolio_rate < sa_rate {
        eprintln!(
            "GATE FAILED: portfolio success rate {portfolio_rate:.2} < sa success rate {sa_rate:.2}"
        );
        ape_probe::finish();
        std::process::exit(1);
    }
    println!(
        "gate: portfolio success rate {:.0}% >= sa {:.0}%",
        100.0 * portfolio_rate,
        100.0 * sa_rate
    );
    ape_probe::finish();
}
