//! Regenerates **Table 4**: the same ten op-amp specifications as Table 1,
//! synthesized with the APE-generated initial point and ±20 % intervals.
//!
//! With `--with-blind`, the blind (Table 1) run is repeated for each
//! circuit to compute the speed-up column the paper reports.
//!
//! Usage: `cargo run --release -p ape-bench --bin table4 [evals] [--with-blind]`

use ape_bench::specs::table1_opamps;
use ape_bench::{fmt_val, render_table};
use ape_core::module::{SallenKeyLowPass, SampleHold};
use ape_core::opamp::OpAmp;
use ape_netlist::Technology;
use ape_oblx::{design_point_from_ape, synthesize, InitialPoint, SynthesisOptions};
use std::time::Instant;

fn main() {
    let _trace = ape_probe::install_from_env();
    let args: Vec<String> = std::env::args().collect();
    let evals: usize = args
        .iter()
        .skip(1)
        .find_map(|s| s.parse().ok())
        .unwrap_or(400);
    let with_blind = args.iter().any(|a| a == "--with-blind");
    let tech = Technology::default_1p2um();
    println!("Table 4: APE-seeded synthesis (+/-20% intervals), {evals} evaluation budget\n");

    // The paper's headline: APE itself is essentially free.
    let t_ape = Instant::now();
    let designs: Vec<OpAmp> = table1_opamps()
        .iter()
        .map(|task| OpAmp::design(&tech, task.topology, task.spec).expect("APE sizes every spec"))
        .collect();
    let ape_time = t_ape.elapsed();
    println!(
        "APE sizing time for all ten op-amps: {:.4} s (paper: 0.12 s on an Ultra Sparc 30)\n",
        ape_time.as_secs_f64()
    );

    let mut rows = Vec::new();
    for (task, ape_design) in table1_opamps().iter().zip(&designs) {
        let seed = 1000 + task.name.as_bytes()[2] as u64;
        let opts = SynthesisOptions {
            max_evals: evals,
            seed,
            ..SynthesisOptions::default()
        };
        let init = InitialPoint::ApeSeeded {
            point: design_point_from_ape(&tech, ape_design),
            interval_frac: 0.2,
        };
        let out = synthesize(&tech, task.topology, &task.spec, &init, &opts)
            .expect("spec is well-formed");
        let (gain, ugf, area, power, comment) = match &out.audit {
            Ok(a) => (
                a.measured.dc_gain.unwrap_or(0.0),
                a.measured.ugf_hz.unwrap_or(0.0) * 1e-6,
                a.measured.gate_area_um2(),
                a.measured.power_mw(),
                if a.meets_spec() {
                    "Meets spec".to_string()
                } else {
                    a.violations.join("; ")
                },
            ),
            Err(f) => (0.0, 0.0, 0.0, 0.0, format!("doesn't work ({}).", f.reason)),
        };
        let speedup = if with_blind {
            let blind = synthesize(
                &tech,
                task.topology,
                &task.spec,
                &InitialPoint::Blind,
                &opts,
            )
            .expect("spec is well-formed");
            let s = 100.0 * (1.0 - out.wall.as_secs_f64() / blind.wall.as_secs_f64().max(1e-9));
            format!("{s:.1}%")
        } else {
            "-".to_string()
        };
        rows.push(vec![
            task.name.to_string(),
            fmt_val(gain),
            fmt_val(ugf),
            fmt_val(area),
            fmt_val(power),
            format!("{:.2}", out.wall.as_secs_f64()),
            format!("{}", out.evals),
            speedup,
            comment,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "ckt", "gain", "UGF MHz", "area um2", "power mW", "CPU s", "evals", "speed-up",
                "comments"
            ],
            &rows
        )
    );

    // Exercise the module level (the paper's level 4) so a trace of this
    // run covers the whole hierarchy: module -> op-amp -> basic block ->
    // device sizing.
    let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).expect("module-level LPF sizes");
    let sh = SampleHold::design(&tech, 2.0, 40e3, 10e-12).expect("module-level S/H sizes");
    println!(
        "\nModule-level check: 4th-order Sallen-Key LPF {:.0} um2, sample/hold {:.0} um2",
        lpf.perf.gate_area_um2(),
        sh.perf.gate_area_um2()
    );

    ape_probe::finish();
}
