//! Calibration benchmark: est/sim spread before and after fitting a
//! correction table on the paper's own workloads.
//!
//! Runs Tables 2, 3 and 5 uncalibrated, fits a [`ape_calib::Calibration`]
//! from the est/sim pairs in two stages (L2+L3 first, then L4 on top of
//! the installed L2/L3 corrections, matching the staged-fitting semantics
//! of [`ape_calib::Calibration::merge`]), installs the merged table on the
//! thread graph, and reruns every row. Writes
//! `results/BENCH_calib.json` (schema 2) and exits non-zero unless the
//! calibrated spread is strictly tighter overall and no metric got worse.
//!
//! Usage: `cargo run --release -p ape-bench --bin calib [-- --smoke]`
//! (`--smoke` runs a single Table 3 op-amp instead of all four).

use ape_bench::report::{latency_section, BENCH_SCHEMA};
use ape_bench::rows::{table2_rows, table3_row, table5_ape_rows, ComponentRow};
use ape_bench::{fmt_val, render_table};
use ape_calib::{fit, Sample};
use ape_core::graph::set_thread_calibration;
use ape_netlist::Technology;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Maps a bench row name to its composition-equation id.
fn equation_for(row: &str) -> Option<&'static str> {
    Some(match row {
        "DCVolt" => "l2.bias",
        "CurrMirr" | "Wilson" | "Cascode" => "l2.mirror",
        "GainNMOS" | "GainCMOS" | "GainCMOSH" => "l2.gain",
        "Follower" => "l2.follower",
        "DiffNMOS" | "DiffCMOS" => "l2.diffpair",
        "s&h" => "l4.sample_hold",
        "amp" => "l4.audio_amp",
        "adc" => "l4.adc",
        "lpf" => "l4.filter_lp",
        "bpf" => "l4.filter_bp",
        name if name.starts_with("OpAmp") => "l3.opamp",
        _ => return None,
    })
}

/// Maps a bench metric name to the calibration metric it exercises.
/// Metrics whose `est` column is a spec echo (`current`, `vout`, `itail`,
/// `bits`) and derived curve points (`f20db`) stay uncalibrated.
fn calib_metric_for(metric: &str) -> Option<&'static str> {
    Some(match metric {
        "area" => "gate_area_m2",
        "power" => "power_w",
        "gain" | "adm" => "dc_gain",
        "ugf" => "ugf_hz",
        "bw" | "f3db" => "bw_hz",
        "zout" => "zout_ohm",
        "cmrr" => "cmrr_db",
        "slew" => "slew_v_per_s",
        "delay" => "delay_s",
        "f0" => "f0_hz",
        _ => return None,
    })
}

/// The same degeneracy filter [`ape_calib::fit`] applies: both values
/// finite, non-zero, same sign. Keeps the spread comparison and the fit
/// looking at the same population.
fn usable(est: f64, sim: f64) -> bool {
    est.is_finite() && sim.is_finite() && est != 0.0 && sim != 0.0 && (est < 0.0) == (sim < 0.0)
}

/// Collects calibration samples from a set of rows.
fn samples_of(rows: &[ComponentRow]) -> Vec<Sample> {
    let mut out = Vec::new();
    for row in rows {
        let Some(eq) = equation_for(&row.name) else {
            continue;
        };
        for m in &row.metrics {
            let Some(metric) = calib_metric_for(m.name) else {
                continue;
            };
            if usable(m.est, m.sim) {
                out.push(Sample::new(eq, metric, m.est, m.sim));
            }
        }
    }
    out
}

/// Max and mean relative error per `equation.metric` key.
#[derive(Debug, Default, Clone)]
struct Spread {
    max: f64,
    sum: f64,
    n: usize,
}

impl Spread {
    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

fn spreads_of(rows: &[ComponentRow]) -> BTreeMap<String, Spread> {
    let mut out: BTreeMap<String, Spread> = BTreeMap::new();
    for row in rows {
        let Some(eq) = equation_for(&row.name) else {
            continue;
        };
        for m in &row.metrics {
            let Some(metric) = calib_metric_for(m.name) else {
                continue;
            };
            if !usable(m.est, m.sim) {
                continue;
            }
            let e = m.rel_err();
            let s = out.entry(format!("{eq}.{metric}")).or_default();
            s.max = s.max.max(e);
            s.sum += e;
            s.n += 1;
        }
    }
    out
}

fn overall(spreads: &BTreeMap<String, Spread>) -> Spread {
    let mut o = Spread::default();
    for s in spreads.values() {
        o.max = o.max.max(s.max);
        o.sum += s.sum;
        o.n += s.n;
    }
    o
}

fn all_rows(tech: &Technology, smoke: bool) -> Vec<ComponentRow> {
    let mut rows = table2_rows(tech).expect("table 2 computes");
    let tasks = ape_bench::specs::table3_opamps();
    let picked: Vec<_> = if smoke { vec![tasks[3]] } else { tasks };
    for task in &picked {
        rows.push(table3_row(tech, task).expect("table 3 row computes"));
    }
    rows.extend(table5_ape_rows(tech).expect("table 5 computes"));
    rows
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let tech = Technology::default_1p2um();
    let tfp = tech.fingerprint();

    // Pass 1: raw estimates, no table installed.
    set_thread_calibration(None);
    let raw = all_rows(&tech, smoke);
    let uncal = spreads_of(&raw);

    // Stage fit: L2 + L3 from the raw pairs.
    let fit_hist = ape_probe::Histogram::new();
    let t0 = Instant::now();
    let l23: Vec<Sample> = samples_of(&raw)
        .into_iter()
        .filter(|s| !s.equation.starts_with("l4."))
        .collect();
    let mut table = fit(tfp, "bench", &l23).expect("L2/L3 fit succeeds");
    fit_hist.record(t0.elapsed().as_nanos() as f64);

    // Pass 2: rerun the module rows with L2/L3 installed so the L4 fit
    // sees the residual error of the *calibrated* composition, not a
    // double-count of the inner corrections.
    set_thread_calibration(Some(Arc::new(table.clone())));
    let modules = table5_ape_rows(&tech).expect("table 5 recomputes");
    let t1 = Instant::now();
    let l4: Vec<Sample> = samples_of(&modules)
        .into_iter()
        .filter(|s| s.equation.starts_with("l4."))
        .collect();
    let residual = fit(tfp, "bench-l4", &l4).expect("L4 fit succeeds");
    table.merge(&residual).expect("same technology");
    fit_hist.record(t1.elapsed().as_nanos() as f64);

    // Pass 3: everything again under the merged table.
    let cal_fp = table.fingerprint();
    let corrections = table.iter().count();
    set_thread_calibration(Some(Arc::new(table)));
    let calibrated_rows = all_rows(&tech, smoke);
    set_thread_calibration(None);
    let cal = spreads_of(&calibrated_rows);

    // Report.
    println!("Calibration: est/sim spread before and after fitting\n");
    let mut printable = Vec::new();
    for (key, u) in &uncal {
        let c = cal.get(key).cloned().unwrap_or_default();
        printable.push(vec![
            key.clone(),
            format!("{}", u.n),
            fmt_val(100.0 * u.max),
            fmt_val(100.0 * c.max),
            fmt_val(100.0 * u.mean()),
            fmt_val(100.0 * c.mean()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "equation.metric",
                "n",
                "max % uncal",
                "max % cal",
                "mean % uncal",
                "mean % cal",
            ],
            &printable
        )
    );
    let uo = overall(&uncal);
    let co = overall(&cal);
    println!(
        "\noverall: max {:.1}% -> {:.1}%, mean {:.1}% -> {:.1}% ({} corrections, table {cal_fp:#018x})",
        100.0 * uo.max,
        100.0 * co.max,
        100.0 * uo.mean(),
        100.0 * co.mean(),
        corrections,
    );

    // Machine-readable summary.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"technology\": \"{tfp:#018x}\",");
    let _ = writeln!(out, "  \"calibration\": \"{cal_fp:#018x}\",");
    let _ = writeln!(out, "  \"corrections\": {corrections},");
    let _ = writeln!(out, "  \"samples\": {},", uo.n);
    let _ = writeln!(
        out,
        "  \"uncalibrated\": {{\"max_rel_err\": {:.6}, \"mean_rel_err\": {:.6}}},",
        uo.max,
        uo.mean()
    );
    let _ = writeln!(
        out,
        "  \"calibrated\": {{\"max_rel_err\": {:.6}, \"mean_rel_err\": {:.6}}},",
        co.max,
        co.mean()
    );
    out.push_str("  \"spread\": {");
    for (i, (key, u)) in uncal.iter().enumerate() {
        let c = cal.get(key).cloned().unwrap_or_default();
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{key}\": {{\"uncal_max_rel_err\": {:.6}, \"cal_max_rel_err\": {:.6}}}",
            u.max, c.max
        );
    }
    out.push_str("},\n");
    let _ = writeln!(
        out,
        "  {}",
        latency_section(&[("fit", &fit_hist.snapshot())])
    );
    out.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_calib.json", &out).expect("write BENCH_calib.json");
    println!("wrote results/BENCH_calib.json");
    ape_probe::finish();

    // Gate: the calibrated table must strictly tighten the overall max
    // spread and must not make any individual metric worse.
    let mut failed = false;
    if co.max >= uo.max {
        eprintln!(
            "GATE: calibrated overall max {:.4} is not strictly tighter than {:.4}",
            co.max, uo.max
        );
        failed = true;
    }
    for (key, u) in &uncal {
        let c = cal.get(key).cloned().unwrap_or_default();
        if c.max > u.max + 1e-9 {
            eprintln!("GATE: {key} got worse: {:.4} -> {:.4}", u.max, c.max);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
