//! Farm throughput: batch estimation at 1/2/4/8 workers.
//!
//! Each row runs the same design-space grid through a fresh [`Farm`] with
//! the result cache doing no work (every request distinct), so the row
//! measures raw estimator throughput through the queue/pool machinery.
//! A second table dedups a 50%-duplicate stream to show the single-flight
//! cache's effect.
//!
//! Speedup over the 1-worker row is hardware-dependent: on a single-core
//! machine every row collapses to serial throughput, which is why the
//! detected parallelism is printed with the results.
//!
//! Run with `cargo run --release -p ape-bench --bin farm`.

use ape_bench::{fmt_val, render_table};
use ape_core::basic::MirrorTopology;
use ape_core::opamp::{OpAmpSpec, OpAmpTopology};
use ape_farm::{Farm, FarmConfig, Request};
use ape_netlist::Technology;
use std::time::Instant;

fn grid(points: usize) -> Vec<Request> {
    // Distinct specs: walk gain and UGF so no two requests share a key.
    (0..points)
        .map(|i| Request::OpAmpDesign {
            topology: OpAmpTopology::miller(
                if i % 2 == 0 {
                    MirrorTopology::Simple
                } else {
                    MirrorTopology::Wilson
                },
                false,
            ),
            spec: OpAmpSpec {
                gain: 100.0 + (i as f64) * 7.0,
                ugf_hz: 1e6 + (i as f64) * 3.7e4,
                area_max_m2: 20_000e-12,
                ibias: 10e-6,
                zout_ohm: None,
                cl: 10e-12,
            },
        })
        .collect()
}

fn run(workers: usize, requests: &[Request]) -> (f64, u64, u64) {
    let farm = Farm::new(
        Technology::default_1p2um(),
        FarmConfig::with_workers(workers),
    );
    let t0 = Instant::now();
    let handles: Vec<_> = requests.iter().cloned().map(|r| farm.submit(r)).collect();
    for h in &handles {
        let _ = h.wait();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = farm.stats();
    (elapsed, stats.executed, stats.cache_hits + stats.deduped)
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Farm throughput: batch op-amp estimation ==");
    println!("detected parallelism: {detected} (speedup saturates there)\n");

    let points = 400usize;
    let requests = grid(points);
    let mut rows = Vec::new();
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let (secs, executed, _) = run(workers, &requests);
        let thr = points as f64 / secs;
        let base_thr = *base.get_or_insert(thr);
        rows.push(vec![
            workers.to_string(),
            fmt_val(secs * 1e3),
            fmt_val(thr),
            format!("{:.2}x", thr / base_thr),
            executed.to_string(),
        ]);
    }
    println!("-- {points} distinct designs --");
    println!(
        "{}",
        render_table(
            &["workers", "wall (ms)", "designs/s", "speedup", "executed"],
            &rows,
        )
    );

    // Duplicate half the stream: the single-flight cache folds repeats.
    let mut dup = grid(points / 2);
    dup.extend(grid(points / 2));
    let mut rows = Vec::new();
    for workers in [1usize, 4] {
        let (secs, executed, shared) = run(workers, &dup);
        rows.push(vec![
            workers.to_string(),
            fmt_val(secs * 1e3),
            executed.to_string(),
            shared.to_string(),
        ]);
    }
    println!("-- {points} submissions, 50% duplicates --");
    println!(
        "{}",
        render_table(&["workers", "wall (ms)", "executed", "cache-shared"], &rows)
    );
    ape_probe::finish();
}
