//! Farm throughput: batch estimation at 1/2/4/8 workers.
//!
//! Each row runs the same design-space grid through a fresh [`Farm`] with
//! the result cache doing no work (every request distinct), so the row
//! measures raw estimator throughput through the queue/pool machinery.
//! A second table dedups a 50%-duplicate stream to show the single-flight
//! cache's effect.
//!
//! Speedup over the 1-worker row is hardware-dependent: on a single-core
//! machine every row collapses to serial throughput, which is why the
//! detected parallelism is printed with the results.
//!
//! Writes a machine-readable summary to `results/BENCH_farm.json`
//! (schema 2) whose `latency_ns` block carries the queue-wait and
//! job-latency quantiles from the widest distinct-design row.
//!
//! Run with `cargo run --release -p ape-bench --bin farm`.

use ape_bench::report::{latency_section, BENCH_SCHEMA};
use ape_bench::{fmt_val, render_table};
use ape_core::basic::MirrorTopology;
use ape_core::graph::reset_thread_graph;
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology};
use ape_farm::{Farm, FarmConfig, Request};
use ape_netlist::Technology;
use std::fmt::Write as _;
use std::time::Instant;

fn grid_pairs(points: usize) -> Vec<(OpAmpTopology, OpAmpSpec)> {
    // Distinct specs: walk gain and UGF so no two requests share a key.
    (0..points)
        .map(|i| {
            (
                OpAmpTopology::miller(
                    if i % 2 == 0 {
                        MirrorTopology::Simple
                    } else {
                        MirrorTopology::Wilson
                    },
                    false,
                ),
                OpAmpSpec {
                    gain: 100.0 + (i as f64) * 7.0,
                    ugf_hz: 1e6 + (i as f64) * 3.7e4,
                    area_max_m2: 20_000e-12,
                    ibias: 10e-6,
                    zout_ohm: None,
                    cl: 10e-12,
                },
            )
        })
        .collect()
}

fn grid(points: usize) -> Vec<Request> {
    grid_pairs(points)
        .into_iter()
        .map(|(topology, spec)| Request::OpAmpDesign { topology, spec })
        .collect()
}

struct RunResult {
    secs: f64,
    executed: u64,
    shared: u64,
    queue_wait: ape_probe::HistogramSnapshot,
    job_latency: ape_probe::HistogramSnapshot,
}

fn run(workers: usize, requests: &[Request]) -> RunResult {
    let farm = Farm::new(
        Technology::default_1p2um(),
        FarmConfig::with_workers(workers),
    );
    let t0 = Instant::now();
    let handles: Vec<_> = requests.iter().cloned().map(|r| farm.submit(r)).collect();
    for h in &handles {
        let _ = h.wait();
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = farm.stats();
    RunResult {
        secs,
        executed: stats.executed,
        shared: stats.cache_hits + stats.deduped,
        queue_wait: farm.queue_wait_ns(),
        job_latency: farm.job_latency_ns(),
    }
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Farm throughput: batch op-amp estimation ==");
    println!("detected parallelism: {detected} (speedup saturates there)\n");
    if detected == 1 {
        eprintln!(
            "farm bench: WARNING: detected parallelism is 1 — every worker count \
             serializes on one core, so the speedup column measures scheduling \
             overhead, not concurrent scaling"
        );
    }

    let points = 400usize;
    let requests = grid(points);
    let mut rows = Vec::new();
    let mut base = None;
    let workers_axis = [1usize, 2, 4, 8];
    let mut throughputs = Vec::new();
    let mut widest = None;
    for workers in workers_axis {
        let r = run(workers, &requests);
        let thr = points as f64 / r.secs;
        let base_thr = *base.get_or_insert(thr);
        rows.push(vec![
            workers.to_string(),
            fmt_val(r.secs * 1e3),
            fmt_val(thr),
            format!("{:.2}x", thr / base_thr),
            r.executed.to_string(),
        ]);
        throughputs.push(thr);
        widest = Some(r);
    }
    println!("-- {points} distinct designs --");
    println!(
        "{}",
        render_table(
            &["workers", "wall (ms)", "designs/s", "speedup", "executed"],
            &rows,
        )
    );

    // Explicit-executor scaling: the same distinct grid through
    // `OpAmp::design_many_on` on `Executor::new(w)` pools — the estimation
    // work a farm job does, minus the queue machinery, with real worker
    // threads even on a 1-core machine (where the farm itself clamps).
    let pairs = grid_pairs(points);
    let mut exec_thr = Vec::new();
    let mut rows = Vec::new();
    for &w in &workers_axis {
        let exec = ape_exec::Executor::new(w);
        reset_thread_graph();
        let t0 = Instant::now();
        std::hint::black_box(OpAmp::design_many_on(
            &exec,
            &Technology::default_1p2um(),
            &pairs,
        ));
        let thr = pairs.len() as f64 / t0.elapsed().as_secs_f64();
        reset_thread_graph();
        rows.push(vec![
            w.to_string(),
            fmt_val(thr),
            format!("{:.2}x", thr / exec_thr.first().copied().unwrap_or(thr)),
        ]);
        exec_thr.push(thr);
    }
    println!("-- {points} distinct designs, explicit executors --");
    println!(
        "{}",
        render_table(&["workers", "designs/s", "speedup"], &rows)
    );

    // Duplicate half the stream: the single-flight cache folds repeats.
    let mut dup = grid(points / 2);
    dup.extend(grid(points / 2));
    let mut rows = Vec::new();
    let mut dedup_executed = 0;
    for workers in [1usize, 4] {
        let r = run(workers, &dup);
        dedup_executed = r.executed;
        rows.push(vec![
            workers.to_string(),
            fmt_val(r.secs * 1e3),
            r.executed.to_string(),
            r.shared.to_string(),
        ]);
    }
    println!("-- {points} submissions, 50% duplicates --");
    println!(
        "{}",
        render_table(&["workers", "wall (ms)", "executed", "cache-shared"], &rows)
    );

    let widest = widest.expect("at least one worker row ran");
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"farm\",");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"points\": {points},");
    let _ = writeln!(out, "  \"detected_parallelism\": {detected},");
    let _ = writeln!(
        out,
        "  \"workers\": [{}],",
        workers_axis
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"designs_per_s\": [{}],",
        throughputs
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"dedup_executed\": {dedup_executed},");
    // Worker-count scaling on explicit executors — gated for monotone
    // throughput by `ape-bench report` (auto-skipped at parallelism 1).
    let _ = writeln!(
        out,
        "  \"executor\": {{\"workers\": [{}], \"design_many_per_s\": [{}]}},",
        workers_axis
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        exec_thr
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  {}",
        latency_section(&[
            ("queue_wait", &widest.queue_wait),
            ("job", &widest.job_latency),
        ])
    );
    out.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_farm.json", &out).expect("write BENCH_farm.json");
    println!("wrote results/BENCH_farm.json");
    ape_probe::finish();
}
