//! Estimation-graph benchmarks: cold vs incremental re-estimation.
//!
//! The annealing loop and the sweep driver both ask the estimator almost
//! the same question over and over — one variable nudged per move. The
//! estimation graph answers the unchanged subtrees from its memo, so an
//! incremental redesign should beat a cold one. This bench measures that
//! speedup on a single-variable move trajectory (cycling gain, UGF, bias
//! current, load, and area), then runs a neighbour-stream sweep through an
//! [`ape_farm::Farm`] at 1/2/4/8 workers.
//!
//! Prints aligned tables, the per-kind graph report, and writes a
//! machine-readable summary to `results/BENCH_estimator.json`
//! (`incremental_speedup_single_var` is the CI gate: `--smoke` exits
//! non-zero when the speedup drops below 1.5x).
//!
//! Run with `cargo run --release -p ape-bench --bin estimator`; set
//! `APE_TRACE=summary` to see the per-node `ape.graph.<kind>.*` hit/miss
//! counters.

use ape_bench::report::{latency_section, BENCH_SCHEMA};
use ape_bench::{fmt_val, render_table};
use ape_core::basic::MirrorTopology;
use ape_core::graph::{graph_report, reset_thread_graph};
use ape_core::opamp::{OpAmp, OpAmpSpec, OpAmpTopology, SpecDelta};
use ape_farm::{Farm, FarmConfig, Request};
use ape_netlist::Technology;
use std::fmt::Write as _;
use std::time::Instant;

fn base_spec() -> OpAmpSpec {
    OpAmpSpec {
        gain: 200.0,
        ugf_hz: 5e6,
        area_max_m2: 5000e-12,
        ibias: 10e-6,
        zout_ohm: None,
        cl: 10e-12,
    }
}

/// A trajectory of single-variable annealing-style moves, cycling through
/// the five tunable fields. Each move sets its field to a *fresh* value
/// within ±5% of the base spec (a hashed perturbation, so no two moves
/// revisit an earlier spec) — the incremental path must genuinely
/// recompute the dirty subtree every move, not answer whole designs from
/// the memo.
fn trajectory(moves: usize) -> Vec<SpecDelta> {
    let base = base_spec();
    (0..moves)
        .map(|k| {
            let h = (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24;
            let f = 0.95 + 0.1 * (h as f64 / (1u64 << 40) as f64);
            let mut d = SpecDelta::default();
            match k % 5 {
                0 => d.gain = Some(base.gain * f),
                1 => d.ugf_hz = Some(base.ugf_hz * f),
                2 => d.ibias = Some(base.ibias * f),
                3 => d.cl = Some(base.cl * f),
                _ => d.area_max_m2 = Some(base.area_max_m2 * f),
            }
            d
        })
        .collect()
}

/// Wall time for the trajectory with a graph reset before every move —
/// every design is a from-scratch estimate. Per-move latencies land in
/// `lat` for the standardized `latency_ns` bench block.
fn run_cold(
    tech: &Technology,
    topology: OpAmpTopology,
    deltas: &[SpecDelta],
    lat: &ape_probe::Histogram,
) -> f64 {
    let mut spec = base_spec();
    let t0 = Instant::now();
    for d in deltas {
        spec = d.apply(&spec);
        reset_thread_graph();
        let m0 = Instant::now();
        std::hint::black_box(OpAmp::design(tech, topology, spec).expect("cold design"));
        lat.record(m0.elapsed().as_nanos() as f64);
    }
    t0.elapsed().as_secs_f64()
}

/// Wall time for the same trajectory through [`OpAmp::redesign`] on a warm
/// graph: unchanged subtrees answer from the memo.
fn run_incremental(
    tech: &Technology,
    topology: OpAmpTopology,
    deltas: &[SpecDelta],
    lat: &ape_probe::Histogram,
) -> f64 {
    reset_thread_graph();
    let mut amp = OpAmp::design(tech, topology, base_spec()).expect("base design");
    let t0 = Instant::now();
    for d in deltas {
        let m0 = Instant::now();
        amp = OpAmp::redesign(tech, &amp, d).expect("incremental redesign");
        lat.record(m0.elapsed().as_nanos() as f64);
        std::hint::black_box(&amp);
    }
    t0.elapsed().as_secs_f64()
}

/// Runs the neighbour stream through a farm and returns wall seconds plus
/// the farm's queue-wait and job-latency distributions.
fn run_sweep(
    tech: &Technology,
    workers: usize,
    requests: &[Request],
) -> (
    f64,
    ape_probe::HistogramSnapshot,
    ape_probe::HistogramSnapshot,
) {
    let farm = Farm::new(tech.clone(), FarmConfig::with_workers(workers));
    let t0 = Instant::now();
    let handles: Vec<_> = requests.iter().cloned().map(|r| farm.submit(r)).collect();
    for h in &handles {
        let _ = h.wait();
    }
    let wall = t0.elapsed().as_secs_f64();
    (wall, farm.queue_wait_ns(), farm.job_latency_ns())
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let moves = if smoke { 60 } else { 300 };
    let tech = Technology::default_1p2um();
    let topology = OpAmpTopology::miller(MirrorTopology::Simple, false);
    let deltas = trajectory(moves);

    // Single-variable anneal moves: cold vs incremental. Best of three
    // repetitions keeps the smoke gate out of scheduler-noise territory.
    let best = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    let cold_lat = ape_probe::Histogram::new();
    let incr_lat = ape_probe::Histogram::new();
    let cold = best(&|| run_cold(&tech, topology, &deltas, &cold_lat));
    let incremental = best(&|| run_incremental(&tech, topology, &deltas, &incr_lat));
    let speedup = cold / incremental;
    println!("== Single-variable anneal moves: cold vs incremental ==");
    println!(
        "{}",
        render_table(
            &[
                "moves",
                "cold (ms)",
                "incr (ms)",
                "cold/s",
                "incr/s",
                "speedup"
            ],
            &[vec![
                moves.to_string(),
                fmt_val(cold * 1e3),
                fmt_val(incremental * 1e3),
                fmt_val(moves as f64 / cold),
                fmt_val(moves as f64 / incremental),
                format!("{speedup:.2}x"),
            ]],
        )
    );
    println!("{}\n", graph_report());

    // Sweep neighbours through the farm: every request differs from its
    // predecessor in one variable, so warm worker graphs reuse most
    // subtrees (isolate_sizing_cache defaults to off).
    let mut spec = base_spec();
    let neighbor_pairs: Vec<(OpAmpTopology, OpAmpSpec)> = deltas
        .iter()
        .map(|d| {
            spec = d.apply(&spec);
            (topology, spec)
        })
        .collect();
    let requests: Vec<Request> = neighbor_pairs
        .iter()
        .map(|&(topology, spec)| Request::OpAmpDesign { topology, spec })
        .collect();
    let workers_axis = [1usize, 2, 4, 8];
    let sweeps: Vec<(
        f64,
        ape_probe::HistogramSnapshot,
        ape_probe::HistogramSnapshot,
    )> = workers_axis
        .iter()
        .map(|&w| run_sweep(&tech, w, &requests))
        .collect();
    let sweep_walls: Vec<f64> = sweeps.iter().map(|(w, _, _)| *w).collect();
    let mut rows = Vec::new();
    for (k, &w) in workers_axis.iter().enumerate() {
        rows.push(vec![
            w.to_string(),
            fmt_val(sweep_walls[k] * 1e3),
            fmt_val(requests.len() as f64 / sweep_walls[k]),
            format!("{:.2}x", sweep_walls[0] / sweep_walls[k]),
        ]);
    }
    println!("== Sweep neighbours through the farm ==");
    println!(
        "{}",
        render_table(&["workers", "wall (ms)", "designs/s", "speedup"], &rows)
    );
    let detected = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!("detected parallelism: {detected} (scaling saturates there)");

    // The same neighbour stream through `OpAmp::design_many_on` on
    // explicit `Executor::new(w)` pools: estimation-graph scaling without
    // the farm's queue in the way.
    let mut exec_thr = Vec::new();
    let mut rows = Vec::new();
    for &w in &workers_axis {
        let exec = ape_exec::Executor::new(w);
        reset_thread_graph();
        let t0 = Instant::now();
        std::hint::black_box(OpAmp::design_many_on(&exec, &tech, &neighbor_pairs));
        let thr = neighbor_pairs.len() as f64 / t0.elapsed().as_secs_f64();
        reset_thread_graph();
        rows.push(vec![
            w.to_string(),
            fmt_val(thr),
            format!("{:.2}x", thr / exec_thr.first().copied().unwrap_or(thr)),
        ]);
        exec_thr.push(thr);
    }
    println!("== Neighbour stream on explicit executors ==");
    println!(
        "{}",
        render_table(&["workers", "designs/s", "speedup"], &rows)
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"estimator\",");
    let _ = writeln!(out, "  \"schema\": {BENCH_SCHEMA},");
    let _ = writeln!(out, "  \"moves\": {moves},");
    let _ = writeln!(out, "  \"cold_moves_per_s\": {:.3},", moves as f64 / cold);
    let _ = writeln!(
        out,
        "  \"incremental_moves_per_s\": {:.3},",
        moves as f64 / incremental
    );
    let _ = writeln!(out, "  \"incremental_speedup_single_var\": {speedup:.3},");
    let _ = writeln!(out, "  \"detected_parallelism\": {detected},");
    let _ = writeln!(
        out,
        "  \"sweep_neighbors\": {{\"jobs\": {}, \"workers\": [1, 2, 4, 8], \"jobs_per_s\": [{}]}},",
        requests.len(),
        sweep_walls
            .iter()
            .map(|t| format!("{:.3}", requests.len() as f64 / t))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Worker-count scaling on explicit executors — gated for monotone
    // throughput by `ape-bench report` (auto-skipped at parallelism 1).
    let _ = writeln!(
        out,
        "  \"executor\": {{\"workers\": [1, 2, 4, 8], \"design_many_per_s\": [{}]}},",
        exec_thr
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Quantile blocks: per-move estimator latency (all three repetitions
    // pooled) and the farm's queue behaviour at the widest sweep.
    let (_, farm_wait, farm_lat) = &sweeps[sweeps.len() - 1];
    let cold_snap = cold_lat.snapshot();
    let incr_snap = incr_lat.snapshot();
    let _ = writeln!(
        out,
        "  {}",
        latency_section(&[
            ("cold_move", &cold_snap),
            ("incremental_move", &incr_snap),
            ("farm_queue_wait", farm_wait),
            ("farm_job", farm_lat),
        ])
    );
    out.push_str("}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_estimator.json", &out).expect("write BENCH_estimator.json");
    println!("wrote results/BENCH_estimator.json");
    ape_probe::finish();

    if smoke && speedup < 1.5 {
        eprintln!("FAIL: incremental speedup {speedup:.2}x is below the 1.5x gate");
        std::process::exit(1);
    }
}
