//! Regenerates **Table 2**: APE estimate vs simulation for the basic
//! analog component library.
//!
//! Usage: `cargo run --release -p ape-bench --bin table2`

use ape_bench::rows::table2_rows;
use ape_bench::{fmt_val, render_table};
use ape_netlist::Technology;

fn main() {
    let _trace = ape_probe::install_from_env();
    let tech = Technology::default_1p2um();
    println!("Table 2: estimation vs simulation for basic analog circuits\n");
    let rows = table2_rows(&tech).expect("table 2 computes on the default process");
    let mut printable = Vec::new();
    for row in &rows {
        let cell = |name: &str, est: bool| -> String {
            row.metric(name)
                .map(|m| fmt_val(if est { m.est } else { m.sim }))
                .unwrap_or_default()
        };
        printable.push(vec![
            row.name.clone(),
            cell("area", true),
            cell("area", false),
            cell("ugf", true),
            cell("ugf", false),
            cell("power", true),
            cell("power", false),
            cell("gain", true),
            cell("gain", false),
            cell("current", true),
            cell("current", false),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Topology", "area est", "area sim", "UGF est", "UGF sim", "P est mW", "P sim mW",
                "gain est", "gain sim", "I est uA", "I sim uA",
            ],
            &printable
        )
    );
    // Accuracy summary like the paper's narrative claim.
    let mut worst: f64 = 0.0;
    let mut count = 0usize;
    let mut total = 0.0;
    for row in &rows {
        for m in &row.metrics {
            worst = worst.max(m.rel_err());
            total += m.rel_err();
            count += 1;
        }
    }
    println!(
        "\n{count} metrics compared; mean |est-sim|/sim = {:.1} %, worst = {:.1} %",
        100.0 * total / count as f64,
        100.0 * worst
    );
    ape_probe::finish();
}
