//! Regenerates **Table 5**: the five analog-module design examples —
//! sample-and-hold, audio amplifier, 4-bit flash ADC, 4th-order Sallen-Key
//! low-pass and 2nd-order Sallen-Key band-pass.
//!
//! Columns, as in the paper:
//! * `spec`      — the requirement;
//! * `ASTRX sim` — simulate the module whose internal op-amp was
//!   synthesized *blind* (stand-alone engine, no presizing);
//! * `APE est`   — APE's analytical estimate;
//! * `APE sim`   — simulate the APE-sized module netlist;
//! * `APE+A/O`   — simulate the module after the APE-seeded (±20 %)
//!   synthesis refined its op-amp.
//!
//! Substitution note (see `DESIGN.md`): the original work re-synthesized the
//! whole module; here the synthesis engine's template covers the op-amp, so
//! the passive network keeps APE's values and the active core is what gets
//! blind- or seeded-synthesized.
//!
//! Usage: `cargo run --release -p ape-bench --bin table5 [evals] [--netlists]`

use ape_bench::{fmt_val, render_table};
use ape_core::module::{AudioAmplifier, FlashAdc, SallenKeyBandPass, SallenKeyLowPass, SampleHold};
use ape_core::opamp::OpAmp;
use ape_netlist::{Circuit, Technology};
use ape_oblx::{
    apply_point_to_opamp, design_point_from_ape, synthesize, InitialPoint, SynthesisOptions,
};
use ape_spice::{
    ac_sweep, dc_operating_point, decade_frequencies, measure, transient, TranOptions,
};

/// Synthesizes an op-amp for the module, blind or seeded from the APE fit.
fn synthesized_opamp(
    tech: &Technology,
    ape: &OpAmp,
    blind: bool,
    evals: usize,
    seed: u64,
) -> OpAmp {
    let init = if blind {
        InitialPoint::Blind
    } else {
        InitialPoint::ApeSeeded {
            point: design_point_from_ape(tech, ape),
            interval_frac: 0.2,
        }
    };
    let opts = SynthesisOptions {
        max_evals: evals,
        seed,
        ..SynthesisOptions::default()
    };
    match synthesize(tech, ape.topology, &ape.spec, &init, &opts) {
        Ok(out) => apply_point_to_opamp(tech, ape, &out.best),
        Err(_) => ape.clone(),
    }
}

/// AC gain + bandwidth of a module testbench, `(gain, f3db)`.
fn gain_bw(tech: &Technology, tb: &Circuit) -> (f64, f64) {
    let out = tb.find_node("out").expect("testbench has out");
    match dc_operating_point(tb, tech) {
        Ok(op) => match ac_sweep(tb, tech, &op, &decade_frequencies(10.0, 1e8, 10).unwrap()) {
            Ok(sweep) => (
                measure::dc_gain(&sweep, out).unwrap(),
                measure::bandwidth_3db(&sweep, out).unwrap_or(0.0),
            ),
            Err(_) => (f64::NAN, f64::NAN),
        },
        Err(_) => (f64::NAN, f64::NAN),
    }
}

fn main() {
    let _trace = ape_probe::install_from_env();
    let args: Vec<String> = std::env::args().collect();
    let evals: usize = args
        .iter()
        .skip(1)
        .find_map(|s| s.parse().ok())
        .unwrap_or(800);
    let netlists = args.iter().any(|a| a == "--netlists");
    let tech = Technology::default_1p2um();
    println!(
        "Table 5: design examples ({} synthesis evaluations per op-amp)\n",
        evals
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push =
        |ckt: &str, param: &str, spec: String, astrx: f64, est: f64, sim: f64, aosim: f64| {
            rows.push(vec![
                ckt.into(),
                param.into(),
                spec,
                fmt_val(astrx),
                fmt_val(est),
                fmt_val(sim),
                fmt_val(aosim),
            ]);
        };

    // ---- Sample & hold ---------------------------------------------------
    {
        let sh = SampleHold::design(&tech, 2.0, 40e3, 10e-12).expect("s&h designs");
        let blind = {
            let mut m = sh.clone();
            m.opamp = synthesized_opamp(&tech, &sh.opamp, true, evals, 51);
            m
        };
        let seeded = {
            let mut m = sh.clone();
            m.opamp = synthesized_opamp(&tech, &sh.opamp, false, evals, 52);
            m
        };
        let (g_sim, bw_sim) = gain_bw(&tech, &sh.testbench_tracking(&tech).expect("tb"));
        let (g_bl, bw_bl) = gain_bw(&tech, &blind.testbench_tracking(&tech).expect("tb"));
        let (g_ao, bw_ao) = gain_bw(&tech, &seeded.testbench_tracking(&tech).expect("tb"));
        push(
            "s&h",
            "gain",
            "2.0".into(),
            g_bl,
            sh.perf.dc_gain.unwrap_or(0.0),
            g_sim,
            g_ao,
        );
        push(
            "s&h",
            "BW kHz",
            "20".into(),
            bw_bl * 1e-3,
            sh.perf.bw_hz.unwrap_or(0.0) * 1e-3,
            bw_sim * 1e-3,
            bw_ao * 1e-3,
        );
        push(
            "s&h",
            "area um2",
            "500".into(),
            f64::NAN,
            sh.perf.gate_area_um2(),
            sh.testbench_tracking(&tech).expect("tb").total_gate_area() * 1e12,
            f64::NAN,
        );
        if netlists {
            println!(
                "--- s&h netlist (Figure 3b) ---\n{}",
                sh.testbench_tracking(&tech)
                    .expect("tb")
                    .to_spice_deck(&tech)
            );
        }
    }

    // ---- Audio amplifier ---------------------------------------------------
    {
        let amp = AudioAmplifier::design(&tech, 100.0, 20e3, 10e-12).expect("amp designs");
        let blind = {
            let mut m = amp.clone();
            m.opamp = synthesized_opamp(&tech, &amp.opamp, true, evals, 53);
            m
        };
        let seeded = {
            let mut m = amp.clone();
            m.opamp = synthesized_opamp(&tech, &amp.opamp, false, evals, 54);
            m
        };
        let (g_sim, bw_sim) = gain_bw(&tech, &amp.testbench(&tech).expect("tb"));
        let (g_bl, bw_bl) = gain_bw(&tech, &blind.testbench(&tech).expect("tb"));
        let (g_ao, bw_ao) = gain_bw(&tech, &seeded.testbench(&tech).expect("tb"));
        push(
            "amp",
            "gain",
            "100".into(),
            g_bl,
            amp.perf.dc_gain.unwrap_or(0.0),
            g_sim,
            g_ao,
        );
        push(
            "amp",
            "BW kHz",
            "20".into(),
            bw_bl * 1e-3,
            amp.perf.bw_hz.unwrap_or(0.0) * 1e-3,
            bw_sim * 1e-3,
            bw_ao * 1e-3,
        );
        push(
            "amp",
            "area um2",
            "1000".into(),
            f64::NAN,
            amp.perf.gate_area_um2(),
            amp.testbench(&tech).expect("tb").total_gate_area() * 1e12,
            f64::NAN,
        );
        if netlists {
            println!(
                "--- audio amp netlist (Figure 3a) ---\n{}",
                amp.testbench(&tech).expect("tb").to_spice_deck(&tech)
            );
        }
    }

    // ---- 4-bit flash ADC ---------------------------------------------------
    {
        let adc = FlashAdc::design(&tech, 4, 5e-6).expect("adc designs");
        let delay_sim = |cmp_amp: &OpAmp| -> f64 {
            let mut cmp = adc.comparator.clone();
            cmp.opamp = cmp_amp.clone();
            let Ok(tb) = cmp.testbench_step(&tech, 1e-6) else {
                return f64::NAN;
            };
            let Ok(op) = dc_operating_point(&tb, &tech) else {
                return f64::NAN;
            };
            let Ok(tr) = transient(&tb, &tech, &op, TranOptions::new(5e-8, 16e-6)) else {
                return f64::NAN;
            };
            let out = tb.find_node("out").expect("tb has out");
            measure::crossing_time(&tr, out, tech.vdd / 2.0, true)
                .map(|t| (t - 1e-6) * 1e6)
                .unwrap_or(f64::NAN)
        };
        let blind_amp = synthesized_opamp(&tech, &adc.comparator.opamp, true, evals, 55);
        let seeded_amp = synthesized_opamp(&tech, &adc.comparator.opamp, false, evals, 56);
        push("adc", "bits", "4".into(), 4.0, 4.0, 4.0, 4.0);
        push(
            "adc",
            "delay us",
            "5".into(),
            delay_sim(&blind_amp),
            adc.perf.delay_s.unwrap_or(0.0) * 1e6,
            delay_sim(&adc.comparator.opamp),
            delay_sim(&seeded_amp),
        );
        let (full_tb, _) = adc.testbench_dc(&tech, 2.5).expect("adc tb");
        push(
            "adc",
            "area um2",
            "5000".into(),
            f64::NAN,
            adc.perf.gate_area_um2(),
            full_tb.total_gate_area() * 1e12,
            f64::NAN,
        );
        if netlists {
            println!(
                "--- flash ADC netlist (Figure 3e) ---\n{}",
                full_tb.to_spice_deck(&tech)
            );
        }
    }

    // ---- 4th-order Sallen-Key Butterworth LPF ------------------------------
    {
        let lpf = SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).expect("lpf designs");
        let swap = |blind: bool, seed: u64| {
            let mut m = lpf.clone();
            for (k, st) in m.stages.iter_mut().enumerate() {
                st.opamp = synthesized_opamp(&tech, &st.opamp, blind, evals, seed + k as u64);
            }
            m
        };
        let blind = swap(true, 57);
        let seeded = swap(false, 67);
        let (g_sim, f3_sim) = gain_bw(&tech, &lpf.testbench(&tech).expect("tb"));
        let (g_bl, f3_bl) = gain_bw(&tech, &blind.testbench(&tech).expect("tb"));
        let (g_ao, f3_ao) = gain_bw(&tech, &seeded.testbench(&tech).expect("tb"));
        push(
            "lpf",
            "f3db kHz",
            "1".into(),
            f3_bl * 1e-3,
            lpf.perf.bw_hz.unwrap_or(0.0) * 1e-3,
            f3_sim * 1e-3,
            f3_ao * 1e-3,
        );
        push(
            "lpf",
            "f20db kHz",
            "1.78".into(),
            f64::NAN,
            lpf.frequency_at_attenuation(20.0) * 1e-3,
            f64::NAN,
            f64::NAN,
        );
        push(
            "lpf",
            "gain",
            "2.57".into(),
            g_bl,
            lpf.perf.dc_gain.unwrap_or(0.0),
            g_sim,
            g_ao,
        );
        push(
            "lpf",
            "area um2",
            "10000".into(),
            f64::NAN,
            lpf.perf.gate_area_um2(),
            lpf.testbench(&tech).expect("tb").total_gate_area() * 1e12,
            f64::NAN,
        );
        if netlists {
            println!(
                "--- LPF netlist (Figure 3c) ---\n{}",
                lpf.testbench(&tech).expect("tb").to_spice_deck(&tech)
            );
        }
    }

    // ---- 2nd-order Sallen-Key BPF -------------------------------------------
    {
        let bpf = SallenKeyBandPass::design(&tech, 1e3, 1.0, 10e-12).expect("bpf designs");
        let peak_f0 = |tb: &Circuit| -> (f64, f64) {
            let out = tb.find_node("out").expect("tb has out");
            let Ok(op) = dc_operating_point(tb, &tech) else {
                return (f64::NAN, f64::NAN);
            };
            let Ok(sweep) = ac_sweep(tb, &tech, &op, &decade_frequencies(20.0, 50e3, 30).unwrap())
            else {
                return (f64::NAN, f64::NAN);
            };
            let mags = sweep.magnitude(out);
            let (k, peak) = mags
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(k, m)| (k, *m))
                .unwrap_or((0, f64::NAN));
            (peak, sweep.freqs[k])
        };
        let swap = |blind: bool, seed: u64| {
            let mut m = bpf.clone();
            m.opamp = synthesized_opamp(&tech, &bpf.opamp, blind, evals, seed);
            m
        };
        let blind = swap(true, 77);
        let seeded = swap(false, 78);
        let (pk_sim, f0_sim) = peak_f0(&bpf.testbench(&tech).expect("tb"));
        let (pk_bl, f0_bl) = peak_f0(&blind.testbench(&tech).expect("tb"));
        let (pk_ao, f0_ao) = peak_f0(&seeded.testbench(&tech).expect("tb"));
        push(
            "bpf",
            "f0 kHz",
            "1".into(),
            f0_bl * 1e-3,
            bpf.f0 * 1e-3,
            f0_sim * 1e-3,
            f0_ao * 1e-3,
        );
        push(
            "bpf",
            "gain",
            "1.83".into(),
            pk_bl,
            bpf.perf.dc_gain.unwrap_or(0.0),
            pk_sim,
            pk_ao,
        );
        push(
            "bpf",
            "BW kHz",
            "1".into(),
            f64::NAN,
            bpf.perf.bw_hz.unwrap_or(0.0) * 1e-3,
            f64::NAN,
            f64::NAN,
        );
        push(
            "bpf",
            "area um2",
            "5000".into(),
            f64::NAN,
            bpf.perf.gate_area_um2(),
            bpf.testbench(&tech).expect("tb").total_gate_area() * 1e12,
            f64::NAN,
        );
        if netlists {
            println!(
                "--- BPF netlist (Figure 3d) ---\n{}",
                bpf.testbench(&tech).expect("tb").to_spice_deck(&tech)
            );
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "ckt",
                "param",
                "spec",
                "ASTRX sim",
                "APE est",
                "APE sim",
                "APE+A/O sim"
            ],
            &rows
        )
    );
    println!("\n(NaN cells: quantity not re-measured for that column, as in the paper's blanks.)");
    ape_probe::finish();
}
