//! Est-vs-sim row computations for Tables 2, 3 and 5.

use crate::specs::OpAmpTask;
use ape_core::basic::{
    CurrentMirror, DcVolt, DiffPair, DiffTopology, Follower, GainStage, GainTopology,
    MirrorTopology,
};
use ape_core::module::{AudioAmplifier, FlashAdc, SallenKeyBandPass, SallenKeyLowPass, SampleHold};
use ape_core::opamp::OpAmp;
use ape_netlist::{Circuit, SourceWaveform, Technology};
use ape_spice::{
    ac_sweep, dc_operating_point, decade_frequencies, measure, transient, TranOptions,
};
use std::error::Error;

/// One estimated-vs-simulated metric.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name, e.g. `"gain"`.
    pub name: &'static str,
    /// Display unit.
    pub unit: &'static str,
    /// APE's analytical estimate.
    pub est: f64,
    /// The simulator's measurement on the emitted netlist.
    pub sim: f64,
}

impl Metric {
    /// Relative difference `|est − sim| / |sim|`.
    pub fn rel_err(&self) -> f64 {
        if self.sim == 0.0 {
            if self.est == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((self.est - self.sim) / self.sim).abs()
        }
    }
}

/// One component's row: a name plus its metric set.
#[derive(Debug, Clone)]
pub struct ComponentRow {
    /// Component name as the paper spells it.
    pub name: String,
    /// The est/sim metrics.
    pub metrics: Vec<Metric>,
}

impl ComponentRow {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

type BoxError = Box<dyn Error + Send + Sync>;

/// Computes the nine basic-component rows of Table 2.
///
/// # Errors
///
/// Any design or simulation failure aborts the table (these are the
/// reproduction's own regression gates).
pub fn table2_rows(tech: &Technology) -> Result<Vec<ComponentRow>, BoxError> {
    let mut rows = Vec::new();

    // --- DCVolt: 2.5 V at 100 µA --------------------------------------
    {
        let d = DcVolt::design(tech, 2.5, 100e-6)?;
        let tb = d.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        rows.push(ComponentRow {
            name: "DCVolt".into(),
            metrics: vec![
                Metric {
                    name: "area",
                    unit: "um2",
                    est: d.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
                Metric {
                    name: "power",
                    unit: "mW",
                    est: d.perf.power_mw(),
                    sim: op.supply_power(&tb) * 1e3,
                },
                Metric {
                    name: "vout",
                    unit: "V",
                    est: 2.5,
                    sim: op.voltage(out),
                },
                Metric {
                    name: "current",
                    unit: "uA",
                    est: 100.0,
                    sim: -op.branch_current("VDD").unwrap_or(0.0) * 1e6,
                },
            ],
        });
    }

    // --- Current mirrors at 100 µA ------------------------------------
    for topo in [MirrorTopology::Simple, MirrorTopology::Wilson] {
        let m = CurrentMirror::design(tech, topo, 100e-6, 1.0)?;
        let tb = m.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        rows.push(ComponentRow {
            name: topo.to_string(),
            metrics: vec![
                Metric {
                    name: "area",
                    unit: "um2",
                    est: m.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
                // Reference-branch power only: the output branch is fed by
                // the measurement source, not the supply.
                Metric {
                    name: "power",
                    unit: "mW",
                    est: m.perf.power_mw(),
                    sim: op.source_power(&tb, "VDD").unwrap_or(0.0) * 1e3,
                },
                Metric {
                    name: "current",
                    unit: "uA",
                    est: 100.0,
                    sim: -op.branch_current("VMEAS").unwrap_or(0.0) * 1e6,
                },
            ],
        });
    }

    // --- Gain stages ----------------------------------------------------
    let gain_cases = [
        (GainTopology::NmosLoad, -8.5, 120e-6),
        (GainTopology::CmosActive, -19.0, 120e-6),
        (GainTopology::CmosDiode, -5.1, 46e-6),
    ];
    for (topo, gain, ibias) in gain_cases {
        let g = GainStage::design(tech, topo, gain, ibias, 1e-12)?;
        let tb = g.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(10.0, 1e9, 10)?)?;
        let a_sim = measure::dc_gain(&sweep, out).unwrap();
        let u_sim = measure::unity_gain_frequency(&sweep, out).unwrap_or(0.0);
        rows.push(ComponentRow {
            name: topo.to_string(),
            metrics: vec![
                Metric {
                    name: "area",
                    unit: "um2",
                    est: g.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
                Metric {
                    name: "ugf",
                    unit: "MHz",
                    est: g.perf.ugf_mhz().unwrap_or(0.0),
                    sim: u_sim * 1e-6,
                },
                Metric {
                    name: "power",
                    unit: "mW",
                    est: g.perf.power_mw(),
                    sim: op.source_power(&tb, "VDD").unwrap_or(0.0) * 1e3,
                },
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: g.perf.dc_gain.unwrap_or(0.0),
                    sim: -a_sim,
                },
            ],
        });
    }

    // --- Follower at 100 µA ---------------------------------------------
    {
        let f = Follower::design(tech, 100e-6, 10e-12)?;
        let tb = f.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let sweep = ac_sweep(&tb, tech, &op, &[100.0])?;
        let sink_current = op.mos.get("MSINK").map(|m| m.eval.ids).unwrap_or(0.0);
        rows.push(ComponentRow {
            name: "Follower".into(),
            metrics: vec![
                Metric {
                    name: "area",
                    unit: "um2",
                    est: f.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
                Metric {
                    name: "power",
                    unit: "mW",
                    est: f.perf.power_mw(),
                    sim: op.supply_power(&tb) * 1e3,
                },
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: f.perf.dc_gain.unwrap_or(0.0),
                    sim: measure::dc_gain(&sweep, out).unwrap(),
                },
                Metric {
                    name: "current",
                    unit: "uA",
                    est: 100.0,
                    sim: sink_current * 1e6,
                },
            ],
        });
    }

    // --- Differential pairs at 1 µA --------------------------------------
    for (topo, adm) in [
        (DiffTopology::DiodeLoad, 10.0),
        (DiffTopology::MirrorLoad, 1000.0),
    ] {
        let p = DiffPair::design(tech, topo, adm, 1e-6, 1e-12)?;
        let tb = p.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let outb = tb.find_node("outb").expect("testbench has outb");
        let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(10.0, 1e9, 10)?)?;
        // The diode-load pair is fully differential: gain and UGF are
        // measured on out − outb, not single-ended.
        let (a_sim, u_sim) = match topo {
            DiffTopology::DiodeLoad => {
                let mags: Vec<f64> = (0..sweep.len())
                    .map(|k| (sweep.voltage(k, out) - sweep.voltage(k, outb)).norm())
                    .collect();
                let mut u = 0.0;
                for k in 1..mags.len() {
                    if mags[k - 1] >= 1.0 && mags[k] < 1.0 {
                        let (f0, f1) = (sweep.freqs[k - 1], sweep.freqs[k]);
                        let t = (1f64.ln() - mags[k - 1].ln()) / (mags[k].ln() - mags[k - 1].ln());
                        u = f0 * (f1 / f0).powf(t.clamp(0.0, 1.0));
                        break;
                    }
                }
                (-mags[0], u)
            }
            DiffTopology::MirrorLoad => (
                measure::dc_gain(&sweep, out).unwrap(),
                measure::unity_gain_frequency(&sweep, out).unwrap_or(0.0),
            ),
        };
        let tail_sim = op.mos.get("MTAIL").map(|m| m.eval.ids).unwrap_or(0.0);
        rows.push(ComponentRow {
            name: topo.to_string(),
            metrics: vec![
                Metric {
                    name: "area",
                    unit: "um2",
                    est: p.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
                Metric {
                    name: "ugf",
                    unit: "MHz",
                    est: p.perf.ugf_mhz().unwrap_or(0.0),
                    sim: u_sim * 1e-6,
                },
                Metric {
                    name: "power",
                    unit: "mW",
                    est: p.perf.power_mw(),
                    sim: op.source_power(&tb, "VDD").unwrap_or(0.0) * 1e3,
                },
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: p.perf.dc_gain.unwrap_or(0.0),
                    sim: a_sim,
                },
                Metric {
                    name: "current",
                    unit: "uA",
                    est: 1.0,
                    sim: tail_sim * 1e6,
                },
            ],
        });
    }

    Ok(rows)
}

/// Measures an op-amp's output impedance by injecting a 1 A AC current at
/// the output with the inputs held at DC.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sim_zout(tech: &Technology, amp: &OpAmp) -> Result<f64, BoxError> {
    let mut ckt = Circuit::new("zout-tb");
    let vdd = ckt.node("vdd");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    let out = ckt.node("out");
    ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
    let vcm = tech.vdd / 2.0;
    ckt.add_vdc("VINP", inp, Circuit::GROUND, vcm)?;
    ckt.add_vdc("VINN", inn, Circuit::GROUND, vcm)?;
    amp.build_into(&mut ckt, tech, "X1", inp, inn, out, vdd)?;
    ckt.add_isource("IZ", Circuit::GROUND, out, 0.0, 1.0, SourceWaveform::Dc)?;
    let op = dc_operating_point(&ckt, tech)?;
    let sweep = ac_sweep(&ckt, tech, &op, &[1e3])?;
    Ok(sweep.voltage(0, out).norm())
}

/// Measures an op-amp's common-mode rejection ratio in dB: the differential
/// gain over the gain with both inputs driven in phase.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sim_cmrr_db(tech: &Technology, amp: &OpAmp) -> Result<f64, BoxError> {
    let build = |common: bool| -> Result<f64, BoxError> {
        let mut ckt = Circuit::new("cmrr-tb");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        ckt.add_vdc("VDD", vdd, Circuit::GROUND, tech.vdd)?;
        let vcm = tech.vdd / 2.0;
        let (acp, acn) = if common { (1.0, 1.0) } else { (0.5, -0.5) };
        ckt.add_vsource("VINP", inp, Circuit::GROUND, vcm, acp, SourceWaveform::Dc)?;
        ckt.add_vsource("VINN", inn, Circuit::GROUND, vcm, acn, SourceWaveform::Dc)?;
        amp.build_into(&mut ckt, tech, "X1", inp, inn, out, vdd)?;
        ckt.add_capacitor("CL", out, Circuit::GROUND, amp.spec.cl)?;
        let op = dc_operating_point(&ckt, tech)?;
        let sweep = ac_sweep(&ckt, tech, &op, &[10.0])?;
        Ok(sweep.voltage(0, out).norm())
    };
    let adm = build(false)?;
    let acm = build(true)?.max(1e-12);
    Ok(20.0 * (adm / acm).log10())
}

/// Measures slew rate with a unity-feedback step sized to the estimate.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sim_slew(tech: &Technology, amp: &OpAmp) -> Result<f64, BoxError> {
    let sr_est = amp.perf.slew_v_per_s.unwrap_or(1e6).max(1e3);
    let window = (8.0 / sr_est).clamp(2e-6, 100e-6);
    let tb = amp.testbench_follower_step(tech, 2.0, 3.0, window / 8.0)?;
    let op = dc_operating_point(&tb, tech)?;
    let tr = transient(&tb, tech, &op, TranOptions::new(window / 400.0, window))?;
    let out = tb.find_node("out").expect("testbench has out");
    // 20-80 % measurement rejects the input edge's feedthrough spike.
    measure::slew_rate_20_80(&tr, out, 2.0, 3.0)
        .ok_or_else(|| "output never completed the 20-80 % traversal".into())
}

/// Computes one Table 3 row: estimate vs full simulation for a sized op-amp.
///
/// # Errors
///
/// Design or simulation failures abort the row.
pub fn table3_row(tech: &Technology, task: &OpAmpTask) -> Result<ComponentRow, BoxError> {
    let amp = OpAmp::design(tech, task.topology, task.spec)?;
    let tb = amp.testbench_open_loop(tech)?;
    let op = dc_operating_point(&tb, tech)?;
    let out = tb.find_node("out").expect("testbench has out");
    let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(10.0, 2e9, 8)?)?;
    let gain_sim = measure::dc_gain(&sweep, out).unwrap();
    let ugf_sim = measure::unity_gain_frequency(&sweep, out).unwrap_or(0.0);
    let tail_sim = op
        .mos
        .get("X1.MTAIL")
        .or_else(|| op.mos.get("X1.MWC"))
        .map(|m| m.eval.ids)
        .unwrap_or(0.0);
    let zout_sim = sim_zout(tech, &amp)?;
    let cmrr_sim = sim_cmrr_db(tech, &amp)?;
    let slew_sim = sim_slew(tech, &amp)?;
    Ok(ComponentRow {
        name: task.name.to_string(),
        metrics: vec![
            Metric {
                name: "power",
                unit: "mW",
                est: amp.perf.power_mw(),
                sim: op.source_power(&tb, "VDD").unwrap_or(0.0) * 1e3,
            },
            Metric {
                name: "adm",
                unit: "V/V",
                est: amp.perf.dc_gain.unwrap_or(0.0),
                sim: gain_sim,
            },
            Metric {
                name: "ugf",
                unit: "MHz",
                est: amp.perf.ugf_mhz().unwrap_or(0.0),
                sim: ugf_sim * 1e-6,
            },
            Metric {
                name: "itail",
                unit: "uA",
                est: amp.itail * 1e6,
                sim: tail_sim * 1e6,
            },
            Metric {
                name: "zout",
                unit: "kohm",
                est: amp.perf.zout_ohm.unwrap_or(0.0) * 1e-3,
                sim: zout_sim * 1e-3,
            },
            Metric {
                name: "area",
                unit: "um2",
                est: amp.perf.gate_area_um2(),
                sim: tb.total_gate_area() * 1e12,
            },
            Metric {
                name: "cmrr",
                unit: "dB",
                est: amp.perf.cmrr_db.unwrap_or(0.0),
                sim: cmrr_sim,
            },
            Metric {
                name: "slew",
                unit: "V/us",
                est: amp.perf.slew_v_per_us().unwrap_or(0.0),
                sim: slew_sim * 1e-6,
            },
        ],
    })
}

/// The five Table 5 module rows, APE estimate vs full simulation.
/// (The synthesis columns — stand-alone and APE-seeded ASTRX/OBLX — are
/// produced by the `table5` binary; they take minutes, not seconds.)
///
/// # Errors
///
/// Design or simulation failures abort the table.
pub fn table5_ape_rows(tech: &Technology) -> Result<Vec<ComponentRow>, BoxError> {
    let mut rows = Vec::new();

    // --- Sample & hold: gain 2, BW spec 20 kHz (designed with 2x margin).
    {
        let sh = SampleHold::design(tech, 2.0, 40e3, 10e-12)?;
        let tb = sh.testbench_tracking(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(100.0, 1e7, 10)?)?;
        rows.push(ComponentRow {
            name: "s&h".into(),
            metrics: vec![
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: sh.perf.dc_gain.unwrap_or(0.0),
                    sim: measure::dc_gain(&sweep, out).unwrap(),
                },
                Metric {
                    name: "bw",
                    unit: "kHz",
                    est: sh.perf.bw_hz.unwrap_or(0.0) * 1e-3,
                    sim: measure::bandwidth_3db(&sweep, out).unwrap_or(0.0) * 1e-3,
                },
                Metric {
                    name: "area",
                    unit: "um2",
                    est: sh.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
            ],
        });
    }

    // --- Audio amplifier: open-loop gain 100, BW 20 kHz.
    {
        let amp = AudioAmplifier::design(tech, 100.0, 20e3, 10e-12)?;
        let tb = amp.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(10.0, 1e8, 10)?)?;
        rows.push(ComponentRow {
            name: "amp".into(),
            metrics: vec![
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: amp.perf.dc_gain.unwrap_or(0.0),
                    sim: measure::dc_gain(&sweep, out).unwrap(),
                },
                Metric {
                    name: "bw",
                    unit: "kHz",
                    est: amp.perf.bw_hz.unwrap_or(0.0) * 1e-3,
                    sim: measure::bandwidth_3db(&sweep, out).unwrap_or(0.0) * 1e-3,
                },
                Metric {
                    name: "area",
                    unit: "um2",
                    est: amp.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
            ],
        });
    }

    // --- 4-bit flash ADC, 5 µs delay spec.
    {
        let adc = FlashAdc::design(tech, 4, 5e-6)?;
        let cmp = &adc.comparator;
        let tb = cmp.testbench_step(tech, 1e-6)?;
        let op = dc_operating_point(&tb, tech)?;
        let tr = transient(&tb, tech, &op, TranOptions::new(5e-8, 16e-6))?;
        let out = tb.find_node("out").expect("testbench has out");
        let t_cross = measure::crossing_time(&tr, out, tech.vdd / 2.0, true).unwrap_or(f64::NAN);
        let (full_tb, _) = adc.testbench_dc(tech, 2.5)?;
        rows.push(ComponentRow {
            name: "adc".into(),
            metrics: vec![
                Metric {
                    name: "bits",
                    unit: "",
                    est: 4.0,
                    sim: 4.0,
                },
                Metric {
                    name: "delay",
                    unit: "us",
                    est: adc.perf.delay_s.unwrap_or(0.0) * 1e6,
                    sim: (t_cross - 1e-6) * 1e6,
                },
                Metric {
                    name: "area",
                    unit: "um2",
                    est: adc.perf.gate_area_um2(),
                    sim: full_tb.total_gate_area() * 1e12,
                },
            ],
        });
    }

    // --- 4th-order Sallen-Key Butterworth low-pass at 1 kHz.
    {
        let lpf = SallenKeyLowPass::design(tech, 1e3, 4, 10e-12)?;
        let tb = lpf.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(10.0, 1e5, 20)?)?;
        let g_sim = measure::dc_gain(&sweep, out).unwrap();
        let f3_sim = measure::bandwidth_3db(&sweep, out).unwrap_or(0.0);
        let f20_sim = measure::crossing_frequency(&sweep, out, g_sim / 10.0).unwrap_or(0.0);
        rows.push(ComponentRow {
            name: "lpf".into(),
            metrics: vec![
                Metric {
                    name: "f3db",
                    unit: "kHz",
                    est: lpf.perf.bw_hz.unwrap_or(0.0) * 1e-3,
                    sim: f3_sim * 1e-3,
                },
                Metric {
                    name: "f20db",
                    unit: "kHz",
                    est: lpf.frequency_at_attenuation(20.0) * 1e-3,
                    sim: f20_sim * 1e-3,
                },
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: lpf.perf.dc_gain.unwrap_or(0.0),
                    sim: g_sim,
                },
                Metric {
                    name: "area",
                    unit: "um2",
                    est: lpf.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
            ],
        });
    }

    // --- 2nd-order Sallen-Key band-pass at 1 kHz, Q = 1.
    {
        let bpf = SallenKeyBandPass::design(tech, 1e3, 1.0, 10e-12)?;
        let tb = bpf.testbench(tech)?;
        let op = dc_operating_point(&tb, tech)?;
        let out = tb.find_node("out").expect("testbench has out");
        let sweep = ac_sweep(&tb, tech, &op, &decade_frequencies(20.0, 50e3, 30)?)?;
        let mags = sweep.magnitude(out);
        let (kmax, peak) = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite magnitudes"))
            .map(|(k, m)| (k, *m))
            .unwrap_or((0, 0.0));
        let f0_sim = sweep.freqs[kmax];
        // −3 dB band edges around the peak.
        let target = peak / 2f64.sqrt();
        let mut lo = f0_sim / 10.0;
        let mut hi = f0_sim * 10.0;
        for k in (0..kmax).rev() {
            if mags[k] < target {
                lo = sweep.freqs[k + 1];
                break;
            }
        }
        for (k, &m) in mags.iter().enumerate().skip(kmax) {
            if m < target {
                hi = sweep.freqs[k - 1];
                break;
            }
        }
        rows.push(ComponentRow {
            name: "bpf".into(),
            metrics: vec![
                Metric {
                    name: "f0",
                    unit: "kHz",
                    est: bpf.f0 * 1e-3,
                    sim: f0_sim * 1e-3,
                },
                Metric {
                    name: "gain",
                    unit: "V/V",
                    est: bpf.perf.dc_gain.unwrap_or(0.0),
                    sim: peak,
                },
                Metric {
                    name: "bw",
                    unit: "kHz",
                    est: bpf.perf.bw_hz.unwrap_or(0.0) * 1e-3,
                    sim: (hi - lo) * 1e-3,
                },
                Metric {
                    name: "area",
                    unit: "um2",
                    est: bpf.perf.gate_area_um2(),
                    sim: tb.total_gate_area() * 1e12,
                },
            ],
        });
    }

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_rel_err() {
        let m = Metric {
            name: "x",
            unit: "",
            est: 1.1,
            sim: 1.0,
        };
        assert!((m.rel_err() - 0.1).abs() < 1e-12);
        let z = Metric {
            name: "x",
            unit: "",
            est: 0.0,
            sim: 0.0,
        };
        assert_eq!(z.rel_err(), 0.0);
    }

    #[test]
    fn table2_accuracy_gate() {
        // The reproduction's analogue of "Table 2 shows that the models
        // used in the APE are reasonably accurate".
        let tech = Technology::default_1p2um();
        let rows = table2_rows(&tech).expect("table 2 computes");
        assert_eq!(rows.len(), 9);
        for row in &rows {
            for m in &row.metrics {
                assert!(
                    m.rel_err() < 0.5,
                    "{} / {}: est {} vs sim {} ({}%)",
                    row.name,
                    m.name,
                    m.est,
                    m.sim,
                    m.rel_err() * 100.0
                );
            }
        }
    }

    #[test]
    fn table3_first_opamp_row() {
        let tech = Technology::default_1p2um();
        let tasks = crate::specs::table3_opamps();
        let row = table3_row(&tech, &tasks[3]).expect("OpAmp4 row computes");
        for m in &row.metrics {
            // Slew and CMRR are the loosest compositions; others gate at 60 %.
            let tol = match m.name {
                "slew" | "cmrr" | "zout" => 3.0,
                _ => 0.6,
            };
            assert!(
                m.rel_err() < tol,
                "{}: est {} vs sim {}",
                m.name,
                m.est,
                m.sim
            );
        }
    }
}
