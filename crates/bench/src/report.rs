//! The standardized `BENCH_*.json` schema and the regression differ behind
//! `cargo run -p ape-bench --bin report`.
//!
//! Every bench JSON carries `"schema": 2` and a `"latency_ns"` section of
//! per-metric quantile blocks rendered by [`latency_block`] from
//! [`ape_probe::HistogramSnapshot`]s, so CI and humans read p50/p99 the
//! same way in every file. [`diff`] flattens two reports to dotted numeric
//! paths and flags the ones that moved the wrong way past a tolerance,
//! with the good direction inferred from the key name ([`direction_for`]).

use crate::minijson::Json;
use ape_probe::HistogramSnapshot;
use std::fmt::Write as _;

/// Current version stamped into every `BENCH_*.json` as `"schema"`.
pub const BENCH_SCHEMA: u64 = 2;

/// Renders one histogram as the standardized latency JSON object:
/// `{"count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"}`.
pub fn latency_block(h: &HistogramSnapshot) -> String {
    let max = if h.count == 0 { 0.0 } else { h.max };
    format!(
        "{{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {:.1}, \"p90_ns\": {:.1}, \"p99_ns\": {:.1}, \"p999_ns\": {:.1}, \"max_ns\": {max:.1}}}",
        h.count,
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99(),
        h.p999(),
    )
}

/// Renders the whole `"latency_ns"` section (sorted by metric name) ready
/// to drop into a bench JSON: `"latency_ns": {"name": {...}, ...}`.
pub fn latency_section(entries: &[(&str, &HistogramSnapshot)]) -> String {
    let mut sorted: Vec<&(&str, &HistogramSnapshot)> = entries.iter().collect();
    sorted.sort_by_key(|(name, _)| *name);
    let mut out = String::from("\"latency_ns\": {");
    for (i, (name, h)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{name}\": {}", latency_block(h));
    }
    out.push('}');
    out
}

/// Which way a metric should move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, speedups, hit counts).
    HigherIsBetter,
    /// Smaller is better (latencies, allocation counts, misses).
    LowerIsBetter,
    /// No quality direction (configuration echoes, sample counts).
    Informational,
}

/// Infers the quality direction of a metric from its dotted path.
///
/// Heuristic by construction — the emitters name their keys so that this
/// classification is right: throughputs end in `per_s`, latencies in `_ns`,
/// and configuration echoes (`schema`, `samples`, `count`, ...) match
/// neither list.
pub fn direction_for(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf == "count" || leaf == "schema" {
        return Direction::Informational;
    }
    const HIGHER: [&str; 6] = [
        "per_s",
        "speedup",
        "hit",
        "pareto",
        "parallelism",
        "success",
    ];
    const LOWER: [&str; 9] = [
        "_ns", "latency", "wall", "alloc", "miss", "repivot", "wait", "failure", "rel_err",
    ];
    if HIGHER.iter().any(|m| path.contains(m)) {
        Direction::HigherIsBetter
    } else if LOWER.iter().any(|m| path.contains(m)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One numeric path compared across two reports.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path of the metric (arrays indexed, e.g. `circuits.0.name`).
    pub path: String,
    /// Value in the baseline report.
    pub old: f64,
    /// Value in the new report.
    pub new: f64,
    /// The metric's quality direction.
    pub direction: Direction,
    /// `true` when the metric moved the bad way past the tolerance.
    pub regression: bool,
}

impl Delta {
    /// Relative change `new/old - 1`, positive when the value grew.
    pub fn rel_change(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else {
                f64::INFINITY * self.new.signum()
            }
        } else {
            self.new / self.old - 1.0
        }
    }
}

fn flatten(prefix: &str, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Obj(members) => {
            for (k, child) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&path, child, out);
            }
        }
        Json::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{i}"), child, out);
            }
        }
        _ => {}
    }
}

/// Compares two parsed bench reports. Every numeric path present in both
/// becomes a [`Delta`]; a delta is a regression when its direction is
/// known and it moved the bad way by more than `tolerance` (fractional:
/// `0.10` = 10 %).
pub fn diff(old: &Json, new: &Json, tolerance: f64) -> Vec<Delta> {
    let mut old_paths = Vec::new();
    let mut new_paths = Vec::new();
    flatten("", old, &mut old_paths);
    flatten("", new, &mut new_paths);
    let mut deltas = Vec::new();
    for (path, old_v) in &old_paths {
        let Some((_, new_v)) = new_paths.iter().find(|(p, _)| p == path) else {
            continue;
        };
        let direction = direction_for(path);
        let regression = match direction {
            Direction::HigherIsBetter => *new_v < *old_v * (1.0 - tolerance),
            Direction::LowerIsBetter => *new_v > *old_v * (1.0 + tolerance),
            Direction::Informational => false,
        };
        deltas.push(Delta {
            path: path.clone(),
            old: *old_v,
            new: *new_v,
            direction,
            regression,
        });
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minijson::parse;

    #[test]
    fn latency_block_shape() {
        let h = ape_probe::Histogram::new();
        h.record(1000.0);
        h.record(3000.0);
        let block = latency_block(&h.snapshot());
        let doc = parse(&block).expect("block is valid json");
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(2.0));
        for key in ["mean_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns"] {
            let v = doc.get(key).and_then(Json::as_f64).expect(key);
            assert!((0.0..=3000.0).contains(&v), "{key} = {v}");
        }
        // An empty histogram renders finite zeros, not inf/nan.
        let empty = latency_block(&HistogramSnapshot::empty());
        parse(&empty).expect("empty block is valid json");
        assert!(!empty.contains("inf") && !empty.contains("NaN"), "{empty}");
    }

    #[test]
    fn direction_heuristics() {
        assert_eq!(
            direction_for("sweep.jobs_per_s.0"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_for("incremental_speedup_single_var"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_for("latency_ns.job.p99_ns"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_for("circuits.0.ac_sweep_alloc_events"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_for("calibrated.max_rel_err"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_for("corrections"), Direction::Informational);
        assert_eq!(direction_for("moves"), Direction::Informational);
        assert_eq!(
            direction_for("latency_ns.job.count"),
            Direction::Informational
        );
        assert_eq!(direction_for("schema"), Direction::Informational);
    }

    #[test]
    fn diff_flags_only_bad_moves() {
        let old = parse(r#"{"x_per_s": 100, "p99_ns": 50, "moves": 10}"#).expect("old");
        let new = parse(r#"{"x_per_s": 80, "p99_ns": 54, "moves": 99}"#).expect("new");
        let deltas = diff(&old, &new, 0.10);
        let by_path = |p: &str| deltas.iter().find(|d| d.path == p).expect("path present");
        assert!(by_path("x_per_s").regression, "20% throughput drop flagged");
        assert!(!by_path("p99_ns").regression, "8% latency rise tolerated");
        assert!(!by_path("moves").regression, "informational never flags");
        // Improvements never flag either.
        let better = parse(r#"{"x_per_s": 300, "p99_ns": 10, "moves": 10}"#).expect("better");
        assert!(diff(&old, &better, 0.10).iter().all(|d| !d.regression));
    }
}
