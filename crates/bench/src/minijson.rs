//! A tiny recursive-descent JSON parser for reading `BENCH_*.json` and
//! JSONL trace files back in. The workspace builds offline (no serde), and
//! the bench reports are small, so a few hundred lines of hand-rolled
//! parser beats a dependency.
//!
//! Numbers parse as `f64` (every numeric field our emitters write fits),
//! object key order is preserved, and duplicate keys keep the last value
//! on lookup — matching what a JavaScript consumer of the same files sees.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (last duplicate wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in our emitters'
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"bench": "x", "n": 3, "neg": -1.5e2, "ok": true,
                "arr": [1, 2, {"k": null}], "esc": "a\"b\\c\nd"}"#,
        )
        .expect("valid json");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        let arr = doc.get("arr").and_then(Json::as_arr).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("k"), Some(&Json::Null));
        assert_eq!(doc.get("esc").and_then(Json::as_str), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_bench_style_output() {
        let doc = parse(
            "{\n  \"bench\": \"estimator\",\n  \"sweep\": {\"jobs\": 300, \"jobs_per_s\": [1.5, 2.5]}\n}\n",
        )
        .expect("valid");
        let sweep = doc.get("sweep").expect("sweep");
        assert_eq!(
            sweep
                .get("jobs_per_s")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }
}
