//! Ablation benches for the design choices called out in `DESIGN.md` §5:
//! AWE order, MOS model level, and interval width.
//!
//! Run with `cargo bench -p ape-bench --bench ablation`.

use ape_awe::{awe_transfer, transfer_moments};
use ape_bench::harness::BenchGroup;
use ape_bench::specs::table1_opamps;
use ape_core::opamp::OpAmp;
use ape_netlist::{MosLevel, Technology};
use ape_spice::{dc_operating_point, linearize};
use std::hint::black_box;

fn main() {
    let _trace = ape_probe::install_from_env();
    let tech = Technology::default_1p2um();
    let task = table1_opamps().remove(5);
    let amp = OpAmp::design(&tech, task.topology, task.spec).expect("sizes");
    let tb = amp.testbench_open_loop(&tech).expect("testbench");
    let op = dc_operating_point(&tb, &tech).expect("op");
    let sys = linearize(&tb, &tech, &op).expect("linearize");
    let out = tb.find_node("out").expect("out");

    // --- AWE order: cost and the dc-gain prediction per order ------------
    let mut g = BenchGroup::new("ablation_awe_order", 30);
    for q in [1usize, 2, 3, 4] {
        g.bench(&format!("order_{q}"), || {
            black_box(awe_transfer(&sys, out, q))
        });
    }
    g.bench("moments_only", || {
        black_box(transfer_moments(&sys, out, 2).expect("moments"))
    });
    g.finish();

    // --- MOS model level: estimation cost across Level 1/2/3/BSIM --------
    let mut g = BenchGroup::new("ablation_model_level", 20);
    for (name, level) in [
        ("level1", MosLevel::Level1),
        ("level2", MosLevel::Level2),
        ("level3", MosLevel::Level3),
        ("bsim", MosLevel::Bsim),
    ] {
        let t = tech.with_level(level);
        g.bench(name, || {
            black_box(OpAmp::design(&t, task.topology, task.spec).expect("sizes"))
        });
    }
    g.finish();

    // --- Interval width: annealer evals to reach a fixed target ----------
    // (Runs as a bench of a fixed-size workload; the evals-to-feasible
    // numbers are printed by the table4 binary.)
    let mut g = BenchGroup::new("ablation_interval_width", 10);
    let ape_point = ape_oblx::design_point_from_ape(&tech, &amp);
    for frac in [0.1, 0.2, 0.5] {
        g.bench(&format!("interval_{frac}"), || {
            let init = ape_oblx::InitialPoint::ApeSeeded {
                point: ape_point.clone(),
                interval_frac: frac,
            };
            let opts = ape_oblx::SynthesisOptions {
                max_evals: 60,
                seed: 11,
                ..ape_oblx::SynthesisOptions::default()
            };
            black_box(
                ape_oblx::synthesize(&tech, task.topology, &task.spec, &init, &opts).expect("runs"),
            )
        });
    }
    g.finish();
    ape_probe::finish();
}
