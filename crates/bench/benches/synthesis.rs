//! Criterion benches for the synthesis engine: per-candidate evaluation
//! cost (DC + AWE + crossover probing) and short annealing runs in blind
//! vs APE-seeded mode — the engine-level view of the Table 1 vs Table 4
//! contrast.

use ape_bench::specs::table1_opamps;
use ape_core::opamp::OpAmp;
use ape_netlist::Technology;
use ape_oblx::{
    blind_center, design_point_from_ape, evaluate_candidate, synthesize, InitialPoint,
    SynthesisOptions,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let tech = Technology::default_1p2um();
    let task = table1_opamps().remove(5); // oa5: mirror, unbuffered
    let ape = OpAmp::design(&tech, task.topology, task.spec).expect("sizes");
    let seed_point = design_point_from_ape(&tech, &ape);

    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);

    g.bench_function("candidate_eval_seeded_point", |b| {
        b.iter(|| black_box(evaluate_candidate(&tech, task.topology, &task.spec, &seed_point)))
    });

    g.bench_function("candidate_eval_blind_center", |b| {
        let p = blind_center(task.topology);
        b.iter(|| black_box(evaluate_candidate(&tech, task.topology, &task.spec, &p)))
    });

    g.bench_function("synthesis_seeded_to_convergence", |b| {
        b.iter(|| {
            let init = InitialPoint::ApeSeeded {
                point: seed_point.clone(),
                interval_frac: 0.2,
            };
            let opts = SynthesisOptions {
                max_evals: 100,
                seed: 5,
                ..SynthesisOptions::default()
            };
            black_box(synthesize(&tech, task.topology, &task.spec, &init, &opts).expect("runs"))
        })
    });

    g.bench_function("synthesis_blind_100_evals", |b| {
        b.iter(|| {
            let opts = SynthesisOptions {
                max_evals: 100,
                seed: 5,
                ..SynthesisOptions::default()
            };
            black_box(
                synthesize(&tech, task.topology, &task.spec, &InitialPoint::Blind, &opts)
                    .expect("runs"),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
