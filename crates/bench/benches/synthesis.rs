//! Benches for the synthesis engine: per-candidate evaluation cost
//! (DC + AWE + crossover probing) and short annealing runs in blind vs
//! APE-seeded mode — the engine-level view of the Table 1 vs Table 4
//! contrast.
//!
//! Run with `cargo bench -p ape-bench --bench synthesis`; set
//! `APE_TRACE=summary` to also get cost-evaluation and annealing counters.

use ape_bench::harness::BenchGroup;
use ape_bench::specs::table1_opamps;
use ape_core::opamp::OpAmp;
use ape_netlist::Technology;
use ape_oblx::{
    blind_center, design_point_from_ape, evaluate_candidate, synthesize, InitialPoint,
    SynthesisOptions,
};
use std::hint::black_box;

fn main() {
    let _trace = ape_probe::install_from_env();
    let tech = Technology::default_1p2um();
    let task = table1_opamps().remove(5); // oa5: mirror, unbuffered
    let ape = OpAmp::design(&tech, task.topology, task.spec).expect("sizes");
    let seed_point = design_point_from_ape(&tech, &ape);

    let mut g = BenchGroup::new("synthesis", 10);

    g.bench("candidate_eval_seeded_point", || {
        black_box(evaluate_candidate(
            &tech,
            task.topology,
            &task.spec,
            &seed_point,
        ))
    });

    let blind_point = blind_center(task.topology).expect("built-in bounds");
    g.bench("candidate_eval_blind_center", || {
        black_box(evaluate_candidate(
            &tech,
            task.topology,
            &task.spec,
            &blind_point,
        ))
    });

    g.bench("synthesis_seeded_to_convergence", || {
        let init = InitialPoint::ApeSeeded {
            point: seed_point.clone(),
            interval_frac: 0.2,
        };
        let opts = SynthesisOptions {
            max_evals: 100,
            seed: 5,
            ..SynthesisOptions::default()
        };
        black_box(synthesize(&tech, task.topology, &task.spec, &init, &opts).expect("runs"))
    });

    g.bench("synthesis_blind_100_evals", || {
        let opts = SynthesisOptions {
            max_evals: 100,
            seed: 5,
            ..SynthesisOptions::default()
        };
        black_box(
            synthesize(
                &tech,
                task.topology,
                &task.spec,
                &InitialPoint::Blind,
                &opts,
            )
            .expect("runs"),
        )
    });

    g.finish();
    ape_probe::finish();
}
