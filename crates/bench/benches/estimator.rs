//! Benches for the estimator itself — the paper's §5 CPU claim ("The CPU
//! time required to execute the APE for all the ten opamps combined was
//! 0.12 seconds").
//!
//! Run with `cargo bench -p ape-bench --bench estimator`; set
//! `APE_TRACE=summary` to also get the probe report for the benched code.

use ape_bench::harness::BenchGroup;
use ape_bench::specs::{table1_opamps, table3_opamps};
use ape_core::basic::{DiffPair, DiffTopology};
use ape_core::module::{SallenKeyLowPass, SampleHold};
use ape_core::opamp::OpAmp;
use ape_netlist::Technology;
use std::hint::black_box;

fn main() {
    let _trace = ape_probe::install_from_env();
    let tech = Technology::default_1p2um();
    let mut g = BenchGroup::new("estimator", 20);

    // The headline: all ten Table 1 op-amps sized by APE.
    let tasks = table1_opamps();
    g.bench("ape_ten_opamps", || {
        for task in &tasks {
            let amp =
                OpAmp::design(&tech, task.topology, task.spec).expect("every Table 1 spec sizes");
            black_box(amp.perf.gate_area_m2);
        }
    });

    let task = table3_opamps().remove(3);
    g.bench("ape_single_opamp", || {
        black_box(OpAmp::design(&tech, task.topology, task.spec).expect("sizes"))
    });

    g.bench("ape_diff_pair", || {
        black_box(
            DiffPair::design(&tech, DiffTopology::MirrorLoad, 1000.0, 1e-6, 1e-12).expect("sizes"),
        )
    });

    g.bench("ape_sallen_key_lpf4", || {
        black_box(SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).expect("sizes"))
    });

    g.bench("ape_sample_hold", || {
        black_box(SampleHold::design(&tech, 2.0, 40e3, 10e-12).expect("sizes"))
    });

    // The paper's "sized transistor objects" reuse: repeated operating
    // points answered from the cache vs re-solved.
    let cache = ape_core::cache::SizingCache::new(&tech);
    cache
        .size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)
        .expect("seeds");
    g.bench("sizing_cached", || {
        black_box(
            cache
                .size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6)
                .expect("hits"),
        )
    });
    let nmos = tech.nmos().expect("nmos");
    g.bench("sizing_uncached", || {
        black_box(ape_mos::sizing::size_for_gm_id(nmos, 100e-6, 10e-6, 2.4e-6).expect("solves"))
    });

    g.finish();
    ape_probe::finish();
}
