//! Criterion benches for the estimator itself — the paper's §5 CPU claim
//! ("The CPU time required to execute the APE for all the ten opamps
//! combined was 0.12 seconds").

use ape_bench::specs::{table1_opamps, table3_opamps};
use ape_core::basic::{DiffPair, DiffTopology};
use ape_core::module::{SallenKeyLowPass, SampleHold};
use ape_core::opamp::OpAmp;
use ape_netlist::Technology;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_estimator(c: &mut Criterion) {
    let tech = Technology::default_1p2um();
    let mut g = c.benchmark_group("estimator");
    g.sample_size(20);

    // The headline: all ten Table 1 op-amps sized by APE.
    g.bench_function("ape_ten_opamps", |b| {
        let tasks = table1_opamps();
        b.iter(|| {
            for task in &tasks {
                let amp = OpAmp::design(&tech, task.topology, task.spec)
                    .expect("every Table 1 spec sizes");
                black_box(amp.perf.gate_area_m2);
            }
        })
    });

    g.bench_function("ape_single_opamp", |b| {
        let task = table3_opamps().remove(3);
        b.iter(|| {
            black_box(OpAmp::design(&tech, task.topology, task.spec).expect("sizes"))
        })
    });

    g.bench_function("ape_diff_pair", |b| {
        b.iter(|| {
            black_box(
                DiffPair::design(&tech, DiffTopology::MirrorLoad, 1000.0, 1e-6, 1e-12)
                    .expect("sizes"),
            )
        })
    });

    g.bench_function("ape_sallen_key_lpf4", |b| {
        b.iter(|| black_box(SallenKeyLowPass::design(&tech, 1e3, 4, 10e-12).expect("sizes")))
    });

    g.bench_function("ape_sample_hold", |b| {
        b.iter(|| black_box(SampleHold::design(&tech, 2.0, 40e3, 10e-12).expect("sizes")))
    });

    // The paper's "sized transistor objects" reuse: repeated operating
    // points answered from the cache vs re-solved.
    g.bench_function("sizing_cached", |b| {
        let cache = ape_core::cache::SizingCache::new(&tech);
        cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).expect("seeds");
        b.iter(|| black_box(cache.size_for_gm_id(false, 100e-6, 10e-6, 2.4e-6).expect("hits")))
    });
    g.bench_function("sizing_uncached", |b| {
        let nmos = tech.nmos().expect("nmos");
        b.iter(|| {
            black_box(
                ape_mos::sizing::size_for_gm_id(nmos, 100e-6, 10e-6, 2.4e-6).expect("solves"),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
