//! Criterion benches for the simulation substrate: DC, AC and transient on
//! representative circuits (the cost that dominated the paper's
//! hundreds-of-seconds synthesis runs).

use ape_bench::specs::table3_opamps;
use ape_core::opamp::OpAmp;
use ape_netlist::{Circuit, SourceWaveform, Technology};
use ape_spice::{
    ac_sweep, dc_operating_point, decade_frequencies, transient, TranOptions,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let tech = Technology::default_1p2um();
    let task = table3_opamps().remove(3);
    let amp = OpAmp::design(&tech, task.topology, task.spec).expect("sizes");
    let tb = amp.testbench_open_loop(&tech).expect("testbench");
    let op = dc_operating_point(&tb, &tech).expect("op");

    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);

    g.bench_function("dc_opamp", |b| {
        b.iter(|| black_box(dc_operating_point(&tb, &tech).expect("op")))
    });

    g.bench_function("ac_sweep_opamp_57pt", |b| {
        let freqs = decade_frequencies(100.0, 1e9, 8);
        b.iter(|| black_box(ac_sweep(&tb, &tech, &op, &freqs).expect("sweep")))
    });

    g.bench_function("ac_single_point_opamp", |b| {
        b.iter(|| black_box(ac_sweep(&tb, &tech, &op, &[1e6]).expect("sweep")))
    });

    g.bench_function("transient_rc_300steps", |b| {
        let mut ckt = Circuit::new("rc");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .expect("source");
        ckt.add_resistor("R1", i, o, 1e3).expect("r");
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9).expect("c");
        let op_rc = dc_operating_point(&ckt, &tech).expect("op");
        b.iter(|| {
            black_box(
                transient(&ckt, &tech, &op_rc, TranOptions::new(1e-8, 3e-6)).expect("tran"),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
