//! Benches for the simulation substrate: DC, AC and transient on
//! representative circuits (the cost that dominated the paper's
//! hundreds-of-seconds synthesis runs).
//!
//! Run with `cargo bench -p ape-bench --bench simulator`; set
//! `APE_TRACE=summary` to also get NR-iteration and step counters.

use ape_bench::harness::BenchGroup;
use ape_bench::specs::table3_opamps;
use ape_core::opamp::OpAmp;
use ape_netlist::{Circuit, SourceWaveform, Technology};
use ape_spice::{ac_sweep, dc_operating_point, decade_frequencies, transient, TranOptions};
use std::hint::black_box;

fn main() {
    let _trace = ape_probe::install_from_env();
    let tech = Technology::default_1p2um();
    let task = table3_opamps().remove(3);
    let amp = OpAmp::design(&tech, task.topology, task.spec).expect("sizes");
    let tb = amp.testbench_open_loop(&tech).expect("testbench");
    let op = dc_operating_point(&tb, &tech).expect("op");

    let mut g = BenchGroup::new("simulator", 20);

    g.bench("dc_opamp", || {
        black_box(dc_operating_point(&tb, &tech).expect("op"))
    });

    let freqs = decade_frequencies(100.0, 1e9, 8).unwrap();
    g.bench("ac_sweep_opamp_57pt", || {
        black_box(ac_sweep(&tb, &tech, &op, &freqs).expect("sweep"))
    });

    g.bench("ac_single_point_opamp", || {
        black_box(ac_sweep(&tb, &tech, &op, &[1e6]).expect("sweep"))
    });

    let mut ckt = Circuit::new("rc");
    let i = ckt.node("in");
    let o = ckt.node("out");
    ckt.add_vsource(
        "V1",
        i,
        Circuit::GROUND,
        0.0,
        0.0,
        SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 1e-9,
            fall: 1e-9,
            width: 1.0,
            period: f64::INFINITY,
        },
    )
    .expect("source");
    ckt.add_resistor("R1", i, o, 1e3).expect("r");
    ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9)
        .expect("c");
    let op_rc = dc_operating_point(&ckt, &tech).expect("op");
    g.bench("transient_rc_300steps", || {
        black_box(transient(&ckt, &tech, &op_rc, TranOptions::new(1e-8, 3e-6)).expect("tran"))
    });

    g.finish();
    ape_probe::finish();
}
