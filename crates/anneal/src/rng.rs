//! Self-contained deterministic PRNG (SplitMix64).
//!
//! The annealer needs reproducible, seedable, statistically decent — not
//! cryptographic — randomness, and the build environment vendors no
//! external crates, so the classic SplitMix64 generator (Steele, Lea &
//! Flood, OOPSLA 2014) is implemented here in ~30 lines. Same seed, same
//! trajectory, on every platform.

/// A 64-bit SplitMix64 generator.
///
/// # Example
///
/// ```
/// use ape_anneal::Rng64;
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed; identical seeds give identical
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)` (`lo` when the interval is empty).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi > lo {
            lo + (hi - lo) * self.f64()
        } else {
            lo
        }
    }

    /// Uniform integer in `[0, n)` (0 when `n == 0`).
    pub fn range_usize(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
        // draw — irrelevant for annealing moves.
        let x = self.next_u64() as u128;
        ((x * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut r = Rng64::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_usize_covers_all_residues() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = r.range_usize(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.range_usize(0), 0);
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = r.range_f64(-2.5, 4.0);
            assert!((-2.5..4.0).contains(&x));
        }
        assert_eq!(r.range_f64(1.0, 1.0), 1.0);
    }
}
