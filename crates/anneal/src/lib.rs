//! Generic simulated-annealing kernel.
//!
//! ASTRX/OBLX's sizing engine "is based on a simulated annealing algorithm"
//! (paper §3); this crate is that engine, kept deliberately generic so the
//! tests can exercise it on analytic functions and `ape-oblx` can drive it
//! on circuit cost functions.
//!
//! Two layers:
//!
//! * [`anneal`] — the core loop over any state type, cost closure and move
//!   generator, with geometric or adaptive cooling;
//! * [`VectorRanges`] — the box-constrained `Vec<f64>` state space used by
//!   circuit sizing (each design variable confined to an interval, moves
//!   scaled by temperature), matching the interval semantics of the paper's
//!   experiments (wide "blind" intervals vs APE-seeded ±20 % intervals).
//!
//! # Example
//!
//! ```
//! use ape_anneal::{anneal, AnnealOptions, Schedule, VectorRanges};
//!
//! // Minimise (x-3)² + (y+1)² over the box [-10,10]².
//! let ranges = VectorRanges::new(vec![(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
//! let opts = AnnealOptions { seed: 7, ..AnnealOptions::default() };
//! let result = anneal(
//!     ranges.center(),
//!     |s| (s[0] - 3.0).powi(2) + (s[1] + 1.0).powi(2),
//!     |s, t, rng| ranges.neighbor(s, t, rng),
//!     &opts,
//! );
//! assert!(result.best_cost < 1e-2);
//! assert!((result.best_state[0] - 3.0).abs() < 0.1);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;

pub use rng::Rng64;

/// Cooling schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Classic geometric cooling: `T ← α·T` every `moves_per_temp` moves.
    Geometric {
        /// Starting temperature.
        t0: f64,
        /// Cooling factor in (0, 1).
        alpha: f64,
        /// Moves evaluated at each temperature.
        moves_per_temp: usize,
        /// Temperature at which the run stops.
        t_min: f64,
    },
    /// Acceptance-ratio-controlled cooling: α adapts to hold the acceptance
    /// rate near 44 % (Lam-style rule of thumb) early and anneal out late.
    Adaptive {
        /// Starting temperature.
        t0: f64,
        /// Moves evaluated at each temperature.
        moves_per_temp: usize,
        /// Temperature at which the run stops.
        t_min: f64,
    },
}

impl Schedule {
    /// A geometric schedule scaled to an initial cost magnitude: starts hot
    /// enough to accept almost everything, cools at 0.92.
    pub fn geometric_auto(initial_cost: f64, moves_per_temp: usize) -> Self {
        let scale = initial_cost.abs().max(1.0);
        Schedule::Geometric {
            t0: scale,
            alpha: 0.92,
            moves_per_temp,
            t_min: scale * 1e-7,
        }
    }
}

/// Options for an annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOptions {
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Hard ceiling on cost evaluations (the paper's "fixed budget").
    pub max_evals: usize,
    /// RNG seed — same seed, same trajectory.
    pub seed: u64,
    /// Stop early when the best cost falls to or below this value.
    pub target_cost: f64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            schedule: Schedule::Geometric {
                t0: 10.0,
                alpha: 0.92,
                moves_per_temp: 60,
                t_min: 1e-7,
            },
            max_evals: 50_000,
            seed: 0x0A9E_5EED,
            target_cost: f64::NEG_INFINITY,
        }
    }
}

/// Aggregate statistics of a completed annealing run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnnealStats {
    /// Moves proposed (candidate states generated and evaluated).
    pub moves: usize,
    /// Moves accepted (same value as [`AnnealResult::accepted`]).
    pub accepted: usize,
    /// Temperature plateaus the schedule stepped through.
    pub temp_steps: usize,
    /// Temperature when the run stopped.
    pub final_temp: f64,
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// Best state visited.
    pub best_state: S,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Total cost evaluations performed.
    pub evals: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// `(evaluation index, best cost so far)` trace for convergence plots.
    pub history: Vec<(usize, f64)>,
    /// Run statistics (move/acceptance totals, cooling trajectory).
    pub stats: AnnealStats,
}

/// Per-temperature snapshot handed to an [`Observer`] after each plateau.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TempStats {
    /// Zero-based index of the plateau.
    pub step: usize,
    /// Temperature of the plateau.
    pub temp: f64,
    /// Moves proposed at this temperature.
    pub moves: usize,
    /// Moves accepted at this temperature.
    pub accepted: usize,
    /// `accepted / moves` (0 when no move was proposed).
    pub accept_ratio: f64,
    /// Best cost seen so far across the whole run.
    pub best_cost: f64,
}

/// Hook invoked by [`anneal_with_observer`] at the end of every temperature
/// plateau — the per-temperature window ASTRX/OBLX-style tools use to report
/// acceptance ratio and cost trajectories.
pub trait Observer {
    /// Called once per temperature plateau with its aggregate statistics.
    fn on_temperature(&mut self, stats: &TempStats);

    /// Polled once per temperature plateau, before its moves run; returning
    /// `true` stops the annealing loop early (the best state found so far
    /// is still returned). Cooperative cancellation for batch drivers that
    /// must abandon a synthesis without killing its worker thread.
    fn should_stop(&mut self) -> bool {
        false
    }
}

/// The no-op observer: `anneal` uses it when no explicit observer is given.
impl Observer for () {
    fn on_temperature(&mut self, _stats: &TempStats) {}
}

impl<F: FnMut(&TempStats)> Observer for F {
    fn on_temperature(&mut self, stats: &TempStats) {
        self(stats);
    }
}

/// Runs simulated annealing from `initial`.
///
/// `cost` maps a state to a scalar to minimise; `neighbor` proposes a move
/// given the current state, the *temperature fraction* `t/t0 ∈ (0, 1]`
/// (useful for shrinking move sizes as the system cools) and the RNG.
///
/// The run is fully deterministic for a fixed seed. Per-temperature
/// progress flows to `ape-probe` when a sink is installed; to receive it in
/// process, use [`anneal_with_observer`].
pub fn anneal<S, C, M>(initial: S, cost: C, neighbor: M, opts: &AnnealOptions) -> AnnealResult<S>
where
    S: Clone,
    C: FnMut(&S) -> f64,
    M: FnMut(&S, f64, &mut Rng64) -> S,
{
    anneal_with_observer(initial, cost, neighbor, opts, &mut ())
}

/// [`anneal`] with a per-temperature [`Observer`] hook.
///
/// The observer fires once per temperature plateau, after its moves have
/// been evaluated, with the plateau's [`TempStats`]. Closures taking
/// `&TempStats` implement [`Observer`] directly:
///
/// ```
/// use ape_anneal::{anneal_with_observer, AnnealOptions, VectorRanges};
///
/// let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
/// let mut plateaus = 0usize;
/// let r = anneal_with_observer(
///     ranges.center(),
///     |s| s[0] * s[0],
///     |s, t, rng| ranges.neighbor(s, t, rng),
///     &AnnealOptions::default(),
///     &mut |stats: &ape_anneal::TempStats| {
///         assert!(stats.accept_ratio <= 1.0);
///         plateaus += 1;
///     },
/// );
/// assert_eq!(r.stats.temp_steps, plateaus);
/// ```
pub fn anneal_with_observer<S, C, M, O>(
    initial: S,
    mut cost: C,
    mut neighbor: M,
    opts: &AnnealOptions,
    observer: &mut O,
) -> AnnealResult<S>
where
    S: Clone,
    C: FnMut(&S) -> f64,
    M: FnMut(&S, f64, &mut Rng64) -> S,
    O: Observer + ?Sized,
{
    let _run_span = ape_probe::span("anneal.run");
    let mut rng = Rng64::seed_from_u64(opts.seed);
    let (t0, alpha, moves_per_temp, t_min, adaptive) = match opts.schedule {
        Schedule::Geometric {
            t0,
            alpha,
            moves_per_temp,
            t_min,
        } => (t0, alpha, moves_per_temp, t_min, false),
        Schedule::Adaptive {
            t0,
            moves_per_temp,
            t_min,
        } => (t0, 0.95, moves_per_temp, t_min, true),
    };
    // Hostile schedules must not hang the loop: a zero `moves_per_temp`
    // never advances `evals`, and an `alpha` outside (0, 1) never cools, so
    // together they spin forever. Clamp to the nearest sane value instead.
    let moves_per_temp = moves_per_temp.max(1);
    let mut alpha = if alpha.is_finite() && alpha > 0.0 && alpha < 1.0 {
        alpha
    } else {
        ape_probe::counter("anneal.bad_alpha", 1);
        0.9
    };
    let t0 = if t0.is_finite() { t0 } else { 1.0 };

    // A non-finite cost would poison the loop twice over: a NaN best cost
    // makes `best_cost > target_cost` false (the run would return after a
    // single eval with no signal), and a NaN current cost makes every
    // `delta` NaN, which rejects every subsequent move. Grade all
    // non-finite costs as "infinitely bad" instead so the walk keeps
    // moving and can escape into finite territory.
    fn finite_or_inf(c: f64) -> f64 {
        if c.is_finite() {
            c
        } else {
            ape_probe::counter("anneal.non_finite_cost", 1);
            f64::INFINITY
        }
    }

    let mut current = initial.clone();
    let mut current_cost = finite_or_inf(cost(&current));
    let mut best_state = current.clone();
    let mut best_cost = current_cost;
    let mut evals = 1usize;
    let mut accepted = 0usize;
    let mut moves = 0usize;
    let mut temp_steps = 0usize;
    let mut history = vec![(0usize, best_cost)];

    let mut t = t0.max(1e-300);
    while t > t_min && evals < opts.max_evals && best_cost > opts.target_cost {
        if observer.should_stop() {
            ape_probe::counter("anneal.stopped_early", 1);
            break;
        }
        let mut moves_here = 0usize;
        let mut accepted_here = 0usize;
        for _ in 0..moves_per_temp {
            if evals >= opts.max_evals || best_cost <= opts.target_cost {
                break;
            }
            let cand = neighbor(&current, t / t0, &mut rng);
            let cand_cost = finite_or_inf(cost(&cand));
            evals += 1;
            moves_here += 1;
            let delta = cand_cost - current_cost;
            // `inf - inf` is NaN: both states sit on the non-finite
            // plateau, so the move is neutral — accept it (like any
            // `delta <= 0` move, without drawing from the RNG) so the
            // walk can wander off the plateau instead of freezing.
            let accept = delta.is_nan() || delta <= 0.0 || rng.f64() < (-delta / t).exp();
            if accept {
                current = cand;
                current_cost = cand_cost;
                accepted += 1;
                accepted_here += 1;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best_state = current.clone();
                    history.push((evals, best_cost));
                }
            }
        }
        moves += moves_here;
        let ratio = if moves_here > 0 {
            accepted_here as f64 / moves_here as f64
        } else {
            0.0
        };
        observer.on_temperature(&TempStats {
            step: temp_steps,
            temp: t,
            moves: moves_here,
            accepted: accepted_here,
            accept_ratio: ratio,
            best_cost,
        });
        if ape_probe::is_enabled() {
            ape_probe::counter("anneal.moves", moves_here as u64);
            ape_probe::counter("anneal.accepted", accepted_here as u64);
            ape_probe::value("anneal.accept_ratio", ratio);
            ape_probe::value("anneal.best_cost", best_cost);
        }
        temp_steps += 1;
        if adaptive {
            // Hold acceptance near 44 %: cool faster when too hot (high
            // acceptance), slower when freezing.
            alpha = if ratio > 0.6 {
                0.85
            } else if ratio > 0.3 {
                0.92
            } else {
                0.97
            };
        }
        t *= alpha;
    }
    history.push((evals, best_cost));
    AnnealResult {
        best_state,
        best_cost,
        evals,
        accepted,
        history,
        stats: AnnealStats {
            moves,
            accepted,
            temp_steps,
            final_temp: t,
        },
    }
}

/// Box constraints for a `Vec<f64>` design space with temperature-scaled
/// moves — the state space circuit sizing uses.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorRanges {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl VectorRanges {
    /// Creates ranges from `(lo, hi)` pairs.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a message when any `lo > hi` or a bound is not
    /// finite.
    pub fn new(pairs: Vec<(f64, f64)>) -> Result<Self, String> {
        for (k, (lo, hi)) in pairs.iter().enumerate() {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(format!("bad range #{k}: [{lo}, {hi}]"));
            }
        }
        Ok(VectorRanges {
            lo: pairs.iter().map(|p| p.0).collect(),
            hi: pairs.iter().map(|p| p.1).collect(),
        })
    }

    /// Number of design variables.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` for an empty design space.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.hi
    }

    /// Midpoint of every range — a deterministic starting state.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// A uniformly random state inside the box.
    pub fn sample(&self, rng: &mut Rng64) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| rng.range_f64(*l, *h))
            .collect()
    }

    /// Clamps a state into the box.
    pub fn clamp(&self, mut s: Vec<f64>) -> Vec<f64> {
        for ((v, l), h) in s.iter_mut().zip(&self.lo).zip(&self.hi) {
            *v = v.clamp(*l, *h);
        }
        s
    }

    /// `true` when `s` lies inside the box (inclusive).
    pub fn contains(&self, s: &[f64]) -> bool {
        s.len() == self.len()
            && s.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(v, (l, h))| *v >= *l && *v <= *h)
    }

    /// Temperature-scaled move: perturbs 1–3 random coordinates by up to
    /// `temp_frac · 40 %` of their range, clamped to the box.
    pub fn neighbor(&self, s: &[f64], temp_frac: f64, rng: &mut Rng64) -> Vec<f64> {
        let mut out = s.to_vec();
        if self.is_empty() {
            return out;
        }
        let k = 1 + rng.range_usize(3usize.min(self.len()));
        for _ in 0..k {
            let i = rng.range_usize(self.len());
            let span = self.hi[i] - self.lo[i];
            if span <= 0.0 {
                continue;
            }
            let sigma = span * 0.4 * temp_frac.clamp(0.01, 1.0);
            let step = (rng.f64() * 2.0 - 1.0) * sigma;
            out[i] = (out[i] + step).clamp(self.lo[i], self.hi[i]);
        }
        out
    }

    /// Builds ranges centred on `point` spanning ±`frac` (the paper's
    /// APE-seeded "±20 %" intervals), intersected with `outer` bounds.
    ///
    /// # Errors
    ///
    /// Propagates [`VectorRanges::new`] errors; falls back to the outer
    /// range for coordinates whose tightened interval would be empty.
    pub fn around(point: &[f64], frac: f64, outer: &VectorRanges) -> Result<Self, String> {
        let pairs = point
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let half = p.abs() * frac;
                let lo = (p - half).max(outer.lo[i]);
                let hi = (p + half).min(outer.hi[i]);
                if lo <= hi {
                    (lo, hi)
                } else {
                    (outer.lo[i], outer.hi[i])
                }
            })
            .collect();
        VectorRanges::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(seed: u64) -> AnnealOptions {
        AnnealOptions {
            schedule: Schedule::Geometric {
                t0: 10.0,
                alpha: 0.9,
                moves_per_temp: 50,
                t_min: 1e-8,
            },
            max_evals: 30_000,
            seed,
            target_cost: f64::NEG_INFINITY,
        }
    }

    #[test]
    fn observer_should_stop_halts_the_run() {
        struct StopAfter {
            plateaus: usize,
            limit: usize,
        }
        impl Observer for StopAfter {
            fn on_temperature(&mut self, _stats: &TempStats) {
                self.plateaus += 1;
            }
            fn should_stop(&mut self) -> bool {
                self.plateaus >= self.limit
            }
        }
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 3]).unwrap();
        let mut obs = StopAfter {
            plateaus: 0,
            limit: 2,
        };
        let r = anneal_with_observer(
            ranges.center(),
            |s| s.iter().map(|x| x * x).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(5),
            &mut obs,
        );
        assert_eq!(r.stats.temp_steps, 2, "stopped after exactly two plateaus");
        assert!(r.evals < 30_000);
        assert!(r.best_cost.is_finite(), "best state still returned");
    }

    #[test]
    fn minimizes_quadratic() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 3]).unwrap();
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| (x - 1.0) * (x - 1.0)).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(1),
        );
        assert!(r.best_cost < 1e-2, "cost {}", r.best_cost);
        for x in &r.best_state {
            assert!((x - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn escapes_local_minima() {
        // Double well: f(x) = (x²-1)² + 0.3x has a local minimum near x=+1
        // and the global one near x=-1.
        let start = VectorRanges::new(vec![(0.5, 1.5)]).unwrap();
        let full = VectorRanges::new(vec![(-2.0, 2.0)]).unwrap();
        let r = anneal(
            start.center(),
            |s| {
                let x = s[0];
                (x * x - 1.0).powi(2) + 0.3 * x
            },
            |s, t, rng| full.neighbor(s, t, rng),
            &quick_opts(3),
        );
        assert!(r.best_state[0] < 0.0, "stuck at {}", r.best_state[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 4]).unwrap();
        let run = |seed| {
            anneal(
                ranges.center(),
                |s| s.iter().map(|x| x * x).sum(),
                |s, t, rng| ranges.neighbor(s, t, rng),
                &quick_opts(seed),
            )
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.evals, b.evals);
        // Different seeds almost surely diverge somewhere.
        assert!(a.best_state != c.best_state || a.accepted != c.accepted);
    }

    #[test]
    fn respects_bounds_always() {
        let ranges = VectorRanges::new(vec![(0.0, 1.0), (10.0, 20.0)]).unwrap();
        let mut violations = 0;
        let r = anneal(
            ranges.center(),
            |s| {
                if !ranges.contains(s) {
                    violations += 1;
                }
                s[0] + s[1]
            },
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(9),
        );
        assert_eq!(violations, 0);
        assert!(ranges.contains(&r.best_state));
    }

    #[test]
    fn early_stop_at_target() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
        let opts = AnnealOptions {
            target_cost: 0.5,
            ..quick_opts(5)
        };
        let r = anneal(
            ranges.center(),
            |s| s[0].abs(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(r.best_cost <= 0.5);
        assert!(r.evals < opts.max_evals);
    }

    #[test]
    fn eval_budget_respected() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
        let opts = AnnealOptions {
            max_evals: 100,
            ..quick_opts(5)
        };
        let r = anneal(
            ranges.center(),
            |s| s[0] * s[0],
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(r.evals <= 100);
    }

    #[test]
    fn adaptive_schedule_also_minimizes() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 2]).unwrap();
        let opts = AnnealOptions {
            schedule: Schedule::Adaptive {
                t0: 10.0,
                moves_per_temp: 50,
                t_min: 1e-8,
            },
            ..quick_opts(11)
        };
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| (x + 2.0) * (x + 2.0)).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(r.best_cost < 1e-2, "cost {}", r.best_cost);
    }

    #[test]
    fn around_builds_tight_intervals() {
        let outer = VectorRanges::new(vec![(0.0, 100.0), (0.0, 100.0)]).unwrap();
        let tight = VectorRanges::around(&[50.0, 10.0], 0.2, &outer).unwrap();
        assert!(tight.contains(&[45.0, 9.0]));
        assert!(!tight.contains(&[30.0, 9.0]));
        assert!(!tight.contains(&[45.0, 20.0]));
    }

    #[test]
    fn history_is_monotone_decreasing() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 2]).unwrap();
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| x * x).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(2),
        );
        for w in r.history.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn stats_and_observer_agree() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 2]).unwrap();
        let mut obs_moves = 0usize;
        let mut obs_accepted = 0usize;
        let mut obs_steps = 0usize;
        let r = anneal_with_observer(
            ranges.center(),
            |s| s.iter().map(|x| x * x).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(4),
            &mut |stats: &TempStats| {
                obs_moves += stats.moves;
                obs_accepted += stats.accepted;
                obs_steps += 1;
                assert!((0.0..=1.0).contains(&stats.accept_ratio));
            },
        );
        assert_eq!(r.stats.moves, obs_moves);
        assert_eq!(r.stats.accepted, obs_accepted);
        assert_eq!(r.stats.temp_steps, obs_steps);
        assert_eq!(r.stats.accepted, r.accepted);
        // Every eval after the initial one is a proposed move.
        assert_eq!(r.stats.moves, r.evals - 1);
        assert!(r.stats.final_temp <= 10.0);
    }

    #[test]
    fn non_finite_initial_cost_does_not_poison_the_run() {
        // The start (the box center, x = 0) sits inside a NaN crater; the
        // finite landscape outside has minima at |x| = 2. Before the
        // non-finite guard, the NaN initial cost made
        // `best_cost > target_cost` false and the run returned after one
        // eval; now the walk must escape the crater and find a finite
        // optimum.
        let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
        let r = anneal(
            ranges.center(),
            |s| {
                let x = s[0];
                if x.abs() < 1.0 {
                    f64::NAN
                } else {
                    (x.abs() - 2.0).powi(2)
                }
            },
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(13),
        );
        assert!(r.evals > 1, "bailed after the initial eval");
        assert!(r.best_cost.is_finite(), "best cost {}", r.best_cost);
        assert!(r.best_cost < 0.1, "best cost {}", r.best_cost);
        assert!((r.best_state[0].abs() - 2.0).abs() < 0.5);
    }

    #[test]
    fn non_finite_mid_run_cost_is_rejected_not_absorbed() {
        // A NaN ridge in the middle of an otherwise smooth landscape: the
        // annealer starts finite, occasionally proposes moves into the
        // ridge, and must grade them as infinitely bad rather than letting
        // NaN leak into `current_cost` (which would then reject every
        // later move and freeze the walk wherever it stood).
        let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
        let r = anneal(
            ranges.center(),
            |s| {
                let x = s[0];
                if (0.5..1.5).contains(&x) {
                    f64::NAN
                } else {
                    (x - 3.0).powi(2)
                }
            },
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(17),
        );
        assert!(r.best_cost.is_finite());
        assert!(r.best_cost < 0.1, "best cost {}", r.best_cost);
        assert!((r.best_state[0] - 3.0).abs() < 0.5);
    }

    #[test]
    fn bad_ranges_rejected() {
        assert!(VectorRanges::new(vec![(1.0, 0.0)]).is_err());
        assert!(VectorRanges::new(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn geometric_auto_scales_to_cost() {
        let s = Schedule::geometric_auto(5000.0, 10);
        match s {
            Schedule::Geometric { t0, .. } => assert_eq!(t0, 5000.0),
            _ => panic!("wrong schedule"),
        }
    }

    #[test]
    fn narrow_intervals_converge_faster() {
        // The paper's core claim in miniature: under an equal, modest eval
        // budget, an APE-style ±20 % interval around the optimum reaches a
        // far lower cost than decade-wide blind intervals. Each range gets a
        // schedule scaled to its own cost magnitude, and any single seed can
        // get lucky, so compare across several seeds.
        let blind = VectorRanges::new(vec![(-100.0, 100.0); 4]).unwrap();
        let seeded = VectorRanges::around(&[3.1, 3.1, 3.1, 3.1], 0.2, &blind).unwrap();
        let cost = |s: &Vec<f64>| s.iter().map(|x| (x - 3.0) * (x - 3.0)).sum::<f64>();
        let run = |ranges: &VectorRanges, seed: u64| {
            let opts = AnnealOptions {
                schedule: Schedule::geometric_auto(cost(&ranges.center()), 50),
                max_evals: 10_000,
                seed,
                target_cost: f64::NEG_INFINITY,
            };
            anneal(
                ranges.center(),
                cost,
                |s, t, rng| ranges.neighbor(s, t, rng),
                &opts,
            )
            .best_cost
        };
        let mut seeded_wins = 0;
        for seed in 21..26 {
            if run(&seeded, seed) < run(&blind, seed) {
                seeded_wins += 1;
            }
        }
        assert!(seeded_wins >= 4, "seeded won only {seeded_wins}/5 runs");
    }
}
