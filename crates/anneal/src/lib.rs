//! Generic simulated-annealing kernel.
//!
//! ASTRX/OBLX's sizing engine "is based on a simulated annealing algorithm"
//! (paper §3); this crate is that engine, kept deliberately generic so the
//! tests can exercise it on analytic functions and `ape-oblx` can drive it
//! on circuit cost functions.
//!
//! Two layers:
//!
//! * [`anneal`] — the core loop over any state type, cost closure and move
//!   generator, with geometric or adaptive cooling;
//! * [`VectorRanges`] — the box-constrained `Vec<f64>` state space used by
//!   circuit sizing (each design variable confined to an interval, moves
//!   scaled by temperature), matching the interval semantics of the paper's
//!   experiments (wide "blind" intervals vs APE-seeded ±20 % intervals).
//!
//! # Example
//!
//! ```
//! use ape_anneal::{anneal, AnnealOptions, Schedule, VectorRanges};
//!
//! // Minimise (x-3)² + (y+1)² over the box [-10,10]².
//! let ranges = VectorRanges::new(vec![(-10.0, 10.0), (-10.0, 10.0)]).unwrap();
//! let opts = AnnealOptions { seed: 7, ..AnnealOptions::default() };
//! let result = anneal(
//!     ranges.center(),
//!     |s| (s[0] - 3.0).powi(2) + (s[1] + 1.0).powi(2),
//!     |s, t, rng| ranges.neighbor(s, t, rng),
//!     &opts,
//! );
//! assert!(result.best_cost < 1e-2);
//! assert!((result.best_state[0] - 3.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cooling schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Classic geometric cooling: `T ← α·T` every `moves_per_temp` moves.
    Geometric {
        /// Starting temperature.
        t0: f64,
        /// Cooling factor in (0, 1).
        alpha: f64,
        /// Moves evaluated at each temperature.
        moves_per_temp: usize,
        /// Temperature at which the run stops.
        t_min: f64,
    },
    /// Acceptance-ratio-controlled cooling: α adapts to hold the acceptance
    /// rate near 44 % (Lam-style rule of thumb) early and anneal out late.
    Adaptive {
        /// Starting temperature.
        t0: f64,
        /// Moves evaluated at each temperature.
        moves_per_temp: usize,
        /// Temperature at which the run stops.
        t_min: f64,
    },
}

impl Schedule {
    /// A geometric schedule scaled to an initial cost magnitude: starts hot
    /// enough to accept almost everything, cools at 0.92.
    pub fn geometric_auto(initial_cost: f64, moves_per_temp: usize) -> Self {
        let scale = initial_cost.abs().max(1.0);
        Schedule::Geometric {
            t0: scale,
            alpha: 0.92,
            moves_per_temp,
            t_min: scale * 1e-7,
        }
    }
}

/// Options for an annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOptions {
    /// Cooling schedule.
    pub schedule: Schedule,
    /// Hard ceiling on cost evaluations (the paper's "fixed budget").
    pub max_evals: usize,
    /// RNG seed — same seed, same trajectory.
    pub seed: u64,
    /// Stop early when the best cost falls to or below this value.
    pub target_cost: f64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            schedule: Schedule::Geometric {
                t0: 10.0,
                alpha: 0.92,
                moves_per_temp: 60,
                t_min: 1e-7,
            },
            max_evals: 50_000,
            seed: 0xA9E5_EED,
            target_cost: f64::NEG_INFINITY,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// Best state visited.
    pub best_state: S,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Total cost evaluations performed.
    pub evals: usize,
    /// Moves accepted.
    pub accepted: usize,
    /// `(evaluation index, best cost so far)` trace for convergence plots.
    pub history: Vec<(usize, f64)>,
}

/// Runs simulated annealing from `initial`.
///
/// `cost` maps a state to a scalar to minimise; `neighbor` proposes a move
/// given the current state, the *temperature fraction* `t/t0 ∈ (0, 1]`
/// (useful for shrinking move sizes as the system cools) and the RNG.
///
/// The run is fully deterministic for a fixed seed.
pub fn anneal<S, C, M>(initial: S, mut cost: C, mut neighbor: M, opts: &AnnealOptions) -> AnnealResult<S>
where
    S: Clone,
    C: FnMut(&S) -> f64,
    M: FnMut(&S, f64, &mut StdRng) -> S,
{
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (t0, mut alpha, moves_per_temp, t_min, adaptive) = match opts.schedule {
        Schedule::Geometric {
            t0,
            alpha,
            moves_per_temp,
            t_min,
        } => (t0, alpha, moves_per_temp, t_min, false),
        Schedule::Adaptive {
            t0,
            moves_per_temp,
            t_min,
        } => (t0, 0.95, moves_per_temp, t_min, true),
    };

    let mut current = initial.clone();
    let mut current_cost = cost(&current);
    let mut best_state = current.clone();
    let mut best_cost = current_cost;
    let mut evals = 1usize;
    let mut accepted = 0usize;
    let mut history = vec![(0usize, best_cost)];

    let mut t = t0.max(1e-300);
    while t > t_min && evals < opts.max_evals && best_cost > opts.target_cost {
        let mut accepted_here = 0usize;
        for _ in 0..moves_per_temp {
            if evals >= opts.max_evals || best_cost <= opts.target_cost {
                break;
            }
            let cand = neighbor(&current, t / t0, &mut rng);
            let cand_cost = cost(&cand);
            evals += 1;
            let delta = cand_cost - current_cost;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / t).exp();
            if accept {
                current = cand;
                current_cost = cand_cost;
                accepted += 1;
                accepted_here += 1;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best_state = current.clone();
                    history.push((evals, best_cost));
                }
            }
        }
        if adaptive {
            // Hold acceptance near 44 %: cool faster when too hot (high
            // acceptance), slower when freezing.
            let ratio = accepted_here as f64 / moves_per_temp.max(1) as f64;
            alpha = if ratio > 0.6 {
                0.85
            } else if ratio > 0.3 {
                0.92
            } else {
                0.97
            };
        }
        t *= alpha;
    }
    history.push((evals, best_cost));
    AnnealResult {
        best_state,
        best_cost,
        evals,
        accepted,
        history,
    }
}

/// Box constraints for a `Vec<f64>` design space with temperature-scaled
/// moves — the state space circuit sizing uses.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorRanges {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl VectorRanges {
    /// Creates ranges from `(lo, hi)` pairs.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a message when any `lo > hi` or a bound is not
    /// finite.
    pub fn new(pairs: Vec<(f64, f64)>) -> Result<Self, String> {
        for (k, (lo, hi)) in pairs.iter().enumerate() {
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(format!("bad range #{k}: [{lo}, {hi}]"));
            }
        }
        Ok(VectorRanges {
            lo: pairs.iter().map(|p| p.0).collect(),
            hi: pairs.iter().map(|p| p.1).collect(),
        })
    }

    /// Number of design variables.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` for an empty design space.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.hi
    }

    /// Midpoint of every range — a deterministic starting state.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// A uniformly random state inside the box.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| if h > l { rng.gen_range(*l..*h) } else { *l })
            .collect()
    }

    /// Clamps a state into the box.
    pub fn clamp(&self, mut s: Vec<f64>) -> Vec<f64> {
        for ((v, l), h) in s.iter_mut().zip(&self.lo).zip(&self.hi) {
            *v = v.clamp(*l, *h);
        }
        s
    }

    /// `true` when `s` lies inside the box (inclusive).
    pub fn contains(&self, s: &[f64]) -> bool {
        s.len() == self.len()
            && s.iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(v, (l, h))| *v >= *l && *v <= *h)
    }

    /// Temperature-scaled move: perturbs 1–3 random coordinates by up to
    /// `temp_frac · 40 %` of their range, clamped to the box.
    pub fn neighbor(&self, s: &[f64], temp_frac: f64, rng: &mut StdRng) -> Vec<f64> {
        let mut out = s.to_vec();
        if self.is_empty() {
            return out;
        }
        let k = 1 + rng.gen_range(0..3usize.min(self.len()));
        for _ in 0..k {
            let i = rng.gen_range(0..self.len());
            let span = self.hi[i] - self.lo[i];
            if span <= 0.0 {
                continue;
            }
            let sigma = span * 0.4 * temp_frac.clamp(0.01, 1.0);
            let step = (rng.gen::<f64>() * 2.0 - 1.0) * sigma;
            out[i] = (out[i] + step).clamp(self.lo[i], self.hi[i]);
        }
        out
    }

    /// Builds ranges centred on `point` spanning ±`frac` (the paper's
    /// APE-seeded "±20 %" intervals), intersected with `outer` bounds.
    ///
    /// # Errors
    ///
    /// Propagates [`VectorRanges::new`] errors; falls back to the outer
    /// range for coordinates whose tightened interval would be empty.
    pub fn around(point: &[f64], frac: f64, outer: &VectorRanges) -> Result<Self, String> {
        let pairs = point
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let half = p.abs() * frac;
                let lo = (p - half).max(outer.lo[i]);
                let hi = (p + half).min(outer.hi[i]);
                if lo <= hi {
                    (lo, hi)
                } else {
                    (outer.lo[i], outer.hi[i])
                }
            })
            .collect();
        VectorRanges::new(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(seed: u64) -> AnnealOptions {
        AnnealOptions {
            schedule: Schedule::Geometric {
                t0: 10.0,
                alpha: 0.9,
                moves_per_temp: 50,
                t_min: 1e-8,
            },
            max_evals: 30_000,
            seed,
            target_cost: f64::NEG_INFINITY,
        }
    }

    #[test]
    fn minimizes_quadratic() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 3]).unwrap();
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| (x - 1.0) * (x - 1.0)).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(1),
        );
        assert!(r.best_cost < 1e-2, "cost {}", r.best_cost);
        for x in &r.best_state {
            assert!((x - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn escapes_local_minima() {
        // Double well: f(x) = (x²-1)² + 0.3x has a local minimum near x=+1
        // and the global one near x=-1.
        let start = VectorRanges::new(vec![(0.5, 1.5)]).unwrap();
        let full = VectorRanges::new(vec![(-2.0, 2.0)]).unwrap();
        let r = anneal(
            start.center(),
            |s| {
                let x = s[0];
                (x * x - 1.0).powi(2) + 0.3 * x
            },
            |s, t, rng| full.neighbor(s, t, rng),
            &quick_opts(3),
        );
        assert!(r.best_state[0] < 0.0, "stuck at {}", r.best_state[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 4]).unwrap();
        let run = |seed| {
            anneal(
                ranges.center(),
                |s| s.iter().map(|x| x * x).sum(),
                |s, t, rng| ranges.neighbor(s, t, rng),
                &quick_opts(seed),
            )
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.evals, b.evals);
        // Different seeds almost surely diverge somewhere.
        assert!(a.best_state != c.best_state || a.accepted != c.accepted);
    }

    #[test]
    fn respects_bounds_always() {
        let ranges = VectorRanges::new(vec![(0.0, 1.0), (10.0, 20.0)]).unwrap();
        let mut violations = 0;
        let r = anneal(
            ranges.center(),
            |s| {
                if !ranges.contains(s) {
                    violations += 1;
                }
                s[0] + s[1]
            },
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(9),
        );
        assert_eq!(violations, 0);
        assert!(ranges.contains(&r.best_state));
    }

    #[test]
    fn early_stop_at_target() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
        let opts = AnnealOptions {
            target_cost: 0.5,
            ..quick_opts(5)
        };
        let r = anneal(
            ranges.center(),
            |s| s[0].abs(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(r.best_cost <= 0.5);
        assert!(r.evals < opts.max_evals);
    }

    #[test]
    fn eval_budget_respected() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0)]).unwrap();
        let opts = AnnealOptions {
            max_evals: 100,
            ..quick_opts(5)
        };
        let r = anneal(
            ranges.center(),
            |s| s[0] * s[0],
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(r.evals <= 100);
    }

    #[test]
    fn adaptive_schedule_also_minimizes() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 2]).unwrap();
        let opts = AnnealOptions {
            schedule: Schedule::Adaptive {
                t0: 10.0,
                moves_per_temp: 50,
                t_min: 1e-8,
            },
            ..quick_opts(11)
        };
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| (x + 2.0) * (x + 2.0)).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &opts,
        );
        assert!(r.best_cost < 1e-2, "cost {}", r.best_cost);
    }

    #[test]
    fn around_builds_tight_intervals() {
        let outer = VectorRanges::new(vec![(0.0, 100.0), (0.0, 100.0)]).unwrap();
        let tight = VectorRanges::around(&[50.0, 10.0], 0.2, &outer).unwrap();
        assert!(tight.contains(&[45.0, 9.0]));
        assert!(!tight.contains(&[30.0, 9.0]));
        assert!(!tight.contains(&[45.0, 20.0]));
    }

    #[test]
    fn history_is_monotone_decreasing() {
        let ranges = VectorRanges::new(vec![(-5.0, 5.0); 2]).unwrap();
        let r = anneal(
            ranges.center(),
            |s| s.iter().map(|x| x * x).sum(),
            |s, t, rng| ranges.neighbor(s, t, rng),
            &quick_opts(2),
        );
        for w in r.history.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
    }

    #[test]
    fn bad_ranges_rejected() {
        assert!(VectorRanges::new(vec![(1.0, 0.0)]).is_err());
        assert!(VectorRanges::new(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn geometric_auto_scales_to_cost() {
        let s = Schedule::geometric_auto(5000.0, 10);
        match s {
            Schedule::Geometric { t0, .. } => assert_eq!(t0, 5000.0),
            _ => panic!("wrong schedule"),
        }
    }

    #[test]
    fn narrow_intervals_converge_faster() {
        // The paper's core claim in miniature: an APE-style ±20 % interval
        // around the optimum reaches a given cost in fewer evaluations than
        // decade-wide blind intervals.
        let blind = VectorRanges::new(vec![(-100.0, 100.0); 4]).unwrap();
        let seeded = VectorRanges::around(&[3.1, 3.1, 3.1, 3.1], 0.2, &blind).unwrap();
        let cost = |s: &Vec<f64>| s.iter().map(|x| (x - 3.0) * (x - 3.0)).sum::<f64>();
        let opts = AnnealOptions {
            target_cost: 1e-3,
            max_evals: 200_000,
            ..quick_opts(21)
        };
        let blind_run = anneal(blind.center(), cost, |s, t, rng| blind.neighbor(s, t, rng), &opts);
        let seeded_run = anneal(seeded.center(), cost, |s, t, rng| seeded.neighbor(s, t, rng), &opts);
        assert!(
            seeded_run.evals < blind_run.evals,
            "seeded {} vs blind {}",
            seeded_run.evals,
            blind_run.evals
        );
    }
}
