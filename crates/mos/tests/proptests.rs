//! Property-based tests over the device models: the forward evaluation must
//! be finite, sign-correct and continuous everywhere the simulator can land
//! during Newton iterations.

use ape_mos::{evaluate, meyer_caps, BiasPoint, Region};
use ape_netlist::{MosGeometry, MosLevel, Technology};
use proptest::prelude::*;

fn any_level() -> impl Strategy<Value = MosLevel> {
    prop_oneof![
        Just(MosLevel::Level1),
        Just(MosLevel::Level2),
        Just(MosLevel::Level3),
        Just(MosLevel::Bsim),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Never NaN/∞, for any bias the Newton solver might visit — including
    /// reversed conduction and forward body bias.
    #[test]
    fn evaluation_always_finite(
        level in any_level(),
        w_um in 0.5f64..500.0,
        l_um in 0.6f64..40.0,
        vgs in -6.0f64..6.0,
        vds in -6.0f64..6.0,
        vsb in -1.0f64..6.0,
        pmos in any::<bool>(),
    ) {
        let tech = Technology::default_1p2um().with_level(level);
        let card = if pmos { tech.pmos().unwrap() } else { tech.nmos().unwrap() };
        let g = MosGeometry::new(w_um * 1e-6, l_um * 1e-6);
        let e = evaluate(card, &g, BiasPoint { vgs, vds, vsb });
        prop_assert!(e.ids.is_finite(), "ids not finite");
        prop_assert!(e.gm.is_finite() && e.gds.is_finite() && e.gmb.is_finite());
        prop_assert!(e.vth.is_finite() && e.vdsat.is_finite());
    }

    /// Zero vds means (near) zero current, any level, any polarity.
    #[test]
    fn zero_vds_zero_current(
        level in any_level(),
        w_um in 1.0f64..100.0,
        vgs in -5.0f64..5.0,
        pmos in any::<bool>(),
    ) {
        let tech = Technology::default_1p2um().with_level(level);
        let card = if pmos { tech.pmos().unwrap() } else { tech.nmos().unwrap() };
        let g = MosGeometry::new(w_um * 1e-6, 2.4e-6);
        let e = evaluate(card, &g, BiasPoint { vgs, vds: 0.0, vsb: 0.0 });
        prop_assert!(e.ids.abs() < 1e-12, "ids {} at vds=0", e.ids);
    }

    /// The characteristic is continuous in vds across the whole range
    /// (region boundaries included): no jump bigger than the local slope
    /// allows.
    #[test]
    fn continuity_in_vds(
        level in any_level(),
        w_um in 1.0f64..100.0,
        vgs in 0.8f64..3.0,
        vds0 in 0.0f64..4.9,
    ) {
        let tech = Technology::default_1p2um().with_level(level);
        let card = tech.nmos().unwrap();
        let g = MosGeometry::new(w_um * 1e-6, 2.4e-6);
        let h = 1e-4;
        let e0 = evaluate(card, &g, BiasPoint { vgs, vds: vds0, vsb: 0.0 });
        let e1 = evaluate(card, &g, BiasPoint { vgs, vds: vds0 + h, vsb: 0.0 });
        let di = (e1.ids - e0.ids).abs();
        // Bound the step by a generous multiple of the local conductance.
        let bound = (e0.gds.abs() + e0.gm.abs() + 1e-6) * h * 50.0 + 1e-12;
        prop_assert!(di < bound, "jump {di} at vds {vds0} (bound {bound})");
    }

    /// Capacitances are non-negative and scale with width.
    #[test]
    fn caps_positive_and_scale(
        w_um in 1.0f64..200.0,
        l_um in 1.2f64..20.0,
        region in prop_oneof![
            Just(Region::Saturation), Just(Region::Triode), Just(Region::Subthreshold)
        ],
    ) {
        let tech = Technology::default_1p2um();
        let card = tech.nmos().unwrap();
        let g1 = MosGeometry::new(w_um * 1e-6, l_um * 1e-6);
        let g2 = MosGeometry::new(2.0 * w_um * 1e-6, l_um * 1e-6);
        let c1 = meyer_caps(card, &g1, region);
        let c2 = meyer_caps(card, &g2, region);
        prop_assert!(c1.cgs >= 0.0 && c1.cgd >= 0.0 && c1.cgb >= 0.0);
        prop_assert!(c2.gate_total() > c1.gate_total());
    }

    /// Saturation current grows with drawn width at fixed bias.
    #[test]
    fn current_monotone_in_width(
        level in any_level(),
        w_um in 1.0f64..100.0,
        vgs in 1.2f64..3.0,
    ) {
        let tech = Technology::default_1p2um().with_level(level);
        let card = tech.nmos().unwrap();
        let a = evaluate(card, &MosGeometry::new(w_um * 1e-6, 2.4e-6),
                         BiasPoint { vgs, vds: 2.5, vsb: 0.0 });
        let b = evaluate(card, &MosGeometry::new(1.5 * w_um * 1e-6, 2.4e-6),
                         BiasPoint { vgs, vds: 2.5, vsb: 0.0 });
        prop_assert!(b.ids > a.ids);
    }
}
