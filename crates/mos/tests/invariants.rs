// Test/harness code: panicking on bad results is the assertion mechanism.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//! Sampled invariant tests over the device models: the forward evaluation
//! must be finite, sign-correct and continuous everywhere the simulator can
//! land during Newton iterations. Deterministic seeded sweeps stand in for
//! a property-testing framework.

use ape_mos::{evaluate, meyer_caps, BiasPoint, Region};
use ape_netlist::{MosGeometry, MosLevel, Technology};

const LEVELS: [MosLevel; 4] = [
    MosLevel::Level1,
    MosLevel::Level2,
    MosLevel::Level3,
    MosLevel::Bsim,
];

/// Minimal xorshift sampler so the sweeps stay deterministic without any
/// external dependency.
struct Sampler(u64);

impl Sampler {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next()
    }

    fn flag(&mut self) -> bool {
        self.next() < 0.5
    }
}

/// Never NaN/∞, for any bias the Newton solver might visit — including
/// reversed conduction and forward body bias.
#[test]
fn evaluation_always_finite() {
    let mut s = Sampler(0x00A1_1CE5);
    for level in LEVELS {
        let tech = Technology::default_1p2um().with_level(level);
        for _ in 0..128 {
            let card = if s.flag() {
                tech.pmos().unwrap()
            } else {
                tech.nmos().unwrap()
            };
            let g = MosGeometry::new(s.range(0.5, 500.0) * 1e-6, s.range(0.6, 40.0) * 1e-6);
            let bias = BiasPoint {
                vgs: s.range(-6.0, 6.0),
                vds: s.range(-6.0, 6.0),
                vsb: s.range(-1.0, 6.0),
            };
            let e = evaluate(card, &g, bias);
            assert!(e.ids.is_finite(), "ids not finite at {bias:?} ({level:?})");
            assert!(e.gm.is_finite() && e.gds.is_finite() && e.gmb.is_finite());
            assert!(e.vth.is_finite() && e.vdsat.is_finite());
        }
    }
}

/// Zero vds means (near) zero current, any level, any polarity.
#[test]
fn zero_vds_zero_current() {
    let mut s = Sampler(0xBEEF);
    for level in LEVELS {
        let tech = Technology::default_1p2um().with_level(level);
        for _ in 0..64 {
            let card = if s.flag() {
                tech.pmos().unwrap()
            } else {
                tech.nmos().unwrap()
            };
            let g = MosGeometry::new(s.range(1.0, 100.0) * 1e-6, 2.4e-6);
            let vgs = s.range(-5.0, 5.0);
            let e = evaluate(
                card,
                &g,
                BiasPoint {
                    vgs,
                    vds: 0.0,
                    vsb: 0.0,
                },
            );
            assert!(e.ids.abs() < 1e-12, "ids {} at vds=0 ({level:?})", e.ids);
        }
    }
}

/// The characteristic is continuous in vds across the whole range (region
/// boundaries included): no jump bigger than the local slope allows.
#[test]
fn continuity_in_vds() {
    let mut s = Sampler(0xC0FFEE);
    for level in LEVELS {
        let tech = Technology::default_1p2um().with_level(level);
        let card = tech.nmos().unwrap();
        for _ in 0..128 {
            let g = MosGeometry::new(s.range(1.0, 100.0) * 1e-6, 2.4e-6);
            let vgs = s.range(0.8, 3.0);
            let vds0 = s.range(0.0, 4.9);
            let h = 1e-4;
            let e0 = evaluate(
                card,
                &g,
                BiasPoint {
                    vgs,
                    vds: vds0,
                    vsb: 0.0,
                },
            );
            let e1 = evaluate(
                card,
                &g,
                BiasPoint {
                    vgs,
                    vds: vds0 + h,
                    vsb: 0.0,
                },
            );
            let di = (e1.ids - e0.ids).abs();
            // Bound the step by a generous multiple of the local conductance.
            let bound = (e0.gds.abs() + e0.gm.abs() + 1e-6) * h * 50.0 + 1e-12;
            assert!(
                di < bound,
                "jump {di} at vds {vds0} (bound {bound}, {level:?})"
            );
        }
    }
}

/// Capacitances are non-negative and scale with width.
#[test]
fn caps_positive_and_scale() {
    let mut s = Sampler(0xCAB);
    let tech = Technology::default_1p2um();
    let card = tech.nmos().unwrap();
    for region in [Region::Saturation, Region::Triode, Region::Subthreshold] {
        for _ in 0..64 {
            let w = s.range(1.0, 200.0) * 1e-6;
            let l = s.range(1.2, 20.0) * 1e-6;
            let c1 = meyer_caps(card, &MosGeometry::new(w, l), region);
            let c2 = meyer_caps(card, &MosGeometry::new(2.0 * w, l), region);
            assert!(c1.cgs >= 0.0 && c1.cgd >= 0.0 && c1.cgb >= 0.0);
            assert!(c2.gate_total() > c1.gate_total());
        }
    }
}

/// Saturation current grows with drawn width at fixed bias.
#[test]
fn current_monotone_in_width() {
    let mut s = Sampler(0xD1CE);
    for level in LEVELS {
        let tech = Technology::default_1p2um().with_level(level);
        let card = tech.nmos().unwrap();
        for _ in 0..64 {
            let w = s.range(1.0, 100.0) * 1e-6;
            let vgs = s.range(1.2, 3.0);
            let bias = BiasPoint {
                vgs,
                vds: 2.5,
                vsb: 0.0,
            };
            let a = evaluate(card, &MosGeometry::new(w, 2.4e-6), bias);
            let b = evaluate(card, &MosGeometry::new(1.5 * w, 2.4e-6), bias);
            assert!(b.ids > a.ids, "w {w} vgs {vgs} ({level:?})");
        }
    }
}
