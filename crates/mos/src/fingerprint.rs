//! Shared fingerprint and quantisation helpers for content-addressed
//! memoization.
//!
//! Two subsystems used to build cache keys independently: the level-1
//! sizing cache in `ape-core` (quantised `f64` buckets hashed ad hoc) and
//! the farm's content-addressed result cache (`DefaultHasher` over request
//! payloads). This module is the single shared encoding both now use, so a
//! key built in one crate is bit-for-bit the key built in the other for
//! the same logical inputs.
//!
//! [`Fingerprint`] is a tiny FNV-1a builder over explicitly-typed tokens.
//! Every `f64` is folded in **bit-exactly** via [`f64::to_bits`]: two
//! inputs collide only when they are the same IEEE-754 value, which is
//! what makes graph memo lookups history-independent (a warm lookup
//! returns exactly what a cold recompute would produce). The legacy
//! bucketing scheme survives as [`quant`] for callers that want nearby
//! values to share an entry.

/// Incremental FNV-1a (64-bit) fingerprint builder.
///
/// The builder is consumed and returned by every fold method so keys read
/// as a single chained expression:
///
/// ```
/// use ape_mos::fingerprint::Fingerprint;
///
/// let a = Fingerprint::new().u8(1).f64(3.5e-6).finish();
/// let b = Fingerprint::new().u8(1).f64(3.5e-6).finish();
/// let c = Fingerprint::new().u8(2).f64(3.5e-6).finish();
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Starts a fresh fingerprint at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds in one raw byte.
    pub fn u8(mut self, v: u8) -> Self {
        self.state ^= u64::from(v);
        self.state = self.state.wrapping_mul(FNV_PRIME);
        self
    }

    /// Folds in a `u64` as eight little-endian bytes.
    pub fn u64(mut self, v: u64) -> Self {
        for byte in v.to_le_bytes() {
            self = self.u8(byte);
        }
        self
    }

    /// Folds in a `bool` as a single tag byte.
    pub fn bool(self, v: bool) -> Self {
        self.u8(u8::from(v))
    }

    /// Folds in an `f64` **bit-exactly** (via [`f64::to_bits`]).
    ///
    /// `-0.0` and `0.0` hash differently, and every NaN payload is its own
    /// key — deliberate, because memoized results must be pure functions
    /// of their bit-level inputs.
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Folds in a string as its UTF-8 bytes followed by a length token
    /// (so `("ab", "c")` and `("a", "bc")` cannot collide).
    pub fn str(mut self, s: &str) -> Self {
        for &b in s.as_bytes() {
            self = self.u8(b);
        }
        self.u64(s.len() as u64)
    }

    /// Returns the finished 64-bit fingerprint.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Quantises an operating-point value into a coarse bucket (~0.1 %
/// relative width) by truncating the IEEE-754 mantissa.
///
/// This is the legacy sizing-cache bucketing: dropping the low 42 bits of
/// the `f64` representation keeps the sign, the exponent, and the top ten
/// mantissa bits, so values within about a part in a thousand land in the
/// same bucket. The estimation graph itself keys bit-exactly (see
/// [`Fingerprint::f64`]); `quant` is for callers that deliberately trade
/// precision for hit rate, such as coarse design-space binning.
#[must_use]
pub fn quant(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else {
        x.to_bits() >> 42
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_deterministic_and_order_sensitive() {
        let a = Fingerprint::new().f64(1.0).f64(2.0).finish();
        let b = Fingerprint::new().f64(1.0).f64(2.0).finish();
        let swapped = Fingerprint::new().f64(2.0).f64(1.0).finish();
        assert_eq!(a, b);
        assert_ne!(a, swapped);
    }

    #[test]
    fn f64_is_bit_exact() {
        let x: f64 = 1.0e-6;
        let y: f64 = x * (1.0 + 1e-15); // adjacent representable value
        assert_ne!(x.to_bits(), y.to_bits());
        assert_ne!(
            Fingerprint::new().f64(x).finish(),
            Fingerprint::new().f64(y).finish()
        );
        assert_ne!(
            Fingerprint::new().f64(0.0).finish(),
            Fingerprint::new().f64(-0.0).finish()
        );
    }

    #[test]
    fn str_length_token_prevents_concatenation_collisions() {
        let a = Fingerprint::new().str("ab").str("c").finish();
        let b = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn quant_buckets_nearby_values_and_separates_far_ones() {
        assert_eq!(quant(0.0), 0);
        assert_eq!(quant(10e-6), quant(10e-6 * (1.0 + 1e-5)));
        assert_ne!(quant(10e-6), quant(11e-6));
        assert_ne!(quant(10e-6), quant(-10e-6));
    }
}
