//! Error type for device-model operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the sizing solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MosError {
    /// The requested (gm, Id) pair implies a non-physical overdrive voltage.
    InfeasibleBias {
        /// Description of the violated relation.
        message: String,
    },
    /// The solved width or length falls outside the technology limits.
    GeometryOutOfRange {
        /// Which dimension, `"W"` or `"L"`.
        dimension: &'static str,
        /// The solved value in metres.
        value: f64,
    },
    /// An iterative inner solve failed to converge.
    NoConvergence {
        /// What was being solved.
        what: String,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An input parameter is non-physical (negative current, NaN, ...).
    InvalidInput(String),
}

impl fmt::Display for MosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosError::InfeasibleBias { message } => write!(f, "infeasible bias point: {message}"),
            MosError::GeometryOutOfRange { dimension, value } => {
                write!(
                    f,
                    "solved {dimension} = {value:.3e} m is outside technology limits"
                )
            }
            MosError::NoConvergence { what, iterations } => {
                write!(
                    f,
                    "no convergence solving {what} after {iterations} iterations"
                )
            }
            MosError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl Error for MosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_display() {
        fn assert_send_sync<T: Send + Sync + std::fmt::Display>() {}
        assert_send_sync::<MosError>();
    }
}
