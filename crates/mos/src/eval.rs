//! Forward evaluation of the MOS device equations.
//!
//! One entry point, [`evaluate`], dispatches on the model card's
//! [`MosLevel`](ape_netlist::MosLevel):
//!
//! * **Level 1** — Shichman-Hodges square law with channel-length modulation
//!   (paper equations (1)–(4)), smoothed into an exponential subthreshold
//!   region so Newton-Raphson sees a C¹ characteristic.
//! * **Level 2** — adds mobility degradation `µeff = µ0 / (1 + θ·Vov)`.
//! * **Level 3** — adds velocity saturation (`vmax`) and DIBL (`η`).
//! * **BSIM** (simplified) — Level 3 equations with a softer
//!   triode/saturation transition.
//!
//! Voltages are the *physical* terminal differences (`vgs = Vg − Vs`, etc.);
//! PMOS devices are handled by internal sign normalisation, and reversed
//! conduction (`vds` of the "wrong" sign) by source/drain swapping. The
//! returned derivatives are true Jacobian entries with respect to the given
//! physical voltages.

use ape_netlist::{MosGeometry, MosLevel, MosModelCard};

use crate::VT_THERMAL;

/// Drawn channel length at which a card's `lambda` applies exactly, metres.
///
/// Channel-length modulation weakens with longer channels; the effective
/// coefficient used everywhere is
/// `λ_eff = λ_card · (LAMBDA_REF_LENGTH / L_drawn)`. This lets the sizing
/// layers trade channel length for output resistance (and hence gain), as
/// real designs do.
pub const LAMBDA_REF_LENGTH: f64 = 2.4e-6;

/// Effective channel-length-modulation coefficient at drawn length `l`.
pub fn lambda_eff(card: &MosModelCard, l: f64) -> f64 {
    card.lambda * (LAMBDA_REF_LENGTH / l.max(0.1e-6))
}

/// Operating region of a MOS transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Channel off; only exponential subthreshold leakage flows.
    Subthreshold,
    /// Linear / ohmic region (`vds < vdsat`).
    Triode,
    /// Saturation (`vds ≥ vdsat`).
    Saturation,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Subthreshold => write!(f, "subthreshold"),
            Region::Triode => write!(f, "triode"),
            Region::Saturation => write!(f, "saturation"),
        }
    }
}

/// Physical bias voltages at the device terminals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BiasPoint {
    /// Gate-source voltage, volts.
    pub vgs: f64,
    /// Drain-source voltage, volts.
    pub vds: f64,
    /// Source-bulk voltage, volts (positive = reverse body bias for NMOS).
    pub vsb: f64,
}

/// Result of a device evaluation: current, true Jacobian entries and
/// normalised small-signal magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceEval {
    /// Drain terminal current, amperes (negative for a conducting PMOS).
    pub ids: f64,
    /// `∂ids/∂vgs`, siemens.
    pub gm: f64,
    /// `∂ids/∂vds`, siemens.
    pub gds: f64,
    /// `∂ids/∂vbs`, siemens (bulk transconductance).
    pub gmb: f64,
    /// Operating region (of the normalised forward device).
    pub region: Region,
    /// Threshold voltage at this body bias, normalised positive, volts.
    pub vth: f64,
    /// Saturation voltage, volts.
    pub vdsat: f64,
    /// Effective (smoothed) overdrive voltage, volts.
    pub vov: f64,
}

/// Evaluates the drain current and small-signal parameters of a MOSFET.
///
/// Works for both polarities and both conduction directions. Derivatives are
/// computed by central finite differences over the smoothed characteristic
/// (step 1 µV–10 µV), which keeps every model level consistent with its own
/// current equation by construction.
///
/// # Example
///
/// ```
/// use ape_netlist::{Technology, MosGeometry};
/// use ape_mos::{evaluate, BiasPoint, Region};
/// let tech = Technology::default_1p2um();
/// let nmos = tech.nmos().unwrap();
/// let e = evaluate(nmos, &MosGeometry::new(10e-6, 2.4e-6),
///                  BiasPoint { vgs: 1.5, vds: 2.5, vsb: 0.0 });
/// assert_eq!(e.region, Region::Saturation);
/// assert!(e.ids > 0.0 && e.gm > 0.0 && e.gds > 0.0);
/// ```
pub fn evaluate(card: &MosModelCard, geom: &MosGeometry, bias: BiasPoint) -> DeviceEval {
    let s = card.polarity.sign();
    // Normalise to an N-type forward frame.
    let vgs_n = s * bias.vgs;
    let vds_n = s * bias.vds;
    let vsb_n = s * bias.vsb;

    let f = |vgs: f64, vds: f64, vsb: f64| ids_normalized(card, geom, vgs, vds, vsb).0;
    let (i_n, region, vth, vdsat, vov) = ids_normalized(card, geom, vgs_n, vds_n, vsb_n);

    let h = 1e-5;
    let d_vgs = (f(vgs_n + h, vds_n, vsb_n) - f(vgs_n - h, vds_n, vsb_n)) / (2.0 * h);
    let d_vds = (f(vgs_n, vds_n + h, vsb_n) - f(vgs_n, vds_n - h, vsb_n)) / (2.0 * h);
    let d_vsb = (f(vgs_n, vds_n, vsb_n + h) - f(vgs_n, vds_n, vsb_n - h)) / (2.0 * h);

    // Physical current: ids_phys = s * i_n; physical partials equal the
    // normalised ones (two sign flips cancel). gmb is the derivative with
    // respect to v_bs = -v_sb.
    DeviceEval {
        ids: s * i_n,
        gm: d_vgs,
        gds: d_vds,
        gmb: -d_vsb,
        region,
        vth,
        vdsat,
        vov,
    }
}

/// Normalised (N-type, forward-frame) drain current.
///
/// Handles reverse conduction by swapping source and drain.
fn ids_normalized(
    card: &MosModelCard,
    geom: &MosGeometry,
    vgs: f64,
    vds: f64,
    vsb: f64,
) -> (f64, Region, f64, f64, f64) {
    if vds >= 0.0 {
        ids_forward(card, geom, vgs, vds, vsb)
    } else {
        // Roles swap: the old drain acts as source. Gate-to-new-source is
        // vgd = vgs - vds; new vds is -vds; new source-bulk is vdb = vds+vsb.
        let (i, r, vth, vdsat, vov) = ids_forward(card, geom, vgs - vds, -vds, vds + vsb);
        (-i, r, vth, vdsat, vov)
    }
}

/// Forward-region current of the normalised device (`vds >= 0`).
fn ids_forward(
    card: &MosModelCard,
    geom: &MosGeometry,
    vgs: f64,
    vds: f64,
    vsb: f64,
) -> (f64, Region, f64, f64, f64) {
    // Body effect; clamp the sqrt argument to stay defined under forward
    // body bias excursions during Newton iterations.
    let phi = card.phi.max(0.1);
    let sq = (phi + vsb).max(0.025).sqrt();
    let vto = card.vto.abs();
    let mut vth = vto + card.gamma * (sq - phi.sqrt());

    // DIBL lowers the threshold with drain bias (Level 3 / BSIM).
    if matches!(card.level, MosLevel::Level3 | MosLevel::Bsim) {
        vth -= card.eta * vds;
    }

    // Subthreshold slope factor: from NFS if given, else from the depletion
    // capacitance ratio implied by gamma.
    let n = if card.nfs > 0.0 {
        card.nfs
    } else {
        1.0 + card.gamma / (2.0 * sq)
    };

    // Smoothed overdrive: behaves like vgs - vth above threshold and like an
    // exponential with slope n·VT below, C-infinity everywhere.
    let vov_raw = vgs - vth;
    let a = 2.0 * n * VT_THERMAL;
    let x = vov_raw / a;
    let vov = if x > 30.0 {
        vov_raw
    } else if x < -60.0 {
        a * (x).exp() // ln(1+e^x) ~ e^x
    } else {
        a * x.exp().ln_1p()
    };
    let region_sub = vov_raw < 0.0;

    // Mobility degradation (Level 2 and above).
    let kp_eff = match card.level {
        MosLevel::Level1 => card.kp,
        _ => card.kp / (1.0 + card.theta * vov),
    };

    let leff = card.leff(geom.l);
    let beta = kp_eff * geom.m * geom.w / leff;

    // Velocity saturation (Level 3 / BSIM): critical voltage Ec * Leff.
    let vc = if matches!(card.level, MosLevel::Level3 | MosLevel::Bsim)
        && card.vmax > 0.0
        && card.u0 > 0.0
    {
        card.vmax * leff / card.u0 * (1.0 + card.theta * vov)
    } else {
        f64::INFINITY
    };
    let vdsat = if vc.is_finite() {
        vov * vc / (vov + vc)
    } else {
        vov
    };

    let clm = 1.0 + lambda_eff(card, geom.l) * vds;
    let (i, region) = if vds < vdsat {
        let denom = if vc.is_finite() { 1.0 + vds / vc } else { 1.0 };
        (beta * (vov - vds / 2.0) * vds / denom * clm, Region::Triode)
    } else {
        let i_sat = 0.5 * beta * vov * vdsat * clm;
        // The simplified BSIM level softens the knee: blend a fraction of
        // triode conductance just above vdsat via the kappa parameter.
        let i = if card.level == MosLevel::Bsim && card.kappa > 0.0 {
            i_sat
                * (1.0
                    + card.kappa
                        * ((vds - vdsat) / (vds + vdsat + 1e-9))
                        * card.lambda
                        * 10.0
                        * vdsat)
        } else {
            i_sat
        };
        (i, Region::Saturation)
    };
    let region = if region_sub {
        Region::Subthreshold
    } else {
        region
    };
    (i, region, vth, vdsat, vov)
}

/// Structure-of-arrays bias storage for batched device evaluation.
///
/// The DC stamper and the AC chunk assembler gather all MOSFET terminal
/// voltages of an iteration into contiguous lanes before evaluating,
/// instead of chasing one element at a time through the AoS element
/// list. The lanes are plain `Vec<f64>`, reusable across Newton
/// iterations without reallocation (`clear` keeps capacity).
#[derive(Debug, Default, Clone)]
pub struct BiasBatch {
    /// Gate-source voltages, volts.
    pub vgs: Vec<f64>,
    /// Drain-source voltages, volts.
    pub vds: Vec<f64>,
    /// Source-bulk voltages, volts.
    pub vsb: Vec<f64>,
}

impl BiasBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the lanes' contents, keeping their capacity.
    pub fn clear(&mut self) {
        self.vgs.clear();
        self.vds.clear();
        self.vsb.clear();
    }

    /// Appends one bias point, returning its lane index.
    pub fn push(&mut self, bias: BiasPoint) -> usize {
        let idx = self.vgs.len();
        self.vgs.push(bias.vgs);
        self.vds.push(bias.vds);
        self.vsb.push(bias.vsb);
        idx
    }

    /// Number of bias points in the batch.
    pub fn len(&self) -> usize {
        self.vgs.len()
    }

    /// True when no bias points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vgs.is_empty()
    }

    /// Reads lane `k` back as a [`BiasPoint`].
    pub fn get(&self, k: usize) -> BiasPoint {
        BiasPoint {
            vgs: self.vgs[k],
            vds: self.vds[k],
            vsb: self.vsb[k],
        }
    }
}

/// Structure-of-arrays result lanes matching a [`BiasBatch`].
///
/// Each lane holds one field of [`DeviceEval`] for every evaluated
/// point, so downstream consumers (the batched stamp path) read
/// contiguous `gm`/`gds`/`gmb` streams instead of striding through an
/// array of structs.
#[derive(Debug, Default, Clone)]
pub struct EvalBatch {
    /// Drain currents, amperes.
    pub ids: Vec<f64>,
    /// `∂ids/∂vgs` lanes, siemens.
    pub gm: Vec<f64>,
    /// `∂ids/∂vds` lanes, siemens.
    pub gds: Vec<f64>,
    /// `∂ids/∂vbs` lanes, siemens.
    pub gmb: Vec<f64>,
    /// Operating regions.
    pub region: Vec<Region>,
    /// Effective thresholds, volts.
    pub vth: Vec<f64>,
    /// Saturation voltages, volts.
    pub vdsat: Vec<f64>,
    /// Smoothed overdrives, volts.
    pub vov: Vec<f64>,
}

impl EvalBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the lanes' contents, keeping their capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.gm.clear();
        self.gds.clear();
        self.gmb.clear();
        self.region.clear();
        self.vth.clear();
        self.vdsat.clear();
        self.vov.clear();
    }

    /// Number of evaluated points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no evaluations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Appends one evaluation across all lanes.
    pub fn push(&mut self, e: DeviceEval) {
        self.ids.push(e.ids);
        self.gm.push(e.gm);
        self.gds.push(e.gds);
        self.gmb.push(e.gmb);
        self.region.push(e.region);
        self.vth.push(e.vth);
        self.vdsat.push(e.vdsat);
        self.vov.push(e.vov);
    }

    /// Reconstructs lane `k` as a [`DeviceEval`].
    pub fn get(&self, k: usize) -> DeviceEval {
        DeviceEval {
            ids: self.ids[k],
            gm: self.gm[k],
            gds: self.gds[k],
            gmb: self.gmb[k],
            region: self.region[k],
            vth: self.vth[k],
            vdsat: self.vdsat[k],
            vov: self.vov[k],
        }
    }
}

/// Evaluates one device across a whole batch of bias points.
///
/// Each lane runs exactly the scalar [`evaluate`] arithmetic, so the
/// results are bit-identical to point-at-a-time evaluation — the batch
/// form exists for the memory layout (contiguous output lanes), not for
/// a different numerical path.
pub fn evaluate_batch(
    card: &MosModelCard,
    geom: &MosGeometry,
    biases: &BiasBatch,
    out: &mut EvalBatch,
) {
    out.clear();
    for k in 0..biases.len() {
        out.push(evaluate(card, geom, biases.get(k)));
    }
}

/// Evaluates a heterogeneous run of devices, one bias point each.
///
/// `devices` must yield exactly `biases.len()` `(card, geometry)` pairs,
/// paired lane-for-lane with the batch. This is the shape the DC stamper
/// uses: gather every MOSFET's terminal voltages for the current Newton
/// iterate into a [`BiasBatch`], evaluate them all back-to-back, then
/// stamp from the SoA result lanes. Lane `k` is bit-identical to
/// `evaluate(cards[k], geoms[k], biases.get(k))`.
pub fn evaluate_batch_with<'a, I>(devices: I, biases: &BiasBatch, out: &mut EvalBatch)
where
    I: IntoIterator<Item = (&'a MosModelCard, &'a MosGeometry)>,
{
    out.clear();
    for (k, (card, geom)) in devices.into_iter().enumerate() {
        if k >= biases.len() {
            break;
        }
        out.push(evaluate(card, geom, biases.get(k)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::Technology;

    fn nmos_card() -> MosModelCard {
        Technology::default_1p2um().nmos().unwrap().clone()
    }

    fn pmos_card() -> MosModelCard {
        Technology::default_1p2um().pmos().unwrap().clone()
    }

    #[test]
    fn square_law_saturation_current() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let vov = 0.5;
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: card.vto + vov,
                vds: 2.5,
                vsb: 0.0,
            },
        );
        // Expected: kp/2 * W/Leff * vov^2 * (1 + lambda vds)
        let beta = card.kp * geom.w / card.leff(geom.l);
        let expect = 0.5 * beta * vov * vov * (1.0 + card.lambda * 2.5);
        assert_eq!(e.region, Region::Saturation);
        // The smoothed overdrive is slightly above vov_raw; allow 5%.
        assert!(
            (e.ids - expect).abs() / expect < 0.05,
            "ids = {}, expect = {}",
            e.ids,
            expect
        );
    }

    #[test]
    fn gm_matches_square_law() {
        let card = nmos_card();
        let geom = MosGeometry::new(20e-6, 2.4e-6);
        let vov = 0.4;
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: card.vto + vov,
                vds: 2.0,
                vsb: 0.0,
            },
        );
        // gm = sqrt(2 * KP * W/Leff * Id): the relation inverted by sizing.
        let gm_expected = (2.0 * card.kp * geom.w / card.leff(geom.l) * e.ids).sqrt()
            * (1.0 + card.lambda * 2.0).sqrt();
        assert!(
            (e.gm - gm_expected).abs() / gm_expected < 0.06,
            "gm = {}, expect = {}",
            e.gm,
            gm_expected
        );
    }

    #[test]
    fn gds_matches_lambda_relation() {
        // Paper eq (4): gd = lambda * Ids / (1 + lambda |Vds|)
        let card = nmos_card();
        let geom = MosGeometry::new(20e-6, 2.4e-6);
        let vds = 2.5;
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: card.vto + 0.5,
                vds,
                vsb: 0.0,
            },
        );
        let gd_expected = card.lambda * e.ids / (1.0 + card.lambda * vds);
        assert!(
            (e.gds - gd_expected).abs() / gd_expected < 0.02,
            "gds = {}, expect = {}",
            e.gds,
            gd_expected
        );
    }

    #[test]
    fn gmb_positive_with_body_effect() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: 1.5,
                vds: 2.0,
                vsb: 1.0,
            },
        );
        assert!(e.gmb > 0.0);
        // Paper eq (3): gmb = gm * gamma / (2 sqrt(2phi_f + Vsb))
        let expect = e.gm * card.gamma / (2.0 * (card.phi + 1.0).sqrt());
        assert!(
            (e.gmb - expect).abs() / expect < 0.1,
            "gmb = {}, expect = {}",
            e.gmb,
            expect
        );
    }

    #[test]
    fn body_effect_raises_threshold() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let e0 = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: 1.5,
                vds: 2.0,
                vsb: 0.0,
            },
        );
        let e1 = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: 1.5,
                vds: 2.0,
                vsb: 2.0,
            },
        );
        assert!(e1.vth > e0.vth);
        assert!(e1.ids < e0.ids);
    }

    #[test]
    fn pmos_current_is_negative() {
        let card = pmos_card();
        let geom = MosGeometry::new(30e-6, 2.4e-6);
        // Source at 5 V, gate at 3 V, drain at 2 V: vgs = -2, vds = -3.
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: -2.0,
                vds: -3.0,
                vsb: 0.0,
            },
        );
        assert!(e.ids < 0.0, "pmos drain current should be negative");
        assert!(e.gm > 0.0, "jacobian gm stays positive");
        assert!(e.gds > 0.0);
        assert_eq!(e.region, Region::Saturation);
    }

    #[test]
    fn cutoff_leakage_is_tiny() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: 0.0,
                vds: 5.0,
                vsb: 0.0,
            },
        );
        assert_eq!(e.region, Region::Subthreshold);
        assert!(e.ids < 1e-12, "leakage {} too large", e.ids);
        assert!(e.ids > 0.0, "smoothed model never fully off");
    }

    #[test]
    fn triode_vs_saturation_boundary_continuous() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let vgs = card.vto + 0.6;
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs,
                vds: 1.0,
                vsb: 0.0,
            },
        );
        let vdsat = e.vdsat;
        let below = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs,
                vds: vdsat - 1e-6,
                vsb: 0.0,
            },
        );
        let above = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs,
                vds: vdsat + 1e-6,
                vsb: 0.0,
            },
        );
        let jump = (above.ids - below.ids).abs() / above.ids.abs();
        assert!(jump < 1e-3, "current jump {jump} at region boundary");
    }

    #[test]
    fn reverse_conduction_antisymmetric_at_zero_vds() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let fwd = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: 2.0,
                vds: 0.05,
                vsb: 0.0,
            },
        );
        let rev = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs: 2.0,
                vds: -0.05,
                vsb: 0.0,
            },
        );
        assert!(fwd.ids > 0.0);
        assert!(rev.ids < 0.0);
        assert!(
            (fwd.ids + rev.ids).abs() / fwd.ids < 0.1,
            "fwd {} rev {}",
            fwd.ids,
            rev.ids
        );
    }

    #[test]
    fn level3_current_below_level1() {
        // Velocity saturation and mobility degradation can only reduce drive.
        let mut c1 = nmos_card();
        c1.level = MosLevel::Level1;
        let mut c3 = nmos_card();
        c3.level = MosLevel::Level3;
        c3.theta = 0.1;
        c3.vmax = 1.5e5;
        let geom = MosGeometry::new(10e-6, 1.2e-6);
        let b = BiasPoint {
            vgs: 2.5,
            vds: 3.0,
            vsb: 0.0,
        };
        let e1 = evaluate(&c1, &geom, b);
        let e3 = evaluate(&c3, &geom, b);
        assert!(e3.ids < e1.ids, "L3 {} should be < L1 {}", e3.ids, e1.ids);
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let f = |vgs: f64| {
            evaluate(
                &card,
                &geom,
                BiasPoint {
                    vgs,
                    vds: 2.0,
                    vsb: 0.0,
                },
            )
            .ids
        };
        // One decade per n*VT*ln(10): check the current ratio over 100 mV.
        let r = f(0.4) / f(0.3);
        assert!(r > 5.0, "subthreshold ratio {r} too flat");
        assert!(r < 100.0, "subthreshold ratio {r} too steep");
    }

    #[test]
    fn longer_channel_reduces_gds() {
        let card = nmos_card();
        let vov = 0.4;
        let short = evaluate(
            &card,
            &MosGeometry::new(10e-6, 2.4e-6),
            BiasPoint {
                vgs: card.vto + vov,
                vds: 2.5,
                vsb: 0.0,
            },
        );
        let long = evaluate(
            &card,
            &MosGeometry::new(40e-6, 9.6e-6), // same W/L aspect, 4x length
            BiasPoint {
                vgs: card.vto + vov,
                vds: 2.5,
                vsb: 0.0,
            },
        );
        // Similar current, much lower output conductance → higher gain.
        assert!((long.ids - short.ids).abs() / short.ids < 0.25);
        assert!(long.gds < short.gds / 2.0);
        assert!(long.gm / long.gds > short.gm / short.gds);
    }

    #[test]
    fn batch_eval_is_bit_identical_to_scalar() {
        let tech = Technology::default_1p2um();
        let nmos = tech.nmos().unwrap();
        let pmos = tech.pmos().unwrap();
        let gn = MosGeometry::new(10e-6, 2.4e-6);
        let gp = MosGeometry::new(24e-6, 2.4e-6);

        let mut biases = BiasBatch::new();
        let mut points = Vec::new();
        for k in 0..40 {
            let b = BiasPoint {
                vgs: -2.0 + 0.13 * k as f64,
                vds: -1.5 + 0.11 * k as f64,
                vsb: 0.05 * (k % 5) as f64,
            };
            points.push(b);
            biases.push(b);
        }

        // Homogeneous: one device, many points.
        let mut out = EvalBatch::new();
        evaluate_batch(nmos, &gn, &biases, &mut out);
        assert_eq!(out.len(), points.len());
        for (k, b) in points.iter().enumerate() {
            let scalar = evaluate(nmos, &gn, *b);
            assert_eq!(
                format!("{:?}", out.get(k)),
                format!("{scalar:?}"),
                "homogeneous lane {k} diverged"
            );
        }

        // Heterogeneous: alternating NMOS/PMOS lanes.
        let devices: Vec<(&_, &_)> = (0..points.len())
            .map(|k| if k % 2 == 0 { (nmos, &gn) } else { (pmos, &gp) })
            .collect();
        evaluate_batch_with(devices.iter().copied(), &biases, &mut out);
        for (k, b) in points.iter().enumerate() {
            let (card, geom) = devices[k];
            let scalar = evaluate(card, geom, *b);
            assert_eq!(
                format!("{:?}", out.get(k)),
                format!("{scalar:?}"),
                "heterogeneous lane {k} diverged"
            );
        }
    }

    #[test]
    fn monotone_in_vgs() {
        let card = nmos_card();
        let geom = MosGeometry::new(10e-6, 2.4e-6);
        let mut last = -1.0;
        for k in 0..50 {
            let vgs = k as f64 * 0.1;
            let e = evaluate(
                &card,
                &geom,
                BiasPoint {
                    vgs,
                    vds: 2.0,
                    vsb: 0.0,
                },
            );
            assert!(e.ids >= last, "non-monotone at vgs={vgs}");
            last = e.ids;
        }
    }
}
