//! MOS capacitance models: Meyer intrinsic caps plus junction capacitances.
//!
//! These feed the AC and transient analyses in `ape-spice`, and the pole
//! estimates used by the estimator in `ape-core` (a dominant pole at
//! `g/(C_gs + C_load)` is what sets UGF and bandwidth estimates).

use crate::eval::Region;
use ape_netlist::{MosGeometry, MosModelCard};

/// Default drain/source diffusion extent used to derive junction areas when
/// the layout is not known, metres. Typical for a 1.2 µm process.
pub const DIFFUSION_LENGTH: f64 = 3.0e-6;

/// The intrinsic + overlap capacitances of a MOSFET at an operating point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosCaps {
    /// Gate-source capacitance, farads.
    pub cgs: f64,
    /// Gate-drain capacitance, farads.
    pub cgd: f64,
    /// Gate-bulk capacitance, farads.
    pub cgb: f64,
    /// Drain-bulk junction capacitance, farads.
    pub cdb: f64,
    /// Source-bulk junction capacitance, farads.
    pub csb: f64,
}

impl MosCaps {
    /// Total capacitance seen looking into the gate with source and drain
    /// at AC ground, farads.
    pub fn gate_total(&self) -> f64 {
        self.cgs + self.cgd + self.cgb
    }
}

/// Meyer partition of the intrinsic gate capacitance by region, including
/// the overlap terms.
///
/// * Saturation: `cgs = 2/3·W·L·Cox + overlap`, `cgd = overlap` only.
/// * Triode: the channel splits evenly, `1/2` each side.
/// * Subthreshold: the channel is absent; the gate sees the bulk.
///
/// # Example
///
/// ```
/// use ape_netlist::{Technology, MosGeometry};
/// use ape_mos::{meyer_caps, Region};
/// let tech = Technology::default_1p2um();
/// let nmos = tech.nmos().unwrap();
/// let caps = meyer_caps(nmos, &MosGeometry::new(10e-6, 2.4e-6), Region::Saturation);
/// assert!(caps.cgs > caps.cgd);
/// ```
pub fn meyer_caps(card: &MosModelCard, geom: &MosGeometry, region: Region) -> MosCaps {
    let w = geom.w * geom.m;
    let leff = card.leff(geom.l);
    let cox_area = card.cox() * w * leff;
    let c_ov_s = card.cgso * w;
    let c_ov_d = card.cgdo * w;
    let c_ov_b = card.cgbo * geom.l * geom.m;
    let (ci_gs, ci_gd, ci_gb) = match region {
        Region::Saturation => (2.0 / 3.0 * cox_area, 0.0, 0.0),
        Region::Triode => (0.5 * cox_area, 0.5 * cox_area, 0.0),
        Region::Subthreshold => (0.0, 0.0, cox_area),
    };
    MosCaps {
        cgs: ci_gs + c_ov_s,
        cgd: ci_gd + c_ov_d,
        cgb: ci_gb + c_ov_b,
        cdb: 0.0,
        csb: 0.0,
    }
}

/// Reverse-biased junction capacitances of the drain and source diffusions.
///
/// Areas are derived from the device width and `DIFFUSION_LENGTH`; the
/// voltage dependence follows the SPICE grading law
/// `C = C0 / (1 + V_rev/pb)^mj`, with the forward-bias side clamped.
pub fn junction_caps(
    card: &MosModelCard,
    geom: &MosGeometry,
    vdb_rev: f64,
    vsb_rev: f64,
) -> (f64, f64) {
    let w = geom.w * geom.m;
    let area = w * DIFFUSION_LENGTH;
    let perim = 2.0 * (w + DIFFUSION_LENGTH);
    let one = |vrev: f64| {
        let vr = vrev.max(-0.4); // clamp forward bias to keep the model defined
        let denom_a = (1.0 + vr / card.pb).max(0.1);
        let denom_p = (1.0 + vr / card.pb).max(0.1);
        card.cj * area / denom_a.powf(card.mj) + card.cjsw * perim / denom_p.powf(card.mjsw)
    };
    (one(vdb_rev), one(vsb_rev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::Technology;

    fn card() -> MosModelCard {
        Technology::default_1p2um().nmos().unwrap().clone()
    }

    #[test]
    fn saturation_partition() {
        let c = card();
        let g = MosGeometry::new(10e-6, 2.4e-6);
        let caps = meyer_caps(&c, &g, Region::Saturation);
        let cox_area = c.cox() * 10e-6 * c.leff(2.4e-6);
        assert!((caps.cgs - (2.0 / 3.0 * cox_area + c.cgso * 10e-6)).abs() < 1e-18);
        assert!((caps.cgd - c.cgdo * 10e-6).abs() < 1e-20);
    }

    #[test]
    fn triode_splits_evenly() {
        let c = card();
        let g = MosGeometry::new(10e-6, 2.4e-6);
        let caps = meyer_caps(&c, &g, Region::Triode);
        assert!((caps.cgs - caps.cgd).abs() < 1e-18);
    }

    #[test]
    fn subthreshold_gate_sees_bulk() {
        let c = card();
        let g = MosGeometry::new(10e-6, 2.4e-6);
        let caps = meyer_caps(&c, &g, Region::Subthreshold);
        assert!(caps.cgb > caps.cgs);
        assert!(caps.cgb > caps.cgd);
    }

    #[test]
    fn junction_caps_shrink_with_reverse_bias() {
        let c = card();
        let g = MosGeometry::new(10e-6, 2.4e-6);
        let (cdb0, _) = junction_caps(&c, &g, 0.0, 0.0);
        let (cdb5, _) = junction_caps(&c, &g, 5.0, 0.0);
        assert!(cdb5 < cdb0);
        assert!(cdb5 > 0.0);
    }

    #[test]
    fn multiplicity_scales_caps() {
        let c = card();
        let g1 = MosGeometry::new(10e-6, 2.4e-6);
        let g2 = MosGeometry { m: 2.0, ..g1 };
        let a = meyer_caps(&c, &g1, Region::Saturation);
        let b = meyer_caps(&c, &g2, Region::Saturation);
        assert!((b.cgs - 2.0 * a.cgs).abs() / b.cgs < 1e-12);
    }

    #[test]
    fn gate_total_is_sum() {
        let caps = MosCaps {
            cgs: 1.0,
            cgd: 2.0,
            cgb: 3.0,
            cdb: 0.0,
            csb: 0.0,
        };
        assert_eq!(caps.gate_total(), 6.0);
    }
}
