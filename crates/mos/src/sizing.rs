//! Inverse device solvers — the "transistor sizing process" of paper §4.1.
//!
//! > *"The transistor sizing process consists in solving these symbolic
//! > equations such that the constraints are met. For example, if a
//! > transistor is specified by a given transconductance gm (Gain) and a
//! > drain current, APE estimates the transistor size, the output drain
//! > conductance and the parasite capacitances."*
//!
//! Each solver starts from the closed-form square-law inversion and then
//! refines numerically against the full forward model of the card's level,
//! so sizing stays accurate for Level 2/3/BSIM cards too.

use crate::caps::{junction_caps, meyer_caps, MosCaps};
use crate::error::MosError;
use crate::eval::{evaluate, BiasPoint, Region};
use ape_netlist::{MosGeometry, MosModelCard};

/// A sized transistor: geometry plus the operating point and small-signal
/// parameters it was sized at. This is the "sized transistor object" the
/// paper saves and reuses across the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizedMos {
    /// Solved geometry.
    pub geometry: MosGeometry,
    /// Gate-source bias (physical sign: negative for PMOS), volts.
    pub vgs: f64,
    /// Drain-source bias assumed during sizing (physical sign), volts.
    pub vds: f64,
    /// Source-bulk bias assumed during sizing (physical sign), volts.
    pub vsb: f64,
    /// Threshold voltage magnitude at this body bias, volts.
    pub vth: f64,
    /// Overdrive voltage magnitude, volts.
    pub vov: f64,
    /// Drain current magnitude, amperes.
    pub ids: f64,
    /// Transconductance, siemens.
    pub gm: f64,
    /// Output conductance, siemens.
    pub gds: f64,
    /// Bulk transconductance, siemens.
    pub gmb: f64,
    /// Capacitances at the operating point.
    pub caps: MosCaps,
}

impl SizedMos {
    /// Gate area of the sized device, square metres.
    pub fn gate_area(&self) -> f64 {
        self.geometry.gate_area()
    }

    /// Intrinsic voltage gain `gm/gds` of the device.
    pub fn intrinsic_gain(&self) -> f64 {
        self.gm / self.gds
    }
}

fn check_finite_positive(name: &str, v: f64) -> Result<(), MosError> {
    if !(v.is_finite() && v > 0.0) {
        return Err(MosError::InvalidInput(format!(
            "{name} must be positive and finite, got {v}"
        )));
    }
    Ok(())
}

/// Packages the result of a converged sizing at a normalised operating point.
fn finish(card: &MosModelCard, geom: MosGeometry, vgs_n: f64, vds_n: f64, vsb_n: f64) -> SizedMos {
    let s = card.polarity.sign();
    let bias = BiasPoint {
        vgs: s * vgs_n,
        vds: s * vds_n,
        vsb: s * vsb_n,
    };
    let e = evaluate(card, &geom, bias);
    let mut caps = meyer_caps(card, &geom, e.region);
    // Junction reverse biases: approximate the drain at vds above the
    // source, bulk at the source rail.
    let (cdb, csb) = junction_caps(card, &geom, vds_n + vsb_n, vsb_n);
    caps.cdb = cdb;
    caps.csb = csb;
    SizedMos {
        geometry: geom,
        vgs: bias.vgs,
        vds: bias.vds,
        vsb: bias.vsb,
        vth: e.vth,
        vov: e.vov,
        ids: e.ids.abs(),
        gm: e.gm,
        gds: e.gds,
        gmb: e.gmb,
        caps,
    }
}

/// Sizes a device to deliver transconductance `gm` at drain current `id`
/// (both magnitudes), with drawn length `l`.
///
/// Uses the square-law relations `Vov = 2·Id/gm` and
/// `W/L = gm² / (2·KP·Id)` as the seed, then Newton-refines (W, Vgs) so the
/// *full* model of the card's level hits (gm, Id) at `vds = vds_assume`.
///
/// # Errors
///
/// * [`MosError::InvalidInput`] for non-positive `gm`, `id` or `l`.
/// * [`MosError::InfeasibleBias`] when `Vov = 2Id/gm` is out of the useful
///   strong-inversion range (≈ 50 mV … 2.5 V).
/// * [`MosError::NoConvergence`] if the refinement stalls.
///
/// # Example
///
/// ```
/// use ape_netlist::Technology;
/// use ape_mos::sizing::size_for_gm_id;
/// # fn main() -> Result<(), ape_mos::MosError> {
/// let tech = Technology::default_1p2um();
/// let m = size_for_gm_id(tech.nmos().unwrap(), 50e-6, 5e-6, 2.4e-6)?;
/// assert!(m.geometry.w > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn size_for_gm_id(card: &MosModelCard, gm: f64, id: f64, l: f64) -> Result<SizedMos, MosError> {
    size_for_gm_id_at(card, gm, id, l, 2.5, 0.0)
}

/// Like [`size_for_gm_id`] but with explicit drain-source and source-bulk
/// bias magnitudes assumed during sizing.
///
/// # Errors
///
/// Same as [`size_for_gm_id`].
pub fn size_for_gm_id_at(
    card: &MosModelCard,
    gm: f64,
    id: f64,
    l: f64,
    vds_assume: f64,
    vsb_assume: f64,
) -> Result<SizedMos, MosError> {
    let _span = ape_probe::span("ape.l1.size_gm_id");
    check_finite_positive("gm", gm)?;
    check_finite_positive("id", id)?;
    check_finite_positive("l", l)?;
    let vov = 2.0 * id / gm;
    if !(0.03..=3.0).contains(&vov) {
        return Err(MosError::InfeasibleBias {
            message: format!("vov = 2·Id/gm = {vov:.3} V outside [0.03, 3.0] V"),
        });
    }
    // Square-law seed.
    let leff = card.leff(l);
    let mut w = gm * gm / (2.0 * card.kp * id) * leff;
    w = w.max(0.2e-6);
    let vth0 = threshold(card, vsb_assume);
    let mut vgs = vth0 + vov;

    // 2-D damped Newton on (ln W, vgs) matching (ln Id, ln gm).
    let mut it = 0usize;
    loop {
        let geom = MosGeometry::new(w, l);
        let e = eval_norm(card, &geom, vgs, vds_assume, vsb_assume);
        let f1 = (e.ids / id).ln();
        let f2 = (e.gm / gm).ln();
        if f1.abs() < 1e-7 && f2.abs() < 1e-7 {
            ape_probe::counter("mos.size.newton_iters", it as u64);
            return Ok(finish(card, geom, vgs, vds_assume, vsb_assume));
        }
        if it >= 80 {
            ape_probe::counter("mos.size.failures", 1);
            return Err(MosError::NoConvergence {
                what: format!("(W, Vgs) for gm={gm:.3e}, id={id:.3e}"),
                iterations: it,
            });
        }
        // Finite-difference Jacobian in (ln w, vgs).
        let dw = 1e-4;
        let dv = 1e-5;
        let ew = eval_norm(
            card,
            &MosGeometry::new(w * (1.0 + dw), l),
            vgs,
            vds_assume,
            vsb_assume,
        );
        let ev = eval_norm(
            card,
            &MosGeometry::new(w, l),
            vgs + dv,
            vds_assume,
            vsb_assume,
        );
        let j11 = ((ew.ids / e.ids).ln()) / dw;
        let j21 = ((ew.gm / e.gm).ln()) / dw;
        let j12 = ((ev.ids / e.ids).ln()) / dv;
        let j22 = ((ev.gm / e.gm).ln()) / dv;
        let det = j11 * j22 - j12 * j21;
        if det.abs() < 1e-12 {
            ape_probe::counter("mos.size.failures", 1);
            return Err(MosError::NoConvergence {
                what: "singular sizing jacobian".into(),
                iterations: it,
            });
        }
        let dlw = (-f1 * j22 + f2 * j12) / det;
        let dvg = (-f2 * j11 + f1 * j21) / det;
        // Damp steps to keep the iteration inside the model's domain.
        let dlw = dlw.clamp(-1.0, 1.0);
        let dvg = dvg.clamp(-0.3, 0.3);
        w *= dlw.exp();
        w = w.clamp(0.05e-6, 0.1);
        vgs = (vgs + dvg).clamp(vth0 - 0.2, vth0 + 3.5);
        it += 1;
    }
}

/// Sizes a device to carry `id` at overdrive `vov` (both magnitudes) with
/// drawn length `l` — the mirror/bias-branch sizing primitive.
///
/// # Errors
///
/// * [`MosError::InvalidInput`] for non-positive inputs.
/// * [`MosError::NoConvergence`] if the width refinement stalls.
pub fn size_for_id_vov(
    card: &MosModelCard,
    id: f64,
    vov: f64,
    l: f64,
) -> Result<SizedMos, MosError> {
    size_for_id_vov_at(card, id, vov, l, 2.5, 0.0)
}

/// Like [`size_for_id_vov`] with explicit assumed biases.
///
/// # Errors
///
/// Same as [`size_for_id_vov`].
pub fn size_for_id_vov_at(
    card: &MosModelCard,
    id: f64,
    vov: f64,
    l: f64,
    vds_assume: f64,
    vsb_assume: f64,
) -> Result<SizedMos, MosError> {
    let _span = ape_probe::span("ape.l1.size_id_vov");
    check_finite_positive("id", id)?;
    check_finite_positive("vov", vov)?;
    check_finite_positive("l", l)?;
    if vov > 3.0 {
        return Err(MosError::InfeasibleBias {
            message: format!("vov = {vov} V too large"),
        });
    }
    let leff = card.leff(l);
    let vth0 = threshold(card, vsb_assume);
    let vgs = vth0 + vov;
    let mut w = (2.0 * id * leff / (card.kp * vov * vov)).max(0.2e-6);
    // 1-D multiplicative update: Id is proportional to W at fixed bias.
    for it in 0..60 {
        let e = eval_norm(card, &MosGeometry::new(w, l), vgs, vds_assume, vsb_assume);
        let ratio = id / e.ids;
        if (ratio - 1.0).abs() < 1e-9 {
            ape_probe::counter("mos.size.newton_iters", it as u64);
            return Ok(finish(
                card,
                MosGeometry::new(w, l),
                vgs,
                vds_assume,
                vsb_assume,
            ));
        }
        w = (w * ratio).clamp(0.05e-6, 0.1);
    }
    ape_probe::counter("mos.size.failures", 1);
    Err(MosError::NoConvergence {
        what: format!("W for id={id:.3e} at vov={vov}"),
        iterations: 60,
    })
}

/// Solves the gate-source voltage magnitude that makes a *given* geometry
/// carry current `id` (magnitude) at the assumed biases. Monotonicity of
/// `Ids(Vgs)` makes bisection exact.
///
/// # Errors
///
/// * [`MosError::InvalidInput`] for non-positive `id`.
/// * [`MosError::InfeasibleBias`] if even `vgs = vth + 4 V` cannot carry `id`.
pub fn vgs_for_id(
    card: &MosModelCard,
    geom: &MosGeometry,
    id: f64,
    vds_assume: f64,
    vsb_assume: f64,
) -> Result<f64, MosError> {
    check_finite_positive("id", id)?;
    let vth0 = threshold(card, vsb_assume);
    let mut lo = vth0 - 0.5;
    let mut hi = vth0 + 4.0;
    let f = |vgs: f64| eval_norm(card, geom, vgs, vds_assume, vsb_assume).ids - id;
    if f(hi) < 0.0 {
        return Err(MosError::InfeasibleBias {
            message: format!("geometry too small to carry {id:.3e} A"),
        });
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(card.polarity.sign() * 0.5 * (lo + hi))
}

/// Threshold voltage magnitude at source-bulk bias `vsb` (magnitude).
pub fn threshold(card: &MosModelCard, vsb: f64) -> f64 {
    let phi = card.phi.max(0.1);
    card.vto.abs() + card.gamma * ((phi + vsb.max(0.0)).sqrt() - phi.sqrt())
}

/// Normalised evaluation helper: biases given as magnitudes in the N-frame.
fn eval_norm(
    card: &MosModelCard,
    geom: &MosGeometry,
    vgs_n: f64,
    vds_n: f64,
    vsb_n: f64,
) -> NormEval {
    let s = card.polarity.sign();
    let e = evaluate(
        card,
        geom,
        BiasPoint {
            vgs: s * vgs_n,
            vds: s * vds_n,
            vsb: s * vsb_n,
        },
    );
    NormEval {
        ids: e.ids.abs().max(1e-18),
        gm: e.gm.max(1e-18),
        region: e.region,
    }
}

struct NormEval {
    ids: f64,
    gm: f64,
    #[allow(dead_code)]
    region: Region,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::{MosLevel, Technology};

    fn nmos() -> MosModelCard {
        Technology::default_1p2um().nmos().unwrap().clone()
    }

    fn pmos() -> MosModelCard {
        Technology::default_1p2um().pmos().unwrap().clone()
    }

    #[test]
    fn gm_id_sizing_hits_targets() {
        let card = nmos();
        for (gm, id) in [
            (50e-6, 5e-6),
            (100e-6, 10e-6),
            (1e-3, 200e-6),
            (20e-6, 1e-6),
        ] {
            let m = size_for_gm_id(&card, gm, id, 2.4e-6).unwrap();
            assert!((m.gm - gm).abs() / gm < 1e-4, "gm {} vs {}", m.gm, gm);
            assert!((m.ids - id).abs() / id < 1e-4, "id {} vs {}", m.ids, id);
        }
    }

    #[test]
    fn gm_id_sizing_works_for_pmos() {
        let card = pmos();
        let m = size_for_gm_id(&card, 100e-6, 10e-6, 2.4e-6).unwrap();
        assert!((m.gm - 100e-6).abs() / 100e-6 < 1e-4);
        assert!(m.vgs < 0.0, "pmos vgs must be negative, got {}", m.vgs);
        // PMOS needs ~3x the width of NMOS for the same gm/id.
        let mn = size_for_gm_id(&nmos(), 100e-6, 10e-6, 2.4e-6).unwrap();
        assert!(m.geometry.w > 2.0 * mn.geometry.w);
    }

    #[test]
    fn infeasible_vov_rejected() {
        let card = nmos();
        // vov = 2*id/gm = 2*100u/10u = 20 V: absurd.
        let err = size_for_gm_id(&card, 10e-6, 100e-6, 2.4e-6).unwrap_err();
        assert!(matches!(err, MosError::InfeasibleBias { .. }));
    }

    #[test]
    fn bad_inputs_rejected() {
        let card = nmos();
        assert!(size_for_gm_id(&card, -1.0, 1e-6, 2e-6).is_err());
        assert!(size_for_gm_id(&card, 1e-6, f64::NAN, 2e-6).is_err());
        assert!(size_for_id_vov(&card, 0.0, 0.2, 2e-6).is_err());
    }

    #[test]
    fn id_vov_sizing_hits_current() {
        let card = nmos();
        let m = size_for_id_vov(&card, 100e-6, 0.5, 2.4e-6).unwrap();
        assert!((m.ids - 100e-6).abs() / 100e-6 < 1e-6);
        // Square law check: W ≈ 2 Id Leff / (kp vov²)
        let w_sq = 2.0 * 100e-6 * card.leff(2.4e-6) / (card.kp * 0.25);
        assert!((m.geometry.w - w_sq).abs() / w_sq < 0.2);
    }

    #[test]
    fn vgs_for_id_bisection() {
        let card = nmos();
        let geom = MosGeometry::new(20e-6, 2.4e-6);
        let vgs = vgs_for_id(&card, &geom, 50e-6, 2.5, 0.0).unwrap();
        let e = evaluate(
            &card,
            &geom,
            BiasPoint {
                vgs,
                vds: 2.5,
                vsb: 0.0,
            },
        );
        assert!((e.ids - 50e-6).abs() / 50e-6 < 1e-6);
    }

    #[test]
    fn vgs_for_id_infeasible() {
        let card = nmos();
        let geom = MosGeometry::new(1e-6, 10e-6);
        assert!(vgs_for_id(&card, &geom, 1.0, 2.5, 0.0).is_err());
    }

    #[test]
    fn sizing_consistent_across_levels() {
        // Level 3 needs more width for the same (gm, id) because mobility
        // degradation weakens the device.
        let t1 = Technology::default_1p2um();
        let t3 = t1.with_level(MosLevel::Level3);
        let m1 = size_for_gm_id(t1.nmos().unwrap(), 200e-6, 20e-6, 2.4e-6).unwrap();
        let m3 = size_for_gm_id(t3.nmos().unwrap(), 200e-6, 20e-6, 2.4e-6).unwrap();
        assert!((m1.gm - 200e-6).abs() / 200e-6 < 1e-4);
        assert!((m3.gm - 200e-6).abs() / 200e-6 < 1e-4);
        assert!(m3.geometry.w > m1.geometry.w);
    }

    #[test]
    fn sized_mos_reports_caps_and_gain() {
        let m = size_for_gm_id(&nmos(), 100e-6, 10e-6, 2.4e-6).unwrap();
        assert!(m.caps.cgs > 0.0);
        assert!(m.caps.cdb > 0.0);
        assert!(m.intrinsic_gain() > 10.0);
        assert!(m.gate_area() > 0.0);
    }

    #[test]
    fn threshold_increases_with_vsb() {
        let card = nmos();
        assert!(threshold(&card, 2.0) > threshold(&card, 0.0));
        assert!((threshold(&card, 0.0) - card.vto).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_property_many_points() {
        // size → evaluate → the spec comes back (sampled grid, not proptest,
        // to keep the unit suite fast; the proptest version lives in
        // tests/proptests.rs of the crate).
        let card = nmos();
        for k in 1..8 {
            let id = 1e-6 * (k as f64) * 3.0;
            let gm = id * 12.0; // vov ≈ 0.17 V
            let m = size_for_gm_id(&card, gm, id, 1.8e-6).unwrap();
            let e = evaluate(
                &card,
                &m.geometry,
                BiasPoint {
                    vgs: m.vgs,
                    vds: 2.5,
                    vsb: 0.0,
                },
            );
            assert!((e.gm - gm).abs() / gm < 1e-3);
            assert!((e.ids - id).abs() / id < 1e-3);
        }
    }
}
