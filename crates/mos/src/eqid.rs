//! Registry of composition-equation identifiers.
//!
//! Every L2/L3/L4 composition equation in the estimator carries a stable
//! string id (the estimation-graph node kind that evaluates it). The
//! calibration layer keys its correction tables by these ids, so the
//! registry is the *schema* both sides validate against: a calibration
//! table naming an unknown equation, an unknown metric, or a
//! response-surface term vector of the wrong arity is rejected at load
//! time instead of silently misapplying corrections.
//!
//! The registry lives here — in the lowest crate of the stack — because
//! both `ape-calib` (table validation) and `ape-core` (application inside
//! graph nodes) need it without depending on each other.

/// One composition equation: its id, and the spec variables its optional
/// response-surface terms are expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquationId {
    /// Stable id — the estimation-graph node kind (e.g. `"l2.diffpair"`).
    pub id: &'static str,
    /// Names of the response-surface variables, in the order a node
    /// supplies them at application time. `vars.len()` is the arity a
    /// table's `terms` vector must match (or be empty for a pure factor).
    pub vars: &'static [&'static str],
}

impl EquationId {
    /// Number of response-surface variables this equation exposes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.vars.len()
    }
}

/// All calibratable composition equations.
///
/// L1 sizing nodes are deliberately absent: the device models are shared
/// bit-for-bit with the simulator (see the crate docs), so est-vs-sim
/// error lives entirely in these composition equations.
pub const ALL: &[EquationId] = &[
    EquationId {
        id: "l2.bias",
        vars: &["ln_vout", "ln_ibias"],
    },
    EquationId {
        id: "l2.mirror",
        vars: &["ln_iref", "ln_ratio"],
    },
    EquationId {
        id: "l2.gain",
        vars: &["ln_gain", "ln_ibias"],
    },
    EquationId {
        id: "l2.diffpair",
        vars: &["ln_adm", "ln_itail"],
    },
    EquationId {
        id: "l2.follower",
        vars: &["ln_ibias", "ln_cl"],
    },
    EquationId {
        id: "l3.opamp",
        vars: &["ln_gain", "ln_ugf"],
    },
    EquationId {
        id: "l3.folded",
        vars: &["ln_gain", "ln_ugf"],
    },
    EquationId {
        id: "l4.sample_hold",
        vars: &["ln_gain", "ln_bw"],
    },
    EquationId {
        id: "l4.audio_amp",
        vars: &["ln_gain", "ln_bw"],
    },
    EquationId {
        id: "l4.adc",
        vars: &["bits", "ln_delay"],
    },
    EquationId {
        id: "l4.dac",
        vars: &["bits", "ln_bw"],
    },
    EquationId {
        id: "l4.filter_lp",
        vars: &["ln_fc", "order"],
    },
    EquationId {
        id: "l4.filter_bp",
        vars: &["ln_f0", "q"],
    },
    EquationId {
        id: "l4.integrator",
        vars: &["ln_unity", "ln_cl"],
    },
    EquationId {
        id: "l4.summing_amp",
        vars: &["ln_gain", "ln_bw"],
    },
    EquationId {
        id: "l4.inverting_amp",
        vars: &["ln_gain", "ln_bw"],
    },
    EquationId {
        id: "l4.noninverting_amp",
        vars: &["ln_gain", "ln_bw"],
    },
    EquationId {
        id: "l4.comparator",
        vars: &["ln_overdrive", "ln_delay"],
    },
];

/// Metric names a correction may target — the [`Performance`] field names
/// plus the module-local `f0_hz` (band-pass center frequency).
///
/// [`Performance`]: https://docs.rs/ape-core (the `attrs::Performance` struct)
pub const METRICS: &[&str] = &[
    "dc_gain",
    "ugf_hz",
    "bw_hz",
    "power_w",
    "gate_area_m2",
    "zout_ohm",
    "cmrr_db",
    "slew_v_per_s",
    "ibias_a",
    "vout_v",
    "delay_s",
    "f0_hz",
];

/// Looks up an equation by id.
#[must_use]
pub fn lookup(id: &str) -> Option<&'static EquationId> {
    ALL.iter().find(|e| e.id == id)
}

/// Whether `name` is a known calibratable metric.
#[must_use]
pub fn is_metric(name: &str) -> bool {
    METRICS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_resolvable() {
        for (i, e) in ALL.iter().enumerate() {
            assert_eq!(lookup(e.id), Some(e), "{}", e.id);
            for other in &ALL[i + 1..] {
                assert_ne!(e.id, other.id);
            }
        }
        assert_eq!(lookup("l9.bogus"), None);
    }

    #[test]
    fn metrics_cover_the_performance_fields() {
        assert!(is_metric("dc_gain"));
        assert!(is_metric("gate_area_m2"));
        assert!(is_metric("f0_hz"));
        assert!(!is_metric("dc-gain"));
        assert!(!is_metric(""));
    }

    #[test]
    fn arity_counts_vars() {
        let e = lookup("l2.diffpair").unwrap();
        assert_eq!(e.arity(), 2);
        assert_eq!(e.vars, ["ln_adm", "ln_itail"]);
    }
}
