//! MOS transistor device models for the APE reproduction.
//!
//! This crate is the *lowest level of the APE hierarchy* (paper §4.1): it
//! evaluates SPICE-style device equations (Level 1, 2, 3 and a simplified
//! BSIM) and — crucially for the estimator — *inverts* them, sizing a device
//! from electrical constraints such as (gm, Id) or (Id, Vov).
//!
//! The same equations serve two masters:
//!
//! * `ape-spice` calls [`evaluate`] inside its Newton-Raphson loop, so the
//!   numerical simulator solves exactly these models;
//! * `ape-core` calls the closed-form [`sizing`] solvers, so the analytical
//!   estimator sizes against exactly these models.
//!
//! Est-vs-sim discrepancies therefore come only from the estimator's
//! simplified *composition* equations, which is precisely the error the
//! paper's Tables 2, 3 and 5 measure.
//!
//! # Example
//!
//! Size an NMOS for `gm = 100 µS` at `Id = 10 µA`, then verify by evaluating
//! the forward model at the returned operating point:
//!
//! ```
//! use ape_netlist::Technology;
//! use ape_mos::{sizing, evaluate, BiasPoint};
//!
//! # fn main() -> Result<(), ape_mos::MosError> {
//! let tech = Technology::default_1p2um();
//! let nmos = tech.nmos().expect("nmos card");
//! let sized = sizing::size_for_gm_id(nmos, 100e-6, 10e-6, 2.4e-6)?;
//! let eval = evaluate(
//!     nmos,
//!     &sized.geometry,
//!     BiasPoint { vgs: sized.vgs, vds: 2.5, vsb: 0.0 },
//! );
//! assert!((eval.gm - 100e-6).abs() / 100e-6 < 0.05);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod caps;
pub mod eqid;
mod error;
mod eval;
pub mod fingerprint;
pub mod sizing;

pub use caps::{junction_caps, meyer_caps, MosCaps};
pub use error::MosError;
pub use eval::{
    evaluate, evaluate_batch, evaluate_batch_with, lambda_eff, BiasBatch, BiasPoint, DeviceEval,
    EvalBatch, Region, LAMBDA_REF_LENGTH,
};

/// Thermal voltage kT/q at 300 K, volts.
pub const VT_THERMAL: f64 = 0.025_852;
