//! Nonlinear DC operating-point analysis.
//!
//! Newton-Raphson over the MNA system with two convergence aids that mirror
//! production SPICE practice:
//!
//! * **gmin stepping** — a shunt conductance from every node to ground is
//!   swept from 10 mS down to 1 pS, each stage warm-starting the next;
//! * **source stepping** — if gmin stepping stalls, all independent sources
//!   ramp from 5 % to 100 % of their DC value.

use crate::engine::{MatSnapshot, RealSolver};
use crate::error::SpiceError;
use crate::mna::Unknowns;
use crate::sparse::{Backend, PatternBuilder};
use crate::stamp::{g2, gtrans, BatchSink, Stamp};
use ape_mos::{
    evaluate, evaluate_batch_with, junction_caps, meyer_caps, BiasBatch, BiasPoint, DeviceEval,
    EvalBatch, MosCaps,
};
use ape_netlist::{Circuit, ElementKind, NodeId, Technology};
use std::collections::BTreeMap;

/// Per-MOSFET operating-point record kept with the solution.
#[derive(Debug, Clone, Copy)]
pub struct MosOp {
    /// Device evaluation (current, gm, gds, gmb, region) at the solution.
    pub eval: DeviceEval,
    /// Capacitances at the solution, for AC and transient reuse.
    pub caps: MosCaps,
    /// Drain node.
    pub drain: NodeId,
    /// Gate node.
    pub gate: NodeId,
    /// Source node.
    pub source: NodeId,
    /// Bulk node.
    pub bulk: NodeId,
}

/// A converged DC operating point.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    pub(crate) x: Vec<f64>,
    pub(crate) unknowns: Unknowns,
    /// MOSFET operating records by element name.
    pub mos: BTreeMap<String, MosOp>,
    /// Newton iterations spent in the final (full-bias) stage.
    pub iterations: usize,
}

impl OperatingPoint {
    /// Voltage of a node at the operating point, volts.
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.unknowns.voltage(&self.x, node)
    }

    /// Branch current of a voltage-defined element (V/E/L), amperes, using
    /// the SPICE sign convention (current flowing from the `+` terminal
    /// through the element).
    pub fn branch_current(&self, name: &str) -> Option<f64> {
        self.unknowns.branch_row_by_name(name).map(|r| self.x[r])
    }

    /// Total power delivered by all independent voltage sources, watts.
    pub fn supply_power(&self, circuit: &Circuit) -> f64 {
        let mut p = 0.0;
        for e in circuit.elements() {
            if let ElementKind::VoltageSource { dc, .. } = &e.kind {
                if let Some(i) = self.branch_current(&e.name) {
                    // i flows + → − through the source, so delivered power
                    // is −dc·i.
                    p += -dc * i;
                }
            }
        }
        p
    }

    /// Power delivered by one named voltage source, watts (`None` when the
    /// element is missing or not a voltage source).
    pub fn source_power(&self, circuit: &Circuit, name: &str) -> Option<f64> {
        let e = circuit.element(name)?;
        if let ElementKind::VoltageSource { dc, .. } = &e.kind {
            let i = self.branch_current(name)?;
            Some(-dc * i)
        } else {
            None
        }
    }

    /// The raw solution vector (node voltages then branch currents).
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Renders a human-readable operating-point report: node voltages and
    /// every MOSFET's region, current and small-signal parameters — the
    /// first thing a designer reads when a circuit misbehaves.
    pub fn report(&self, circuit: &Circuit) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "* operating point of `{}`", circuit.title);
        let _ = writeln!(
            out,
            "* supply power: {:.4} mW",
            self.supply_power(circuit) * 1e3
        );
        let _ = writeln!(out, "* node voltages:");
        for idx in 1..circuit.num_nodes() {
            let n = NodeId::new(idx as u32);
            let _ = writeln!(
                out,
                "    {:<16} {:>9.4} V",
                circuit.node_name(n),
                self.voltage(n)
            );
        }
        if !self.mos.is_empty() {
            let _ = writeln!(
                out,
                "* mosfets:        region        id         gm        gds"
            );
            for (name, m) in &self.mos {
                let _ = writeln!(
                    out,
                    "    {:<14} {:<12} {:>9.3e} {:>9.3e} {:>9.3e}",
                    name,
                    m.eval.region.to_string(),
                    m.eval.ids,
                    m.eval.gm,
                    m.eval.gds
                );
            }
        }
        out
    }
}

/// How independent sources are evaluated during a stamp pass.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SourceValue {
    /// DC value scaled by a ramp factor (DC analysis).
    DcScaled(f64),
    /// Waveform value at a time point (transient analysis).
    AtTime(f64),
}

impl SourceValue {
    fn eval(self, dc: f64, wave: &ape_netlist::SourceWaveform) -> f64 {
        match self {
            SourceValue::DcScaled(s) => dc * s,
            SourceValue::AtTime(t) => wave.value_at(t, dc),
        }
    }
}

/// Adds current `i` flowing `a → b` through an element to the right-hand
/// side (it leaves node `a`).
pub(crate) fn inject(rhs: &mut [f64], a: Option<usize>, b: Option<usize>, i: f64) {
    if let Some(ra) = a {
        rhs[ra] -= i;
    }
    if let Some(rb) = b {
        rhs[rb] += i;
    }
}

/// Stamps the **static** (value-independent) part of the DC/transient
/// system: resistors, voltage-source and VCVS branch constraints, VCCS
/// transconductances and inductor branch couplings (inductors are DC
/// shorts; the transient companion adds the `-2L/h` diagonal separately).
///
/// This part is stamped once per analysis and restored from a snapshot at
/// the top of every Newton iteration; only [`stamp_devices`] re-stamps.
pub(crate) fn stamp_linear_dc<M: Stamp<f64>>(
    circuit: &Circuit,
    u: &Unknowns,
    m: &mut M,
) -> Result<(), SpiceError> {
    for e in circuit.elements() {
        let a = u.node_row(e.a);
        let b = u.node_row(e.b);
        match &e.kind {
            ElementKind::Resistor { ohms } => g2(m, a, b, 1.0 / ohms),
            ElementKind::Capacitor { .. } => {
                // Capacitor bodies are stamped by the transient companion.
            }
            ElementKind::CurrentSource { .. } => {
                // Right-hand side only: see `rhs_sources`.
            }
            ElementKind::Inductor { .. } | ElementKind::VoltageSource { .. } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    m.stamp(ra, k, 1.0);
                    m.stamp(k, ra, 1.0);
                }
                if let Some(rb) = b {
                    m.stamp(rb, k, -1.0);
                    m.stamp(k, rb, -1.0);
                }
            }
            ElementKind::Vcvs { gain, cp, cn } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    m.stamp(ra, k, 1.0);
                    m.stamp(k, ra, 1.0);
                }
                if let Some(rb) = b {
                    m.stamp(rb, k, -1.0);
                    m.stamp(k, rb, -1.0);
                }
                if let Some(rc) = u.node_row(*cp) {
                    m.stamp(k, rc, -gain);
                }
                if let Some(rc) = u.node_row(*cn) {
                    m.stamp(k, rc, *gain);
                }
            }
            ElementKind::Vccs { gm, cp, cn } => {
                gtrans(m, a, b, u.node_row(*cp), u.node_row(*cn), *gm);
            }
            ElementKind::Switch { .. } | ElementKind::Mosfet { .. } => {
                // Dynamic part: see `stamp_devices`.
            }
            other => {
                return Err(SpiceError::BadCircuit(format!(
                    "unsupported element kind {other:?} in dc analysis"
                )))
            }
        }
    }
    Ok(())
}

/// Fills the right-hand-side contributions of the independent sources.
/// Linear in source value, so the DC path computes it once at scale 1 and
/// rescales per stepping stage.
pub(crate) fn rhs_sources(circuit: &Circuit, u: &Unknowns, rhs: &mut [f64], sv: SourceValue) {
    for e in circuit.elements() {
        match &e.kind {
            ElementKind::VoltageSource { dc, waveform, .. } => {
                rhs[u.branch_row(e)] += sv.eval(*dc, waveform);
            }
            ElementKind::CurrentSource { dc, waveform, .. } => {
                inject(
                    rhs,
                    u.node_row(e.a),
                    u.node_row(e.b),
                    sv.eval(*dc, waveform),
                );
            }
            _ => {}
        }
    }
}

/// Reusable scratch for the batched device stamping pass.
///
/// The gather/evaluate/stamp cycle of every Newton iteration runs
/// through these buffers; owning them in the engine keeps the
/// steady-state loop allocation-free. `clear` keeps capacity.
#[derive(Debug, Default)]
pub(crate) struct DeviceScratch {
    biases: BiasBatch,
    evals: EvalBatch,
    sink: BatchSink<f64>,
}

/// Stamps the **dynamic** part: switch and MOSFET linearisations at `x`.
/// Re-run every Newton iteration on top of the restored static part.
///
/// MOSFETs go through a two-pass SoA batch: pass A walks the elements in
/// order gathering every device's terminal voltages into contiguous
/// [`BiasBatch`] lanes (and surfaces model/polarity errors exactly where
/// the scalar loop would), the whole batch is evaluated back-to-back,
/// and pass B re-walks the elements stamping from the result lanes.
/// Contiguous runs of MOSFET stamps are accumulated in a [`BatchSink`]
/// and flushed through [`Stamp::stamp_batch`]; the flush replays the
/// triples in gather order, so every matrix entry and RHS row sees the
/// same additions in the same sequence as the element-at-a-time loop —
/// the batch layout changes memory traffic, not one bit of arithmetic.
pub(crate) fn stamp_devices<M: Stamp<f64>>(
    circuit: &Circuit,
    tech: &Technology,
    u: &Unknowns,
    x: &[f64],
    m: &mut M,
    rhs: &mut [f64],
    scratch: &mut DeviceScratch,
) -> Result<(), SpiceError> {
    // Pass A: gather biases for every MOSFET, in element order.
    scratch.biases.clear();
    for e in circuit.elements() {
        if let ElementKind::Mosfet {
            polarity,
            model,
            geometry: _,
            source,
            bulk,
        } = &e.kind
        {
            let card = tech
                .model(model)
                .ok_or_else(|| SpiceError::UnknownModel(model.clone()))?;
            if card.polarity != *polarity {
                // A PMOS device bound to an NMOS card (or vice versa)
                // is a netlist mistake, not a solver bug: reject it as
                // a typed error so fuzzed circuits cannot panic here.
                return Err(SpiceError::BadCircuit(format!(
                    "device polarity {:?} does not match model '{model}' ({:?})",
                    polarity, card.polarity
                )));
            }
            let vd = u.voltage(x, e.a);
            let vg = u.voltage(x, e.b);
            let vs = u.voltage(x, *source);
            let vb = u.voltage(x, *bulk);
            scratch.biases.push(BiasPoint {
                vgs: vg - vs,
                vds: vd - vs,
                vsb: vs - vb,
            });
        }
    }

    // Evaluate the whole batch back-to-back (bit-identical per lane to
    // scalar `evaluate`; pass A has already validated every model).
    let devices = circuit.elements().iter().filter_map(|e| match &e.kind {
        ElementKind::Mosfet {
            model, geometry, ..
        } => tech.model(model).map(|card| (card, geometry)),
        _ => None,
    });
    evaluate_batch_with(devices, &scratch.biases, &mut scratch.evals);

    // Pass B: stamp in element order from the SoA result lanes.
    let mut lane = 0usize;
    scratch.sink.clear();
    for e in circuit.elements() {
        let a = u.node_row(e.a);
        let b = u.node_row(e.b);
        match &e.kind {
            ElementKind::Switch {
                cp,
                cn,
                vt,
                ron,
                roff,
            } => {
                // A switch interrupts the MOSFET run: flush what has
                // been gathered so far to keep global stamp order.
                m.stamp_batch(&scratch.sink.entries);
                scratch.sink.clear();
                let vc = u.voltage(x, *cp) - u.voltage(x, *cn);
                let vab = u.voltage(x, e.a) - u.voltage(x, e.b);
                // Smooth conductance transition over ~50 mV for NR stability.
                let width = 0.05;
                let s = 1.0 / (1.0 + (-(vc - vt) / width).exp());
                let gon = 1.0 / ron;
                let goff = 1.0 / roff;
                let g = goff + (gon - goff) * s;
                let dg_dvc = (gon - goff) * s * (1.0 - s) / width;
                g2(m, a, b, g);
                let k = dg_dvc * vab;
                gtrans(m, a, b, u.node_row(*cp), u.node_row(*cn), k);
                // Norton correction so the linearisation passes through the
                // true current at x.
                let ieq = -k * vc;
                inject(rhs, a, b, ieq);
            }
            ElementKind::Mosfet { source, bulk, .. } => {
                let gm = scratch.evals.gm[lane];
                let gds = scratch.evals.gds[lane].max(0.0);
                let gmb = scratch.evals.gmb[lane];
                let ids = scratch.evals.ids[lane];
                let d = a;
                let s_row = u.node_row(*source);
                let g_row = b;
                let b_row = u.node_row(*bulk);
                // Conductance gds between drain and source.
                g2(&mut scratch.sink, d, s_row, gds);
                // gm: current d → s controlled by (g, s).
                gtrans(&mut scratch.sink, d, s_row, g_row, s_row, gm);
                // gmb: current d → s controlled by (b, s).
                gtrans(&mut scratch.sink, d, s_row, b_row, s_row, gmb);
                // Norton equivalent current. vgs/vds come back from the
                // gathered lanes (the exact differences pass A formed);
                // the bulk term re-reads x because the scalar loop used
                // vb − vs, not −(vs − vb), and −0.0 matters here.
                let bias = scratch.biases.get(lane);
                let vbs = u.voltage(x, *bulk) - u.voltage(x, *source);
                let ieq = ids - gm * bias.vgs - gds * bias.vds - gmb * vbs;
                inject(rhs, d, s_row, ieq);
                lane += 1;
            }
            _ => {}
        }
    }
    m.stamp_batch(&scratch.sink.entries);
    scratch.sink.clear();
    Ok(())
}

/// Builds the solver for an `n`-unknown DC/transient system, collecting the
/// sparsity pattern (static + dynamic footprint, gmin diagonal, plus any
/// analysis-specific extras via `extra`) when the backend resolves sparse.
pub(crate) fn build_real_solver(
    circuit: &Circuit,
    tech: &Technology,
    u: &Unknowns,
    x: &[f64],
    backend: Backend,
    extra: impl FnOnce(&mut PatternBuilder),
) -> Result<RealSolver, SpiceError> {
    let n = u.dim();
    if !backend.use_sparse(n) {
        return Ok(RealSolver::dense(n));
    }
    let mut pb = PatternBuilder::new(n);
    // gmin / artificial-capacitance diagonal on every node row.
    for r in 0..u.n_nodes {
        pb.add(r, r);
    }
    stamp_linear_dc(circuit, u, &mut pb)?;
    let mut rhs_scratch = vec![0.0; n];
    let mut dev_scratch = DeviceScratch::default();
    stamp_devices(
        circuit,
        tech,
        u,
        x,
        &mut pb,
        &mut rhs_scratch,
        &mut dev_scratch,
    )?;
    extra(&mut pb);
    Ok(RealSolver::sparse(pb.build()))
}

/// Options controlling the DC solve.
#[derive(Debug, Clone, Copy)]
pub struct DcOptions {
    /// Maximum Newton iterations per stage.
    pub max_iter: usize,
    /// Absolute voltage tolerance, volts.
    pub vtol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Largest voltage update applied per iteration (damping), volts.
    pub vstep_limit: f64,
    /// Linear-solver backend selection.
    pub backend: Backend,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iter: 150,
            vtol: 1e-7,
            reltol: 1e-6,
            vstep_limit: 0.6,
            backend: Backend::Auto,
        }
    }
}

/// Solves the DC operating point of `circuit`.
///
/// # Errors
///
/// * [`SpiceError::SingularMatrix`] for structurally singular systems.
/// * [`SpiceError::NoConvergence`] when both gmin and source stepping fail.
/// * [`SpiceError::UnknownModel`] for MOSFETs with missing cards.
pub fn dc_operating_point(
    circuit: &Circuit,
    tech: &Technology,
) -> Result<OperatingPoint, SpiceError> {
    dc_operating_point_with(circuit, tech, DcOptions::default())
}

/// [`dc_operating_point`] with explicit options.
///
/// # Errors
///
/// Same as [`dc_operating_point`].
pub fn dc_operating_point_with(
    circuit: &Circuit,
    tech: &Technology,
    opts: DcOptions,
) -> Result<OperatingPoint, SpiceError> {
    let _span = ape_probe::span("spice.dc");
    ape_probe::counter("spice.dc.solves", 1);
    circuit
        .validate()
        .map_err(|e| SpiceError::BadCircuit(e.to_string()))?;
    for e in circuit.elements() {
        if let ElementKind::Mosfet { model, .. } = &e.kind {
            if tech.model(model).is_none() {
                return Err(SpiceError::UnknownModel(model.clone()));
            }
        }
    }
    let u = Unknowns::for_circuit(circuit);
    let mut x = initial_guess(circuit, &u);
    let mut eng = DcEngine::new(circuit, tech, &u, &x, opts)?;

    // Stage 1: gmin stepping at full bias.
    let gmins = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12];
    let mut converged = true;
    let mut final_iters = 0;
    for (idx, &gmin) in gmins.iter().enumerate() {
        ape_probe::counter("spice.dc.gmin_steps", 1);
        match eng.newton(&mut x, gmin, 1.0, opts) {
            Ok(iters) => {
                if idx == gmins.len() - 1 {
                    final_iters = iters;
                }
            }
            Err(_) => {
                converged = false;
                break;
            }
        }
    }

    if !converged {
        // Stage 2: source stepping with a modest gmin, then tighten gmin.
        x = initial_guess(circuit, &u);
        let mut ok = true;
        for k in 1..=20 {
            ape_probe::counter("spice.dc.source_steps", 1);
            let scale = k as f64 / 20.0;
            if eng.newton(&mut x, 1e-9, scale, opts).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            for &gmin in &[1e-10, 1e-12] {
                if eng.newton(&mut x, gmin, 1.0, opts).is_err() {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            final_iters = opts.max_iter;
        } else {
            // Stage 3: pseudo-transient continuation — an artificial
            // capacitor on every node damps the Newton dynamics into the
            // physically reachable solution; the step size grows as the
            // trajectory settles. The heavy-duty fallback for feedback
            // circuits with marginal loop gain.
            ape_probe::counter("spice.dc.ptran_fallbacks", 1);
            x = eng.pseudo_transient(opts)?;
            eng.newton(&mut x, 1e-12, 1.0, opts)?;
            final_iters = opts.max_iter;
        }
    }

    // Collect per-MOSFET operating info at the solution.
    let mut mos = BTreeMap::new();
    for e in circuit.elements() {
        if let ElementKind::Mosfet {
            model,
            geometry,
            source,
            bulk,
            ..
        } = &e.kind
        {
            let card = tech
                .model(model)
                .ok_or_else(|| SpiceError::UnknownModel(model.clone()))?;
            let vd = u.voltage(&x, e.a);
            let vg = u.voltage(&x, e.b);
            let vs = u.voltage(&x, *source);
            let vb = u.voltage(&x, *bulk);
            let ev = evaluate(
                card,
                geometry,
                BiasPoint {
                    vgs: vg - vs,
                    vds: vd - vs,
                    vsb: vs - vb,
                },
            );
            let mut caps = meyer_caps(card, geometry, ev.region);
            let sgn = card.polarity.sign();
            let (cdb, csb) = junction_caps(card, geometry, sgn * (vd - vb), sgn * (vs - vb));
            caps.cdb = cdb;
            caps.csb = csb;
            mos.insert(
                e.name.clone(),
                MosOp {
                    eval: ev,
                    caps,
                    drain: e.a,
                    gate: e.b,
                    source: *source,
                    bulk: *bulk,
                },
            );
        }
    }

    Ok(OperatingPoint {
        x,
        unknowns: u,
        mos,
        iterations: final_iters,
    })
}

/// The reusable per-analysis DC solve state: backend solver, the static
/// (linear) matrix snapshot, the unit-scale source vector and the working
/// right-hand side. Built once per [`dc_operating_point_with`] call and
/// shared by every gmin/source-stepping stage, so the steady-state Newton
/// loop performs zero heap allocations.
pub(crate) struct DcEngine<'a> {
    circuit: &'a Circuit,
    tech: &'a Technology,
    u: &'a Unknowns,
    solver: RealSolver,
    linear: MatSnapshot,
    rhs_unit: Vec<f64>,
    rhs: Vec<f64>,
    scratch: DeviceScratch,
}

impl<'a> DcEngine<'a> {
    pub(crate) fn new(
        circuit: &'a Circuit,
        tech: &'a Technology,
        u: &'a Unknowns,
        x0: &[f64],
        opts: DcOptions,
    ) -> Result<Self, SpiceError> {
        let n = u.dim();
        let mut solver = build_real_solver(circuit, tech, u, x0, opts.backend, |_| {})?;
        solver.clear();
        stamp_linear_dc(circuit, u, &mut solver)?;
        let linear = solver.snapshot();
        let mut rhs_unit = vec![0.0; n];
        rhs_sources(circuit, u, &mut rhs_unit, SourceValue::DcScaled(1.0));
        Ok(DcEngine {
            circuit,
            tech,
            u,
            solver,
            linear,
            rhs_unit,
            rhs: vec![0.0; n],
            scratch: DeviceScratch::default(),
        })
    }

    /// One damped Newton-Raphson stage; returns iterations on success.
    pub(crate) fn newton(
        &mut self,
        x: &mut [f64],
        gmin: f64,
        srcscale: f64,
        opts: DcOptions,
    ) -> Result<usize, SpiceError> {
        let n = self.u.dim();
        for it in 0..opts.max_iter {
            // Static part from the snapshot, gmin diagonal, scaled sources,
            // then only the device linearisations are re-stamped.
            self.solver.restore(&self.linear);
            for r in 0..self.u.n_nodes {
                self.solver.stamp(r, r, gmin);
            }
            for (r, v) in self.rhs.iter_mut().zip(&self.rhs_unit) {
                *r = v * srcscale;
            }
            stamp_devices(
                self.circuit,
                self.tech,
                self.u,
                x,
                &mut self.solver,
                &mut self.rhs,
                &mut self.scratch,
            )?;
            self.solver
                .solve(&mut self.rhs)
                .ok_or(SpiceError::SingularMatrix { analysis: "dc" })?;
            // Damped update and convergence test.
            let sol = &self.rhs;
            let mut worst = 0.0f64;
            for r in 0..n {
                let delta = sol[r] - x[r];
                let lim = if r < self.u.n_nodes {
                    opts.vstep_limit
                } else {
                    f64::INFINITY
                };
                let applied = delta.clamp(-lim, lim);
                x[r] += applied;
                let scale = opts.vtol + opts.reltol * sol[r].abs();
                worst = worst.max(delta.abs() / scale);
            }
            if worst < 1.0 {
                ape_probe::counter("spice.dc.nr_iters", (it + 1) as u64);
                return Ok(it + 1);
            }
        }
        ape_probe::counter("spice.dc.nr_iters", opts.max_iter as u64);
        ape_probe::counter("spice.dc.convergence_failures", 1);
        Err(SpiceError::NoConvergence {
            analysis: "dc",
            detail: format!("stage gmin={gmin:.0e} scale={srcscale}"),
        })
    }

    /// Pseudo-transient continuation: backward-Euler relaxation with an
    /// artificial capacitor from every node to ground. Converges to a
    /// stable DC solution for circuits whose Newton iteration oscillates.
    fn pseudo_transient(&mut self, opts: DcOptions) -> Result<Vec<f64>, SpiceError> {
        let n = self.u.dim();
        let n_nodes = self.u.n_nodes;
        let mut x = initial_guess(self.circuit, self.u);
        let mut x_prev = vec![0.0; n];
        let c_art = 1e-9;
        let mut h = 1e-9;
        for _step in 0..600 {
            x_prev.copy_from_slice(&x);
            let mut converged = false;
            for _ in 0..40 {
                self.solver.restore(&self.linear);
                let geq = c_art / h;
                for r in 0..n_nodes {
                    self.solver.stamp(r, r, 1e-12 + geq);
                }
                self.rhs.copy_from_slice(&self.rhs_unit);
                for (r, &xp) in x_prev.iter().enumerate().take(n_nodes) {
                    self.rhs[r] += geq * xp;
                }
                stamp_devices(
                    self.circuit,
                    self.tech,
                    self.u,
                    &x,
                    &mut self.solver,
                    &mut self.rhs,
                    &mut self.scratch,
                )?;
                self.solver
                    .solve(&mut self.rhs)
                    .ok_or(SpiceError::SingularMatrix { analysis: "dc" })?;
                let sol = &self.rhs;
                let mut worst = 0.0f64;
                for r in 0..n {
                    let delta = sol[r] - x[r];
                    let lim = if r < n_nodes {
                        opts.vstep_limit
                    } else {
                        f64::INFINITY
                    };
                    x[r] += delta.clamp(-lim, lim);
                    let scale = opts.vtol + opts.reltol * sol[r].abs();
                    worst = worst.max(delta.abs() / scale);
                }
                if worst < 1.0 {
                    converged = true;
                    break;
                }
            }
            if !converged {
                // Shrink the step and retry from the previous state.
                ape_probe::counter("spice.dc.ptran_retries", 1);
                ape_probe::value("spice.dc.ptran_h", h);
                x.copy_from_slice(&x_prev);
                h /= 4.0;
                if h < 1e-15 {
                    break;
                }
                continue;
            }
            // Steady state?
            let dx = x
                .iter()
                .zip(&x_prev)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            ape_probe::counter("spice.dc.ptran_steps", 1);
            ape_probe::value("spice.dc.ptran_dx", dx);
            if dx < 1e-7 && h > 1e-3 {
                return Ok(x);
            }
            // Backward Euler is A-stable: the step can grow without bound,
            // so slow artificial-cap modes on high-impedance nodes settle
            // in a handful of steps rather than thousands.
            h = (h * 2.5).min(1e3);
        }
        Err(SpiceError::NoConvergence {
            analysis: "dc",
            detail: "pseudo-transient continuation did not settle".into(),
        })
    }
}

/// Seeds node voltages from directly-attached voltage sources.
fn initial_guess(circuit: &Circuit, u: &Unknowns) -> Vec<f64> {
    let mut x = vec![0.0; u.dim()];
    for e in circuit.elements() {
        if let ElementKind::VoltageSource { dc, .. } = &e.kind {
            if e.b.is_ground() {
                if let Some(r) = u.node_row(e.a) {
                    x[r] = *dc;
                }
            } else if e.a.is_ground() {
                if let Some(r) = u.node_row(e.b) {
                    x[r] = -*dc;
                }
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::{Circuit, MosGeometry, MosPolarity, Technology};

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 6.0).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 2e3).unwrap();
        let op = dc_operating_point(&c, &Technology::default_1p2um()).unwrap();
        assert!((op.voltage(b) - 4.0).abs() < 1e-6);
        assert!((op.branch_current("V1").unwrap() + 2e-3).abs() < 1e-9);
        assert!((op.supply_power(&c) - 12e-3).abs() < 1e-8);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new("ir");
        let a = c.node("a");
        c.add_idc("I1", Circuit::GROUND, a, 1e-3).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let op = dc_operating_point(&c, &Technology::default_1p2um()).unwrap();
        assert!((op.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn vcvs_amplifies() {
        let mut c = Circuit::new("e");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vdc("V1", i, Circuit::GROUND, 0.5).unwrap();
        c.add_vcvs("E1", o, Circuit::GROUND, i, Circuit::GROUND, 10.0)
            .unwrap();
        c.add_resistor("RL", o, Circuit::GROUND, 1e3).unwrap();
        let op = dc_operating_point(&c, &Technology::default_1p2um()).unwrap();
        assert!((op.voltage(o) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn vccs_into_load() {
        let mut c = Circuit::new("g");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vdc("V1", i, Circuit::GROUND, 1.0).unwrap();
        // 1 mS transconductance pulling current out of `o`.
        c.add_vccs("G1", o, Circuit::GROUND, i, Circuit::GROUND, 1e-3)
            .unwrap();
        c.add_resistor("RL", o, Circuit::GROUND, 1e3).unwrap();
        c.add_resistor("Ri", i, Circuit::GROUND, 1e6).unwrap();
        let op = dc_operating_point(&c, &Technology::default_1p2um()).unwrap();
        // i(o→gnd through G1) = 1 mA leaves node o: v(o) = -1 V.
        assert!((op.voltage(o) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos() {
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("diode");
        let d = c.node("d");
        c.add_idc("I1", Circuit::GROUND, d, 50e-6).unwrap();
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(20e-6, 2.4e-6),
        )
        .unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        let v = op.voltage(d);
        // Must sit a bit above vth with vov = sqrt(2 I L / (kp W)).
        let card = tech.nmos().unwrap();
        let vov = (2.0 * 50e-6 * card.leff(2.4e-6) / (card.kp * 20e-6)).sqrt();
        assert!((v - (card.vto + vov)).abs() < 0.1, "v = {v}");
        let m = &op.mos["M1"];
        assert!((m.eval.ids - 50e-6).abs() / 50e-6 < 1e-3);
    }

    #[test]
    fn nmos_common_source_amp_bias() {
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("cs");
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vdc("VDD", vdd, Circuit::GROUND, 5.0).unwrap();
        c.add_vdc("VG", g, Circuit::GROUND, 1.2).unwrap();
        c.add_resistor("RD", vdd, d, 50e3).unwrap();
        c.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(10e-6, 2.4e-6),
        )
        .unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.5 && vd < 4.9, "vd = {vd}");
        // KCL: resistor current equals drain current.
        let ir = (5.0 - vd) / 50e3;
        let m = &op.mos["M1"];
        assert!((ir - m.eval.ids).abs() / ir < 1e-3);
    }

    #[test]
    fn pmos_current_mirror() {
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("pmirror");
        let vdd = c.node("vdd");
        let ref_n = c.node("ref");
        let out = c.node("out");
        c.add_vdc("VDD", vdd, Circuit::GROUND, 5.0).unwrap();
        // Reference branch: 20 µA pulled from the diode-connected PMOS.
        c.add_idc("IREF", ref_n, Circuit::GROUND, 20e-6).unwrap();
        let geom = MosGeometry::new(30e-6, 2.4e-6);
        c.add_mosfet(
            "M1",
            ref_n,
            ref_n,
            vdd,
            vdd,
            MosPolarity::Pmos,
            "CMOSP",
            geom,
        )
        .unwrap();
        c.add_mosfet("M2", out, ref_n, vdd, vdd, MosPolarity::Pmos, "CMOSP", geom)
            .unwrap();
        c.add_resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        let iout = op.voltage(out) / 10e3;
        // Channel-length modulation makes a simple mirror overshoot:
        // (1+λ·vds2)/(1+λ·vds1) ≈ 1.15 here, so allow 20 %.
        assert!(
            (iout - 20e-6).abs() / 20e-6 < 0.2,
            "mirrored current {iout}"
        );
        assert!(iout > 20e-6, "clm should make the copy overshoot");
    }

    #[test]
    fn switch_passes_and_blocks() {
        let tech = Technology::default_1p2um();
        for (vctl, expect_high) in [(5.0, true), (0.0, false)] {
            let mut c = Circuit::new("sw");
            let i = c.node("in");
            let o = c.node("out");
            let ctl = c.node("ctl");
            c.add_vdc("V1", i, Circuit::GROUND, 2.0).unwrap();
            c.add_vdc("VC", ctl, Circuit::GROUND, vctl).unwrap();
            c.add_switch("S1", i, o, ctl, Circuit::GROUND, 2.5, 1e3, 1e12)
                .unwrap();
            c.add_resistor("RL", o, Circuit::GROUND, 1e6).unwrap();
            let op = dc_operating_point(&c, &tech).unwrap();
            let vo = op.voltage(o);
            if expect_high {
                assert!(vo > 1.9, "on: vo = {vo}");
            } else {
                assert!(vo < 0.1, "off: vo = {vo}");
            }
        }
    }

    #[test]
    fn floating_node_reports_error() {
        let mut c = Circuit::new("bad");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        // Node b floats at DC (only a capacitor) — gmin keeps it solvable,
        // pinning it to ground.
        let op = dc_operating_point(&c, &Technology::default_1p2um()).unwrap();
        assert!(op.voltage(b).abs() < 1e-3);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new("l");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_inductor("L1", a, b, 1e-3).unwrap();
        c.add_resistor("R1", b, Circuit::GROUND, 100.0).unwrap();
        let op = dc_operating_point(&c, &Technology::default_1p2um()).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-6);
        assert!((op.branch_current("L1").unwrap() - 10e-3).abs() < 1e-8);
    }

    #[test]
    fn report_mentions_nodes_and_devices() {
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("rpt");
        let d = c.node("drain");
        c.add_idc("I1", Circuit::GROUND, d, 50e-6).unwrap();
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "CMOSN",
            MosGeometry::new(20e-6, 2.4e-6),
        )
        .unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        let rpt = op.report(&c);
        assert!(rpt.contains("drain"));
        assert!(rpt.contains("M1"));
        assert!(rpt.contains("saturation"));
    }

    #[test]
    fn unknown_model_is_typed_error() {
        let mut c = Circuit::new("bad");
        let d = c.node("d");
        c.add_vdc("V1", d, Circuit::GROUND, 1.0).unwrap();
        c.add_mosfet(
            "M1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosPolarity::Nmos,
            "MISSING",
            MosGeometry::new(1e-6, 1e-6),
        )
        .unwrap();
        let err = dc_operating_point(&c, &Technology::default_1p2um()).unwrap_err();
        assert!(matches!(err, SpiceError::UnknownModel(_)));
    }
}
