//! Modified-nodal-analysis bookkeeping shared by every analysis.
//!
//! The unknown vector is `[v_1 … v_N, i_b1 … i_bM]`: one voltage per
//! non-ground node followed by one branch current per voltage-defined
//! element (independent voltage sources, VCVS, inductors).

use ape_netlist::{Circuit, Element, NodeId};
use std::collections::BTreeMap;

/// Index map from circuit topology to MNA unknown positions.
#[derive(Debug, Clone)]
pub struct Unknowns {
    /// Number of non-ground node voltages.
    pub n_nodes: usize,
    /// Branch-current row offsets by element name.
    branch: BTreeMap<String, usize>,
}

impl Unknowns {
    /// Builds the index map for a circuit.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let n_nodes = circuit.num_nodes() - 1;
        let mut branch = BTreeMap::new();
        let mut next = n_nodes;
        for e in circuit.elements() {
            if e.needs_branch_current() {
                branch.insert(e.name.clone(), next);
                next += 1;
            }
        }
        Unknowns { n_nodes, branch }
    }

    /// Total system dimension (nodes + branches).
    pub fn dim(&self) -> usize {
        self.n_nodes + self.branch.len()
    }

    /// Row of a node voltage, or `None` for ground.
    pub fn node_row(&self, n: NodeId) -> Option<usize> {
        n.matrix_row()
    }

    /// Row of an element's branch current.
    ///
    /// # Panics
    ///
    /// Panics if the element has no branch current (callers only ask for
    /// voltage-defined elements).
    pub fn branch_row(&self, e: &Element) -> usize {
        self.branch[&e.name]
    }

    /// Looks up a branch row by element name.
    pub fn branch_row_by_name(&self, name: &str) -> Option<usize> {
        self.branch.get(name).copied()
    }

    /// Voltage of node `n` under solution vector `x` (0 for ground).
    pub fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        match n.matrix_row() {
            Some(r) => x[r],
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ape_netlist::Circuit;

    #[test]
    fn unknown_layout() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 1.0).unwrap();
        c.add_resistor("R1", a, b, 1.0).unwrap();
        c.add_inductor("L1", b, Circuit::GROUND, 1e-3).unwrap();
        let u = Unknowns::for_circuit(&c);
        assert_eq!(u.n_nodes, 2);
        assert_eq!(u.dim(), 4); // 2 nodes + V1 + L1
        assert_eq!(u.branch_row_by_name("V1"), Some(2));
        assert_eq!(u.branch_row_by_name("L1"), Some(3));
        assert_eq!(u.branch_row_by_name("R1"), None);
    }

    #[test]
    fn voltage_reads_ground_as_zero() {
        let mut c = Circuit::new("t");
        let a = c.node("a");
        c.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let u = Unknowns::for_circuit(&c);
        let x = vec![3.3];
        assert_eq!(u.voltage(&x, a), 3.3);
        assert_eq!(u.voltage(&x, Circuit::GROUND), 0.0);
    }
}
