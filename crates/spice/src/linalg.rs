//! Dense linear algebra: LU factorisation with partial pivoting, generic
//! over real and complex scalars.
//!
//! The dense solver serves systems of up to [`DENSE_CUTOFF`] unknowns
//! (where it beats the sparse bookkeeping) and acts as the reference
//! oracle the sparse path is differentially tested against; circuits
//! beyond a handful of nodes go through [`crate::sparse`].
//!
//! [`DENSE_CUTOFF`]: crate::sparse::DENSE_CUTOFF

use crate::complex::Complex;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Relative pivot tolerance: a pivot is treated as numerically zero when it
/// falls below `REL_PIVOT × ‖A‖_max`.
///
/// Deliberately far below `n·ε·‖A‖` — MNA matrices legitimately mix gmin
/// pivots (`1e-12`) with companion-model conductances around `1e3`, and
/// those tiny pivots are exact, not cancellation noise. The tolerance only
/// needs to reject true singularities (all-zero columns, floating nodes)
/// relative to the matrix scale rather than against the old absolute
/// `1e-300` that even denormal garbage passed.
const REL_PIVOT: f64 = 1e-18;

/// Singularity threshold for a matrix whose largest entry magnitude is
/// `max_norm`. Shared by the dense and sparse factorisations so both paths
/// judge pivots by the same rule.
pub(crate) fn pivot_tol(max_norm: f64) -> f64 {
    (max_norm * REL_PIVOT).max(f64::MIN_POSITIVE)
}

/// Scalar types the LU solver can factorise over.
pub trait Scalar:
    Copy
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Pivoting magnitude.
    fn magnitude(self) -> f64;
    /// `true` when the value contains no NaN/∞.
    fn finite(self) -> bool;
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn magnitude(self) -> f64 {
        self.abs()
    }
    fn finite(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for Complex {
    fn zero() -> Self {
        Complex::ZERO
    }
    fn one() -> Self {
        Complex::ONE
    }
    fn magnitude(self) -> f64 {
        // L1 modulus (`|re| + |im|`, LINPACK's `cabs1`): within √2 of the
        // true modulus, which is ample for threshold pivoting and relative
        // tolerances, and keeps the hot pivot scans free of sqrt/hypot.
        self.re.abs() + self.im.abs()
    }
    fn finite(self) -> bool {
        self.is_finite()
    }
}

/// A dense square matrix in row-major storage.
///
/// # Example
///
/// ```
/// use ape_spice::linalg::Matrix;
/// let mut m: Matrix<f64> = Matrix::zeros(2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 4.0;
/// let x = m.solve(&[2.0, 8.0]).expect("nonsingular");
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![T::zero(); n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `v` to entry `(r, c)` — the MNA "stamp" primitive.
    pub fn stamp(&mut self, r: usize, c: usize, v: T) {
        let n = self.n;
        debug_assert!(r < n && c < n);
        self.data[r * n + c] = self.data[r * n + c] + v;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = T::zero();
        }
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![T::zero(); self.n];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = T::zero();
            let row = &self.data[r * self.n..(r + 1) * self.n];
            for (a, xv) in row.iter().zip(x) {
                acc = acc + *a * *xv;
            }
            *yr = acc;
        }
        y
    }

    /// Solves `A·x = b` by LU factorisation with partial pivoting, without
    /// modifying `self`.
    ///
    /// Returns `None` when the matrix is numerically singular (pivot below
    /// a relative tolerance scaled by the largest entry magnitude) or a
    /// non-finite value appears.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[T]) -> Option<Vec<T>> {
        assert_eq!(b.len(), self.n);
        let mut lu = self.clone();
        let mut x = b.to_vec();
        lu.solve_in_place(&mut x)?;
        Some(x)
    }

    /// Like [`solve`](Self::solve), but reuses caller-provided scratch
    /// storage for the factorisation copy and the solution — no heap
    /// allocation once `scratch`/`x` have grown to size.
    pub fn solve_with(&self, b: &[T], scratch: &mut Matrix<T>, x: &mut Vec<T>) -> Option<()> {
        assert_eq!(b.len(), self.n);
        scratch.copy_from(self);
        x.clear();
        x.extend_from_slice(b);
        scratch.solve_in_place(x)
    }

    /// Copies values from a same-sized matrix without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &Matrix<T>) {
        assert_eq!(self.n, other.n);
        self.data.copy_from_slice(&other.data);
    }

    /// Largest entry magnitude (max-norm), the scale for pivot tolerance.
    pub fn max_magnitude(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.magnitude()))
    }

    /// Factorises in place and overwrites `b` with the solution.
    ///
    /// Returns `None` on singularity. The matrix contents are destroyed
    /// either way.
    pub fn solve_in_place(&mut self, b: &mut [T]) -> Option<()> {
        let n = self.n;
        let tol = pivot_tol(self.max_magnitude());
        let a = &mut self.data;
        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            let mut best = a[k * n + k].magnitude();
            for r in (k + 1)..n {
                let m = a[r * n + k].magnitude();
                if m > best {
                    best = m;
                    p = r;
                }
            }
            if !(best.is_finite() && best > tol) {
                return None;
            }
            if p != k {
                for c in 0..n {
                    a.swap(k * n + c, p * n + c);
                }
                b.swap(k, p);
            }
            let pivot = a[k * n + k];
            for r in (k + 1)..n {
                let factor = a[r * n + k] / pivot;
                if factor == T::zero() {
                    continue;
                }
                a[r * n + k] = T::zero();
                for c in (k + 1)..n {
                    let sub = factor * a[k * n + c];
                    a[r * n + c] = a[r * n + c] - sub;
                }
                b[r] = b[r] - factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = b[k];
            for c in (k + 1)..n {
                acc = acc - a[k * n + c] * b[c];
            }
            let v = acc / a[k * n + k];
            if !v.finite() {
                return None;
            }
            b[k] = v;
        }
        Some(())
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[r * self.n + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        &mut self.data[r * self.n + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m: Matrix<f64> = Matrix::zeros(3);
        for i in 0..3 {
            m[(i, i)] = 1.0;
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 0.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 0.0;
        let x = m.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn detects_singularity() {
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn complex_solve() {
        // (1+j) x = 2j  →  x = 2j/(1+j) = 1+j
        let mut m: Matrix<Complex> = Matrix::zeros(1);
        m[(0, 0)] = Complex::new(1.0, 1.0);
        let x = m.solve(&[Complex::new(0.0, 2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-14);
        assert!((x[0].im - 1.0).abs() < 1e-14);
    }

    #[test]
    fn relative_tolerance_rejects_hopelessly_ill_conditioned() {
        // The pivot 1e-30 sails past the old absolute 1e-300 threshold but
        // is noise next to the 1e30 entry: condition number ~1e60.
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 1e-30;
        m[(1, 1)] = 1e30;
        assert!(m.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn gmin_scale_pivots_survive_relative_tolerance() {
        // A gmin-only node diagonal (1e-12) coexisting with companion-model
        // conductances (1e3) is legitimate, not singular.
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 1e-12;
        m[(1, 1)] = 2e3;
        let x = m.solve(&[1e-12, 2e3]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_with_reuses_scratch() {
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m[(0, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        let mut scratch: Matrix<f64> = Matrix::zeros(2);
        let mut x = Vec::new();
        m.solve_with(&[2.0, 8.0], &mut scratch, &mut x).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
        m[(0, 1)] = 1.0;
        m.solve_with(&[3.0, 8.0], &mut scratch, &mut x).unwrap();
        assert_eq!(x, vec![0.5, 2.0]);
    }

    #[test]
    fn residual_small_for_random_system() {
        // Deterministic pseudo-random fill.
        let n = 20;
        let mut m: Matrix<f64> = Matrix::zeros(n);
        let mut seed = 0x12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for r in 0..n {
            for c in 0..n {
                m[(r, c)] = next();
            }
            m[(r, r)] += 10.0; // diagonally dominant → nonsingular
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.solve(&b).unwrap();
        let ax = m.mul_vec(&x);
        let resid: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, bb)| (a - bb).abs())
            .fold(0.0, f64::max);
        assert!(resid < 1e-10, "residual {resid}");
    }

    #[test]
    fn stamp_accumulates() {
        let mut m: Matrix<f64> = Matrix::zeros(2);
        m.stamp(0, 0, 1.0);
        m.stamp(0, 0, 2.0);
        assert_eq!(m[(0, 0)], 3.0);
        m.clear();
        assert_eq!(m[(0, 0)], 0.0);
    }
}
