//! An MNA circuit simulator for the APE reproduction.
//!
//! The paper verifies every APE estimate against SPICE; this crate is the
//! stand-in verifier. It provides three analyses over the
//! [`Circuit`](ape_netlist::Circuit)/[`Technology`](ape_netlist::Technology)
//! representation:
//!
//! * [`dc_operating_point`] — nonlinear DC via Newton-Raphson with gmin and
//!   source stepping;
//! * [`ac_sweep`] — small-signal complex-phasor analysis linearised at an
//!   operating point;
//! * [`transient`] — trapezoidal time-domain integration.
//!
//! plus the [`measure`] module, which turns raw sweeps into the performance
//! numbers the paper tabulates (gain, UGF, bandwidth, phase margin, slew
//! rate, delay, settling).
//!
//! # Example
//!
//! Gain of a resistively-loaded common-source stage:
//!
//! ```
//! use ape_netlist::{Circuit, Technology, MosPolarity, MosGeometry, SourceWaveform};
//! use ape_spice::{dc_operating_point, ac_sweep};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::default_1p2um();
//! let mut ckt = Circuit::new("cs-amp");
//! let vdd = ckt.node("vdd");
//! let gate = ckt.node("g");
//! let drain = ckt.node("d");
//! ckt.add_vdc("VDD", vdd, Circuit::GROUND, 5.0);
//! ckt.add_vsource("VG", gate, Circuit::GROUND, 1.2, 1.0, SourceWaveform::Dc)?;
//! ckt.add_resistor("RD", vdd, drain, 50e3)?;
//! ckt.add_mosfet("M1", drain, gate, Circuit::GROUND, Circuit::GROUND,
//!                MosPolarity::Nmos, "CMOSN", MosGeometry::new(10e-6, 2.4e-6))?;
//! let op = dc_operating_point(&ckt, &tech)?;
//! let sweep = ac_sweep(&ckt, &tech, &op, &[100.0])?;
//! let gain = sweep.voltage(0, drain).norm();
//! assert!(gain > 1.0);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod complex;
mod dc;
mod engine;
mod error;
pub mod linalg;
mod linearize;
pub mod measure;
mod mna;
pub mod sparse;
pub mod stamp;
mod sweep;
mod tran;

pub use ac::{ac_sweep, ac_sweep_on, ac_sweep_with, decade_frequencies, AcOptions, AcSweep};
pub use complex::Complex;
pub use dc::{dc_operating_point, dc_operating_point_with, DcOptions, MosOp, OperatingPoint};
pub use error::SpiceError;
pub use linearize::{linearize, LinearizedSystem};
pub use mna::Unknowns;
pub use sparse::{
    alloc_events, reset_symbolic_cache, symbolic_cache_report, symbolic_cache_stats, Backend,
};
pub use sweep::{dc_sweep, dc_sweep_with, DcSweep};
pub use tran::{transient, TranOptions, Transient};
