//! Error type for simulation runs.

use std::error::Error;
use std::fmt;

/// Errors produced by the analyses in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The MNA matrix is singular (floating node, loop of voltage sources …).
    SingularMatrix {
        /// Which analysis hit the singularity.
        analysis: &'static str,
    },
    /// Newton-Raphson failed to converge.
    NoConvergence {
        /// Which analysis failed.
        analysis: &'static str,
        /// Iterations or steps attempted.
        detail: String,
    },
    /// A MOSFET referenced a model card missing from the technology.
    UnknownModel(String),
    /// The circuit failed validation before simulation.
    BadCircuit(String),
    /// A measurement was requested on data that does not contain it
    /// (e.g. UGF of a transfer function that never crosses unity).
    MeasureFailed(String),
    /// An internal solver invariant did not hold (e.g. a worker thread
    /// died, or a factorisation lost its symbolic analysis). These are
    /// bugs surfaced as errors instead of panics so one bad job cannot
    /// take down a batch worker.
    Internal(&'static str),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::SingularMatrix { analysis } => {
                write!(f, "singular matrix during {analysis} analysis")
            }
            SpiceError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} analysis failed to converge: {detail}")
            }
            SpiceError::UnknownModel(m) => write!(f, "unknown MOS model `{m}`"),
            SpiceError::BadCircuit(m) => write!(f, "bad circuit: {m}"),
            SpiceError::MeasureFailed(m) => write!(f, "measurement failed: {m}"),
            SpiceError::Internal(m) => write!(f, "internal solver invariant violated: {m}"),
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_bounds() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<SpiceError>();
        let e = SpiceError::SingularMatrix { analysis: "dc" };
        assert!(e.to_string().contains("dc"));
    }

    /// `Internal` carries its own explanation: it replaces what used to be
    /// an `unreachable!`, so the message must stand alone in a job log.
    #[test]
    fn internal_message_is_self_describing() {
        let e = SpiceError::Internal("ac worker thread panicked");
        let msg = e.to_string();
        assert!(msg.contains("invariant"), "got {msg}");
        assert!(msg.contains("ac worker thread panicked"));
    }
}
