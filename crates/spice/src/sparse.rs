//! Sparse LU solve path with pattern-cached symbolic analysis.
//!
//! An MNA matrix's sparsity pattern is fixed for a given circuit: every
//! Newton iteration, gmin/source-stepping stage, frequency point and
//! transient timestep writes the *same* set of `(row, col)` positions with
//! different values. This module exploits that invariant:
//!
//! 1. [`PatternBuilder`] records the stamp positions once per circuit and
//!    freezes them into an immutable [`Pattern`] (CSR, sorted columns).
//! 2. The first factorisation (`analyze`) runs a right-looking sparse LU
//!    with threshold pivoting (numeric stability) and a Markowitz-style
//!    minimum-row-count tie-break (sparsity preservation), recording the
//!    row permutation and the fill-in pattern as a [`Symbolic`] object.
//! 3. Every later factorisation ([`SparseFactor::factor`]) replays the
//!    elimination *numerically only* over the frozen pattern with a dense
//!    scatter workspace — no pivot search, no structure discovery, no heap
//!    allocation. A relative pivot check guards against the cached order
//!    going stale; failure falls back to a fresh analysis.
//!
//! Symbolic objects are cached per thread, keyed by a pattern fingerprint,
//! so repeated solves of the same topology — design-space sweeps, annealing
//! audits, `ape-farm` batch jobs — skip the symbolic step entirely. The
//! cache is resettable ([`reset_symbolic_cache`]) because a cached pivot
//! order makes results depend (at rounding level) on which bias point
//! built it; `ape-farm` resets it per job in deterministic mode, exactly
//! like the sizing cache.
//!
//! Steady-state operation (refactor + solve) performs **zero heap
//! allocations**; every allocation inside this module bumps a global
//! counter ([`alloc_events`]) that the test suite asserts flat across
//! iterations.

use crate::linalg::{pivot_tol, Matrix, Scalar};
use crate::stamp::Stamp;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which linear-solver backend an analysis should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Sparse for systems above [`DENSE_CUTOFF`] unknowns, dense below.
    #[default]
    Auto,
    /// Always the dense LU (reference oracle; fastest for tiny systems).
    Dense,
    /// Always the sparse pattern-cached LU.
    Sparse,
}

/// Systems of at most this many unknowns use the dense solver under
/// [`Backend::Auto`]: below this size the dense factorisation fits in a
/// couple of cache lines and beats the sparse bookkeeping.
pub const DENSE_CUTOFF: usize = 8;

impl Backend {
    /// Resolves the backend choice for an `n`-unknown system.
    pub fn use_sparse(self, n: usize) -> bool {
        match self {
            Backend::Auto => n > DENSE_CUTOFF,
            Backend::Dense => false,
            Backend::Sparse => true,
        }
    }
}

// ---------------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------------

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Total number of workspace allocations the sparse solver has performed
/// since process start (monotonic, cross-thread). The steady-state solve
/// loop — restamp, refactor, solve — performs none, which the differential
/// test suite asserts by sampling this counter.
pub fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

fn note_alloc() {
    ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
    ape_probe::counter("spice.solve.allocs", 1);
}

// ---------------------------------------------------------------------------
// Pattern
// ---------------------------------------------------------------------------

/// Records stamp positions without storing values — the first, value-blind
/// assembly pass that fixes a circuit's sparsity pattern.
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    n: usize,
    entries: Vec<(u32, u32)>,
}

impl PatternBuilder {
    /// Builder for an `n×n` system.
    pub fn new(n: usize) -> Self {
        PatternBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Records position `(r, c)`.
    pub fn add(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.n && c < self.n);
        self.entries.push((r as u32, c as u32));
    }

    /// Absorbs every position recorded in `other` (same dimension), so a
    /// union pattern can cover several matrices — e.g. `G` and `C` sharing
    /// one structure for `G + jωC` assembly.
    /// Dimension-mismatched merges (a caller bug) are ignored.
    pub fn merge(&mut self, other: &PatternBuilder) {
        if self.n != other.n {
            debug_assert!(false, "pattern dimension mismatch");
            return;
        }
        self.entries.extend_from_slice(&other.entries);
    }

    /// Freezes the recorded positions into an immutable [`Pattern`].
    pub fn build(mut self) -> Arc<Pattern> {
        self.entries.sort_unstable();
        self.entries.dedup();
        let n = self.n;
        let mut row_start = vec![0u32; n + 1];
        for &(r, _) in &self.entries {
            row_start[r as usize + 1] += 1;
        }
        for r in 0..n {
            row_start[r + 1] += row_start[r];
        }
        let cols: Vec<u32> = self.entries.iter().map(|&(_, c)| c).collect();
        // Direct (row, col) → storage-index map, so stamping is one array
        // read instead of a binary search. n² entries of 4 bytes is cheap at
        // circuit scale; truly huge systems fall back to the search.
        let idx_map = if n * n <= IDX_MAP_CAP {
            let mut map = vec![u32::MAX; n * n];
            for (i, &(r, c)) in self.entries.iter().enumerate() {
                map[r as usize * n + c as usize] = i as u32;
            }
            map
        } else {
            Vec::new()
        };
        // FNV-1a fingerprint over the structure for the symbolic cache key.
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(n as u64);
        for &s in &row_start {
            mix(s as u64);
        }
        for &c in &cols {
            mix(c as u64);
        }
        note_alloc();
        Arc::new(Pattern {
            n,
            row_start,
            cols,
            idx_map,
            key: h,
        })
    }
}

/// Largest `n²` for which a [`Pattern`] keeps the dense index map
/// (1024-unknown systems → 4 MiB); beyond that, [`Pattern::idx`] binary
/// searches the row.
const IDX_MAP_CAP: usize = 1 << 20;

impl<T> Stamp<T> for PatternBuilder {
    fn stamp(&mut self, r: usize, c: usize, _v: T) {
        self.add(r, c);
    }
}

/// An immutable sparsity pattern in CSR form (sorted column indices).
#[derive(Debug)]
pub struct Pattern {
    n: usize,
    row_start: Vec<u32>,
    cols: Vec<u32>,
    /// Row-major `(r, c) → storage index` map (`u32::MAX` = structurally
    /// absent); empty above [`IDX_MAP_CAP`].
    idx_map: Vec<u32>,
    key: u64,
}

impl Pattern {
    /// System dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Structure fingerprint used as the symbolic-cache key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Column indices of row `r`.
    #[inline]
    fn row_cols(&self, r: usize) -> &[u32] {
        &self.cols[self.row_start[r] as usize..self.row_start[r + 1] as usize]
    }

    /// Storage index of entry `(r, c)`, if structurally present.
    #[inline]
    pub fn idx(&self, r: usize, c: usize) -> Option<usize> {
        if !self.idx_map.is_empty() {
            let i = self.idx_map[r * self.n + c];
            return (i != u32::MAX).then_some(i as usize);
        }
        let base = self.row_start[r] as usize;
        self.row_cols(r)
            .binary_search(&(c as u32))
            .ok()
            .map(|i| base + i)
    }
}

// ---------------------------------------------------------------------------
// SparseMatrix
// ---------------------------------------------------------------------------

/// A value array over a shared [`Pattern`] — the assembly-side matrix.
///
/// Stamping outside the collected pattern is a logic error (the pattern
/// pass and the value pass run the same element code) and panics.
#[derive(Debug, Clone)]
pub struct SparseMatrix<T> {
    pattern: Arc<Pattern>,
    vals: Vec<T>,
}

impl<T: Scalar> SparseMatrix<T> {
    /// Zero matrix over `pattern`.
    pub fn new(pattern: Arc<Pattern>) -> Self {
        note_alloc();
        let vals = vec![T::zero(); pattern.nnz()];
        SparseMatrix { pattern, vals }
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// The shared pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// Resets every value to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for v in &mut self.vals {
            *v = T::zero();
        }
    }

    /// The value array, aligned with the pattern's CSR storage.
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable value array (for elementwise assembly, e.g. `G + jωC`).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Copies the current values out as a reusable snapshot.
    pub fn snapshot(&self) -> Vec<T> {
        note_alloc();
        self.vals.clone()
    }

    /// Restores values from a snapshot taken on this matrix. Snapshots of
    /// a different pattern (a caller bug) are ignored.
    pub fn restore(&mut self, snap: &[T]) {
        if snap.len() == self.vals.len() {
            self.vals.copy_from_slice(snap);
        } else {
            debug_assert!(false, "snapshot pattern mismatch");
            ape_probe::counter("spice.sparse.snapshot_mismatch", 1);
        }
    }

    /// Matrix-vector product, for residual checks in tests. Returns an
    /// all-zero vector when `x` does not match the matrix dimension.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.dim()];
        if x.len() != self.dim() {
            debug_assert!(false, "mul_vec dimension mismatch");
            return y;
        }
        for (r, yr) in y.iter_mut().enumerate() {
            let base = self.pattern.row_start[r] as usize;
            let mut acc = T::zero();
            for (i, &c) in self.pattern.row_cols(r).iter().enumerate() {
                acc = acc + self.vals[base + i] * x[c as usize];
            }
            *yr = acc;
        }
        y
    }

    /// Largest entry magnitude (the ∞-norm bound used for pivot tolerance).
    fn max_magnitude(&self) -> f64 {
        self.vals.iter().fold(0.0f64, |m, v| m.max(v.magnitude()))
    }
}

impl<T: Scalar> Stamp<T> for SparseMatrix<T> {
    fn stamp(&mut self, r: usize, c: usize, v: T) {
        // The pattern is collected from the exact stamp sequence replayed
        // here, so a miss is a solver bug; count it and drop the stamp
        // instead of taking the whole worker down.
        match self.pattern.idx(r, c) {
            Some(i) => self.vals[i] = self.vals[i] + v,
            None => {
                debug_assert!(false, "stamp outside the collected sparsity pattern");
                ape_probe::counter("spice.sparse.stamp_miss", 1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Symbolic analysis
// ---------------------------------------------------------------------------

/// The reusable result of one full factorisation: the pivot order and the
/// fill-in pattern of `L\U`, independent of numeric values.
#[derive(Debug)]
pub struct Symbolic {
    n: usize,
    /// `perm[k]` = original row eliminated at step `k`.
    perm: Vec<u32>,
    /// Factor CSR (rows in elimination order, sorted original columns).
    row_start: Vec<u32>,
    cols: Vec<u32>,
    /// Absolute index of the diagonal entry of factor row `k`; entries
    /// before it are `L`, from it on are `U`.
    diag: Vec<u32>,
    /// Pattern fingerprint this symbolic was built for.
    key: u64,
}

impl Symbolic {
    /// Number of stored factor entries (L + U, including fill-in).
    pub fn factor_nnz(&self) -> usize {
        self.cols.len()
    }
}

/// Pivot candidates must be within this factor of the column's largest
/// magnitude (threshold pivoting à la sparse1.3): loose enough to let the
/// Markowitz tie-break preserve sparsity, tight enough to bound growth.
const PIVOT_THRESHOLD: f64 = 0.1;

/// Full factorisation with pivoting: right-looking sparse LU over a working
/// row structure. Returns the symbolic (order + pattern) and the factored
/// values. `None` when the matrix is numerically singular.
fn analyze<T: Scalar>(a: &SparseMatrix<T>) -> Option<(Symbolic, Vec<T>)> {
    let _span = ape_probe::span("spice.factor.symbolic");
    ape_probe::counter("spice.factor.symbolic", 1);
    let n = a.dim();
    let tol = pivot_tol(a.max_magnitude());
    let pat = a.pattern();
    // Working copy, indexed by original row id.
    let mut rows: Vec<Vec<u32>> = (0..n).map(|r| pat.row_cols(r).to_vec()).collect();
    let mut vals: Vec<Vec<T>> = (0..n)
        .map(|r| {
            let s = pat.row_start[r] as usize;
            let e = pat.row_start[r + 1] as usize;
            a.vals[s..e].to_vec()
        })
        .collect();
    let mut pos: Vec<usize> = (0..n).collect();
    let mut piv_cols: Vec<u32> = Vec::new();
    let mut piv_vals: Vec<T> = Vec::new();
    let mut tmp_cols: Vec<u32> = Vec::new();
    let mut tmp_vals: Vec<T> = Vec::new();

    for k in 0..n {
        let kk = k as u32;
        // Pivot search over unfinished rows with a structural entry in
        // column k: largest magnitude sets the threshold, the sparsest
        // qualifying row wins (Markowitz-style fill control).
        let mut best_mag = 0.0f64;
        for &row in &pos[k..] {
            if let Ok(i) = rows[row].binary_search(&kk) {
                best_mag = best_mag.max(vals[row][i].magnitude());
            }
        }
        if !(best_mag.is_finite() && best_mag > tol) {
            return None;
        }
        let mut chosen = usize::MAX;
        let mut chosen_len = usize::MAX;
        for (p, &row) in pos.iter().enumerate().skip(k) {
            if let Ok(i) = rows[row].binary_search(&kk) {
                if vals[row][i].magnitude() >= PIVOT_THRESHOLD * best_mag
                    && rows[row].len() < chosen_len
                {
                    chosen = p;
                    chosen_len = rows[row].len();
                }
            }
        }
        if chosen == usize::MAX {
            // Every candidate magnitude compared false against the
            // threshold — only possible when the column went NaN.
            return None;
        }
        pos.swap(k, chosen);
        let prow = pos[k];
        let Ok(di) = rows[prow].binary_search(&kk) else {
            return None;
        };
        let pivot = vals[prow][di];
        piv_cols.clear();
        piv_cols.extend_from_slice(&rows[prow][di + 1..]);
        piv_vals.clear();
        piv_vals.extend_from_slice(&vals[prow][di + 1..]);

        for &row in &pos[k + 1..] {
            let Ok(i) = rows[row].binary_search(&kk) else {
                continue;
            };
            let f = vals[row][i] / pivot;
            vals[row][i] = f;
            // Merge the pivot row's trailing pattern into this row. Fill-in
            // is created structurally even when `f` is numerically zero, so
            // the pattern stays valid for any values at refactor time.
            tmp_cols.clear();
            tmp_vals.clear();
            let (rc, rv) = (&rows[row][i + 1..], &vals[row][i + 1..]);
            let (mut ia, mut ib) = (0usize, 0usize);
            while ia < rc.len() || ib < piv_cols.len() {
                let ca = rc.get(ia).copied().unwrap_or(u32::MAX);
                let cb = piv_cols.get(ib).copied().unwrap_or(u32::MAX);
                if ca < cb {
                    tmp_cols.push(ca);
                    tmp_vals.push(rv[ia]);
                    ia += 1;
                } else if cb < ca {
                    tmp_cols.push(cb);
                    tmp_vals.push(-(f * piv_vals[ib]));
                    ib += 1;
                } else {
                    tmp_cols.push(ca);
                    tmp_vals.push(rv[ia] - f * piv_vals[ib]);
                    ia += 1;
                    ib += 1;
                }
            }
            rows[row].truncate(i + 1);
            rows[row].extend_from_slice(&tmp_cols);
            vals[row].truncate(i + 1);
            vals[row].extend_from_slice(&tmp_vals);
        }
    }

    // Assemble the factor CSR in elimination order.
    let mut row_start = Vec::with_capacity(n + 1);
    row_start.push(0u32);
    let mut total = 0u32;
    for k in 0..n {
        total += rows[pos[k]].len() as u32;
        row_start.push(total);
    }
    let mut cols = Vec::with_capacity(total as usize);
    let mut fvals = Vec::with_capacity(total as usize);
    let mut diag = Vec::with_capacity(n);
    for (k, &row) in pos.iter().enumerate() {
        let Ok(d) = rows[row].binary_search(&(k as u32)) else {
            return None;
        };
        diag.push(row_start[k] + d as u32);
        cols.extend_from_slice(&rows[row]);
        fvals.append(&mut vals[row]);
    }
    note_alloc();
    ape_probe::value("spice.factor.fill_nnz", total as f64);
    Some((
        Symbolic {
            n,
            perm: pos.iter().map(|&r| r as u32).collect(),
            row_start,
            cols,
            diag,
            key: pat.key,
        },
        fvals,
    ))
}

// ---------------------------------------------------------------------------
// Thread-local symbolic cache
// ---------------------------------------------------------------------------

thread_local! {
    static SYM_CACHE: RefCell<HashMap<u64, Arc<Symbolic>>> = RefCell::new(HashMap::new());
}

const SYM_CACHE_CAP: usize = 64;

static SYM_HITS: AtomicU64 = AtomicU64::new(0);
static SYM_MISSES: AtomicU64 = AtomicU64::new(0);
static SYM_REPIVOTS: AtomicU64 = AtomicU64::new(0);

fn cache_lookup(key: u64) -> Option<Arc<Symbolic>> {
    SYM_CACHE.with(|c| c.borrow().get(&key).cloned())
}

fn cache_insert(key: u64, sym: Arc<Symbolic>) {
    SYM_CACHE.with(|c| {
        let mut map = c.borrow_mut();
        if map.len() >= SYM_CACHE_CAP {
            map.clear();
        }
        map.insert(key, sym);
    });
}

/// Drops this thread's cached symbolic factorizations.
///
/// A cached pivot order is a function of the bias point that built it, so
/// carrying it across independent jobs makes results depend (at rounding
/// level) on job scheduling. Deterministic batch drivers (`ape-farm`) call
/// this per job, mirroring the sizing-cache isolation.
pub fn reset_symbolic_cache() {
    SYM_CACHE.with(|c| c.borrow_mut().clear());
}

/// Cumulative symbolic-cache statistics across all threads:
/// `(hits, misses, repivots)`.
pub fn symbolic_cache_stats() -> (u64, u64, u64) {
    (
        SYM_HITS.load(Ordering::Relaxed),
        SYM_MISSES.load(Ordering::Relaxed),
        SYM_REPIVOTS.load(Ordering::Relaxed),
    )
}

/// Human-readable symbolic-cache report, in the same spirit as
/// `ape_core::graph::graph_report()`.
pub fn symbolic_cache_report() -> String {
    let (hits, misses, repivots) = symbolic_cache_stats();
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64 * 100.0
    };
    format!(
        "solver symbolic cache: {hits} hits / {misses} misses ({rate:.1}% hit rate), \
         {repivots} repivots, {} allocs",
        alloc_events()
    )
}

// ---------------------------------------------------------------------------
// SparseFactor
// ---------------------------------------------------------------------------

/// A reusable sparse LU factorisation with preallocated workspaces.
///
/// The first [`factor`](Self::factor) call performs (or fetches from the
/// per-thread cache) the symbolic analysis; every later call on the same
/// pattern is a numeric refactorisation with zero heap allocation. Solves
/// are likewise allocation-free.
#[derive(Debug, Default)]
pub struct SparseFactor<T> {
    sym: Option<Arc<Symbolic>>,
    vals: Vec<T>,
    /// Dense scatter workspace for refactorisation.
    w: Vec<T>,
    /// Permuted right-hand side / solution scratch.
    y: Vec<T>,
}

impl<T: Scalar> SparseFactor<T> {
    /// An empty factor; the first [`factor`](Self::factor) call sizes it.
    pub fn new() -> Self {
        SparseFactor {
            sym: None,
            vals: Vec::new(),
            w: Vec::new(),
            y: Vec::new(),
        }
    }

    /// A factor pre-seeded with a shared symbolic analysis (used by the
    /// parallel AC sweep so worker threads skip their own analysis).
    pub fn with_symbolic(sym: Arc<Symbolic>) -> Self {
        let mut f = SparseFactor::new();
        f.adopt(sym);
        f
    }

    /// The current symbolic analysis, for sharing across factors.
    pub fn symbolic(&self) -> Option<Arc<Symbolic>> {
        self.sym.clone()
    }

    fn adopt(&mut self, sym: Arc<Symbolic>) {
        note_alloc();
        self.vals.clear();
        self.vals.resize(sym.factor_nnz(), T::zero());
        self.w.clear();
        self.w.resize(sym.n, T::zero());
        self.y.clear();
        self.y.resize(sym.n, T::zero());
        self.sym = Some(sym);
    }

    /// Factorises `a`, reusing the cached symbolic analysis when possible.
    ///
    /// Returns `None` when the matrix is numerically singular.
    pub fn factor(&mut self, a: &SparseMatrix<T>) -> Option<()> {
        let key = a.pattern().key();
        // Fast path: in-place numeric refactorisation over the held symbolic.
        if self.sym.as_ref().is_some_and(|s| s.key == key) {
            if self.refactor(a).is_ok() {
                return Some(());
            }
            SYM_REPIVOTS.fetch_add(1, Ordering::Relaxed);
            ape_probe::counter("spice.factor.repivots", 1);
            return self.analyze_into(a);
        }
        // Thread-local cache: another factor already analysed this pattern.
        if let Some(sym) = cache_lookup(key) {
            SYM_HITS.fetch_add(1, Ordering::Relaxed);
            ape_probe::counter("spice.solve.reuse_hits", 1);
            self.adopt(sym);
            if self.refactor(a).is_ok() {
                return Some(());
            }
            SYM_REPIVOTS.fetch_add(1, Ordering::Relaxed);
            ape_probe::counter("spice.factor.repivots", 1);
            return self.analyze_into(a);
        }
        SYM_MISSES.fetch_add(1, Ordering::Relaxed);
        self.analyze_into(a)
    }

    fn analyze_into(&mut self, a: &SparseMatrix<T>) -> Option<()> {
        let (sym, fvals) = analyze(a)?;
        let sym = Arc::new(sym);
        cache_insert(sym.key, Arc::clone(&sym));
        self.adopt(Arc::clone(&sym));
        self.vals = fvals;
        Some(())
    }

    /// Numeric refactorisation over the frozen pattern: an up-looking
    /// replay of the elimination with a dense scatter workspace.
    /// Allocation-free. `Err` on a stale/small pivot.
    fn refactor(&mut self, a: &SparseMatrix<T>) -> Result<(), ()> {
        ape_probe::counter("spice.factor.numeric", 1);
        let SparseFactor { sym, vals, w, .. } = self;
        let Some(sym) = sym.as_ref() else {
            return Err(());
        };
        let n = sym.n;
        let tol = pivot_tol(a.max_magnitude());
        let pat = a.pattern();
        for k in 0..n {
            let s = sym.row_start[k] as usize;
            let e = sym.row_start[k + 1] as usize;
            let d = sym.diag[k] as usize;
            // Scatter: zero the factor-row footprint, then load A's row.
            for &c in &sym.cols[s..e] {
                w[c as usize] = T::zero();
            }
            let arow = sym.perm[k] as usize;
            let ab = pat.row_start[arow] as usize;
            let ae = pat.row_start[arow + 1] as usize;
            for (&c, &v) in pat.cols[ab..ae].iter().zip(&a.vals[ab..ae]) {
                w[c as usize] = v;
            }
            // Eliminate with the already-factored rows, in column order —
            // the same update sequence the original elimination performed.
            for idx in s..d {
                let j = sym.cols[idx] as usize;
                let f = w[j] / vals[sym.diag[j] as usize];
                w[j] = f;
                let js = sym.diag[j] as usize + 1;
                let je = sym.row_start[j + 1] as usize;
                for (&c, &v) in sym.cols[js..je].iter().zip(&vals[js..je]) {
                    w[c as usize] = w[c as usize] - f * v;
                }
            }
            let m = w[k].magnitude();
            if !(m.is_finite() && m > tol) {
                return Err(());
            }
            // Gather.
            for (dst, &c) in vals[s..e].iter_mut().zip(&sym.cols[s..e]) {
                *dst = w[c as usize];
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` in place using the current factorisation.
    /// Allocation-free. `None` when substitution produces non-finite
    /// values, when called before a successful [`factor`](Self::factor),
    /// or when `b` does not match the factored dimension.
    pub fn solve(&mut self, b: &mut [T]) -> Option<()> {
        let SparseFactor { sym, vals, y, .. } = self;
        let sym = sym.as_ref()?;
        let n = sym.n;
        if b.len() != n {
            return None;
        }
        for (dst, &p) in y.iter_mut().zip(&sym.perm) {
            *dst = b[p as usize];
        }
        // Forward substitution over L (unit diagonal, stored factors).
        for k in 0..n {
            let s = sym.row_start[k] as usize;
            let d = sym.diag[k] as usize;
            let mut acc = y[k];
            for (&v, &c) in vals[s..d].iter().zip(&sym.cols[s..d]) {
                acc = acc - v * y[c as usize];
            }
            y[k] = acc;
        }
        // Back substitution over U.
        for k in (0..n).rev() {
            let d = sym.diag[k] as usize;
            let e = sym.row_start[k + 1] as usize;
            let mut acc = y[k];
            for (&v, &c) in vals[d + 1..e].iter().zip(&sym.cols[d + 1..e]) {
                acc = acc - v * y[c as usize];
            }
            let v = acc / vals[d];
            if !v.finite() {
                return None;
            }
            y[k] = v;
        }
        b.copy_from_slice(y);
        Some(())
    }
}

// ---------------------------------------------------------------------------
// Convenience for tests and the dense/sparse differential oracle
// ---------------------------------------------------------------------------

/// Builds a [`SparseMatrix`] from a dense one (every nonzero entry becomes
/// structural), for differential tests.
pub fn from_dense<T: Scalar>(m: &Matrix<T>) -> SparseMatrix<T> {
    let n = m.dim();
    let mut pb = PatternBuilder::new(n);
    for r in 0..n {
        for c in 0..n {
            if m[(r, c)] != T::zero() {
                pb.add(r, c);
            }
        }
    }
    let mut s = SparseMatrix::new(pb.build());
    for r in 0..n {
        for c in 0..n {
            if m[(r, c)] != T::zero() {
                s.stamp(r, c, m[(r, c)]);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    #[test]
    fn solves_diagonal() {
        let mut pb = PatternBuilder::new(3);
        for i in 0..3 {
            pb.add(i, i);
        }
        let mut m: SparseMatrix<f64> = SparseMatrix::new(pb.build());
        for i in 0..3 {
            m.stamp(i, i, (i + 1) as f64);
        }
        let mut f = SparseFactor::new();
        f.factor(&m).unwrap();
        let mut b = vec![1.0, 4.0, 9.0];
        f.solve(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pivots_structural_zero_diagonal() {
        // Voltage-source-like block: [[g, 1], [1, 0]] needs a row swap.
        let mut pb = PatternBuilder::new(2);
        pb.add(0, 0);
        pb.add(0, 1);
        pb.add(1, 0);
        let mut m: SparseMatrix<f64> = SparseMatrix::new(pb.build());
        m.stamp(0, 0, 1e-12);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        let mut f = SparseFactor::new();
        f.factor(&m).unwrap();
        let mut b = vec![0.0, 5.0];
        f.solve(&mut b).unwrap();
        assert!((b[0] - 5.0).abs() < 1e-9, "x0 = {}", b[0]);
        assert!(b[1].abs() < 1e-9, "x1 = {}", b[1]);
    }

    #[test]
    fn matches_dense_on_random_system() {
        let n = 40;
        let mut seed = 0xfeedu64;
        let mut dense: Matrix<f64> = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                // ~30 % density plus a dominant diagonal.
                if r == c || lcg(&mut seed).abs() < 0.3 {
                    dense[(r, c)] = lcg(&mut seed);
                }
            }
            dense[(r, r)] += 8.0;
        }
        let b: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
        let xd = dense.solve(&b).unwrap();
        let sm = from_dense(&dense);
        let mut f = SparseFactor::new();
        f.factor(&sm).unwrap();
        let mut xs = b.clone();
        f.solve(&mut xs).unwrap();
        for (a, bb) in xd.iter().zip(&xs) {
            assert!((a - bb).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {bb}");
        }
    }

    #[test]
    fn refactor_reuses_pattern_without_alloc() {
        let n = 30;
        let mut seed = 0x1234u64;
        let mut pb = PatternBuilder::new(n);
        let mut entries = Vec::new();
        for r in 0..n {
            pb.add(r, r);
            entries.push((r, r));
            let c = (r * 7 + 3) % n;
            if c != r {
                pb.add(r, c);
                entries.push((r, c));
                pb.add(c, r);
                entries.push((c, r));
            }
        }
        let mut m: SparseMatrix<f64> = SparseMatrix::new(pb.build());
        let mut f = SparseFactor::new();
        let mut baseline = 0;
        for round in 0..10 {
            m.clear();
            for &(r, c) in &entries {
                let v = if r == c { 10.0 } else { lcg(&mut seed) };
                m.stamp(r, c, v);
            }
            f.factor(&m).unwrap();
            let mut x: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let b = m.mul_vec(&x);
            let mut sol = b.clone();
            f.solve(&mut sol).unwrap();
            for (a, bb) in x.iter().zip(&sol) {
                assert!((a - bb).abs() < 1e-8, "{a} vs {bb}");
            }
            x.clear();
            if round == 0 {
                baseline = alloc_events();
            } else {
                assert_eq!(
                    alloc_events(),
                    baseline,
                    "steady-state refactor+solve must not allocate"
                );
            }
        }
    }

    #[test]
    fn detects_singularity() {
        let mut pb = PatternBuilder::new(2);
        for r in 0..2 {
            for c in 0..2 {
                pb.add(r, c);
            }
        }
        let mut m: SparseMatrix<f64> = SparseMatrix::new(pb.build());
        m.stamp(0, 0, 1.0);
        m.stamp(0, 1, 2.0);
        m.stamp(1, 0, 2.0);
        m.stamp(1, 1, 4.0);
        let mut f = SparseFactor::new();
        assert!(f.factor(&m).is_none());
    }

    #[test]
    fn complex_solve_matches_dense() {
        let n = 12;
        let mut seed = 0xabcdu64;
        let mut dense: Matrix<Complex> = Matrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                if r == c || lcg(&mut seed).abs() < 0.4 {
                    dense[(r, c)] = Complex::new(lcg(&mut seed), lcg(&mut seed));
                }
            }
            dense[(r, r)] += Complex::real(6.0);
        }
        let b: Vec<Complex> = (0..n)
            .map(|_| Complex::new(lcg(&mut seed), lcg(&mut seed)))
            .collect();
        let xd = dense.solve(&b).unwrap();
        let sm = from_dense(&dense);
        let mut f = SparseFactor::new();
        f.factor(&sm).unwrap();
        let mut xs = b.clone();
        f.solve(&mut xs).unwrap();
        for (a, bb) in xd.iter().zip(&xs) {
            assert!((*a - *bb).norm() < 1e-9, "{a} vs {bb}");
        }
    }

    #[test]
    fn symbolic_cache_hits_across_factors() {
        reset_symbolic_cache();
        let mut pb = PatternBuilder::new(16);
        for r in 0..16 {
            pb.add(r, r);
            pb.add(r, (r + 1) % 16);
            pb.add((r + 1) % 16, r);
        }
        let pattern = pb.build();
        let mut m: SparseMatrix<f64> = SparseMatrix::new(Arc::clone(&pattern));
        for r in 0..16 {
            m.stamp(r, r, 4.0);
            m.stamp(r, (r + 1) % 16, 1.0);
            m.stamp((r + 1) % 16, r, 1.0);
        }
        let (h0, _, _) = symbolic_cache_stats();
        let mut f1 = SparseFactor::new();
        f1.factor(&m).unwrap();
        let mut f2 = SparseFactor::new();
        f2.factor(&m).unwrap();
        let (h1, _, _) = symbolic_cache_stats();
        assert!(h1 > h0, "second factor should hit the symbolic cache");
    }
}
