//! Extraction of the linearised `(G + sC)·x = b` system at an operating
//! point.
//!
//! This is the form consumed by Asymptotic Waveform Evaluation (`ape-awe`):
//! `G` holds every conductance and source constraint, `C` every capacitance
//! and inductance, and `b` the AC excitation vector. The unknown ordering
//! matches [`Unknowns`].

use crate::dc::OperatingPoint;
use crate::error::SpiceError;
use crate::linalg::Matrix;
use crate::mna::Unknowns;
use crate::stamp::{g2, gtrans, Stamp};
use ape_netlist::{Circuit, ElementKind, NodeId, Technology};

/// The linearised frequency-domain system of a circuit at an operating point.
#[derive(Debug, Clone)]
pub struct LinearizedSystem {
    /// Conductance/constraint matrix `G`.
    pub g: Matrix<f64>,
    /// Susceptance matrix `C` (enters as `s·C`).
    pub c: Matrix<f64>,
    /// Excitation vector from AC source magnitudes.
    pub b: Vec<f64>,
    /// Unknown ordering shared with the other analyses.
    pub unknowns: Unknowns,
}

impl LinearizedSystem {
    /// Row index of a node voltage unknown, or `None` for ground.
    pub fn node_row(&self, node: NodeId) -> Option<usize> {
        node.matrix_row().filter(|&r| r < self.unknowns.n_nodes)
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.g.dim()
    }
}

/// Builds the linearised system of `circuit` at `op`.
///
/// # Errors
///
/// * [`SpiceError::UnknownModel`] for MOSFETs with missing cards.
/// * [`SpiceError::BadCircuit`] if `op` does not belong to this circuit.
pub fn linearize(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
) -> Result<LinearizedSystem, SpiceError> {
    let u = Unknowns::for_circuit(circuit);
    let n = u.dim();
    let mut g = Matrix::<f64>::zeros(n);
    let mut c = Matrix::<f64>::zeros(n);
    let mut b = vec![0.0; n];
    stamp_small_signal(circuit, tech, op, &u, &mut g, &mut c, &mut b)?;
    Ok(LinearizedSystem {
        g,
        c,
        b,
        unknowns: u,
    })
}

/// Stamps the small-signal system of `circuit` at `op` into separate
/// conductance (`g`) and susceptance (`c`) sinks plus the AC excitation
/// vector `b`. The AC analysis assembles `G + jωC` from the same routine,
/// so both views of a circuit are one stamping function apart — sinks can
/// be dense matrices, sparse matrices, or pattern builders.
///
/// The inductor branch equation `v − sL·i = 0` puts `−L` on the branch
/// diagonal of `c`; everything else in `c` is a capacitance.
pub(crate) fn stamp_small_signal<MG: Stamp<f64>, MC: Stamp<f64>>(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    u: &Unknowns,
    g: &mut MG,
    c: &mut MC,
    b: &mut [f64],
) -> Result<(), SpiceError> {
    // Tiny shunt keeps isolated nodes solvable, as in DC.
    for r in 0..u.n_nodes {
        g.stamp(r, r, 1e-12);
    }
    for e in circuit.elements() {
        let a = u.node_row(e.a);
        let bb = u.node_row(e.b);
        match &e.kind {
            ElementKind::Resistor { ohms } => g2(g, a, bb, 1.0 / ohms),
            ElementKind::Capacitor { farads } => g2(c, a, bb, *farads),
            ElementKind::Inductor { henries } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    g.stamp(ra, k, 1.0);
                    g.stamp(k, ra, 1.0);
                }
                if let Some(rb) = bb {
                    g.stamp(rb, k, -1.0);
                    g.stamp(k, rb, -1.0);
                }
                c.stamp(k, k, -henries);
            }
            ElementKind::VoltageSource { ac_mag, .. } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    g.stamp(ra, k, 1.0);
                    g.stamp(k, ra, 1.0);
                }
                if let Some(rb) = bb {
                    g.stamp(rb, k, -1.0);
                    g.stamp(k, rb, -1.0);
                }
                b[k] += ac_mag;
            }
            ElementKind::CurrentSource { ac_mag, .. } => {
                if let Some(ra) = a {
                    b[ra] -= ac_mag;
                }
                if let Some(rb) = bb {
                    b[rb] += ac_mag;
                }
            }
            ElementKind::Vcvs { gain, cp, cn } => {
                let k = u.branch_row(e);
                if let Some(ra) = a {
                    g.stamp(ra, k, 1.0);
                    g.stamp(k, ra, 1.0);
                }
                if let Some(rb) = bb {
                    g.stamp(rb, k, -1.0);
                    g.stamp(k, rb, -1.0);
                }
                if let Some(rc) = u.node_row(*cp) {
                    g.stamp(k, rc, -gain);
                }
                if let Some(rc) = u.node_row(*cn) {
                    g.stamp(k, rc, *gain);
                }
            }
            ElementKind::Vccs { gm, cp, cn } => {
                gtrans(g, a, bb, u.node_row(*cp), u.node_row(*cn), *gm);
            }
            ElementKind::Switch {
                cp,
                cn,
                vt,
                ron,
                roff,
            } => {
                // Frozen at its DC conductance.
                let vc = op.voltage(*cp) - op.voltage(*cn);
                let s = 1.0 / (1.0 + (-(vc - vt) / 0.05).exp());
                let gv = 1.0 / roff + (1.0 / ron - 1.0 / roff) * s;
                g2(g, a, bb, gv);
            }
            ElementKind::Mosfet {
                model,
                source,
                bulk,
                ..
            } => {
                let _ = tech
                    .model(model)
                    .ok_or_else(|| SpiceError::UnknownModel(model.clone()))?;
                let info = op.mos.get(&e.name).ok_or_else(|| {
                    SpiceError::BadCircuit(format!(
                        "operating point lacks MOSFET `{}` (wrong circuit?)",
                        e.name
                    ))
                })?;
                let d = a;
                let g_row = bb;
                let s_row = u.node_row(*source);
                let b_row = u.node_row(*bulk);
                g2(g, d, s_row, info.eval.gds.max(0.0));
                gtrans(g, d, s_row, g_row, s_row, info.eval.gm);
                gtrans(g, d, s_row, b_row, s_row, info.eval.gmb);
                g2(c, g_row, s_row, info.caps.cgs);
                g2(c, g_row, d, info.caps.cgd);
                g2(c, g_row, b_row, info.caps.cgb);
                g2(c, d, b_row, info.caps.cdb);
                g2(c, s_row, b_row, info.caps.csb);
            }
            other => {
                return Err(SpiceError::BadCircuit(format!(
                    "unsupported element kind {other:?} in linearisation"
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;
    use crate::dc::dc_operating_point;
    use crate::{ac_sweep, decade_frequencies};
    use ape_netlist::{Circuit, SourceWaveform, Technology};

    #[test]
    fn linearized_matches_ac_for_rc() {
        let mut ckt = Circuit::new("rc");
        let i = ckt.node("in");
        let o = ckt.node("out");
        ckt.add_vsource("V1", i, Circuit::GROUND, 0.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_resistor("R1", i, o, 1e3).unwrap();
        ckt.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sys = linearize(&ckt, &tech, &op).unwrap();

        // Solve (G + jwC)x = b at 1 MHz by building the complex matrix.
        let w = 2.0 * std::f64::consts::PI * 1e6;
        let n = sys.dim();
        let mut m = crate::linalg::Matrix::<Complex>::zeros(n);
        for r in 0..n {
            for c2 in 0..n {
                m[(r, c2)] = Complex::new(sys.g[(r, c2)], w * sys.c[(r, c2)]);
            }
        }
        let rhs: Vec<Complex> = sys.b.iter().map(|&v| Complex::real(v)).collect();
        let x = m.solve(&rhs).unwrap();
        let row = sys.node_row(o).unwrap();

        let sweep = ac_sweep(&ckt, &tech, &op, &[1e6]).unwrap();
        let direct = sweep.voltage(0, o);
        assert!((x[row].norm() - direct.norm()).abs() < 1e-9);
        assert!((x[row].arg() - direct.arg()).abs() < 1e-9);
    }

    #[test]
    fn dimension_matches_unknowns() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, 1.0, 1.0, SourceWaveform::Dc)
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&ckt, &tech).unwrap();
        let sys = linearize(&ckt, &tech, &op).unwrap();
        assert_eq!(sys.dim(), 2); // node a + V1 branch
        let _ = decade_frequencies(1.0, 10.0, 1).unwrap(); // silence unused import lint path
    }
}
