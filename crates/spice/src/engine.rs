//! The backend-dispatching real-valued solver shared by the DC and
//! transient analyses.
//!
//! [`RealSolver`] owns the assembled MNA matrix (dense or sparse) and the
//! factorisation workspaces, so a Newton loop is just:
//!
//! ```text
//! restore(linear snapshot) → stamp dynamic part → solve in place
//! ```
//!
//! with zero heap allocation per iteration. The backend is picked once per
//! analysis from [`Backend`](crate::sparse::Backend): dense for systems of
//! up to [`DENSE_CUTOFF`](crate::sparse::DENSE_CUTOFF) unknowns, sparse
//! (pattern-cached LU) above.

use crate::linalg::Matrix;
use crate::sparse::{Pattern, SparseFactor, SparseMatrix};
use crate::stamp::Stamp;
use std::sync::Arc;

/// A real-valued MNA solver with preallocated factorisation state.
pub(crate) enum RealSolver {
    Dense {
        mat: Matrix<f64>,
    },
    Sparse {
        mat: SparseMatrix<f64>,
        factor: SparseFactor<f64>,
    },
}

/// A saved copy of the assembled matrix values — the static (linear) part
/// of the system, restored at the top of every Newton iteration.
pub(crate) enum MatSnapshot {
    Dense(Matrix<f64>),
    Sparse(Vec<f64>),
}

impl RealSolver {
    /// Dense backend for an `n`-unknown system.
    pub fn dense(n: usize) -> Self {
        RealSolver::Dense {
            mat: Matrix::zeros(n),
        }
    }

    /// Sparse backend over a fixed sparsity pattern.
    pub fn sparse(pattern: Arc<Pattern>) -> Self {
        RealSolver::Sparse {
            mat: SparseMatrix::new(pattern),
            factor: SparseFactor::new(),
        }
    }

    /// Zeroes the assembled matrix, keeping allocations.
    pub fn clear(&mut self) {
        match self {
            RealSolver::Dense { mat, .. } => mat.clear(),
            RealSolver::Sparse { mat, .. } => mat.clear(),
        }
    }

    /// Copies the current matrix values into a new snapshot.
    pub fn snapshot(&self) -> MatSnapshot {
        match self {
            RealSolver::Dense { mat, .. } => MatSnapshot::Dense(mat.clone()),
            RealSolver::Sparse { mat, .. } => MatSnapshot::Sparse(mat.snapshot()),
        }
    }

    /// Re-saves the current matrix values into an existing snapshot
    /// without allocating. A backend-mismatched snapshot (a caller bug) is
    /// replaced wholesale with a fresh one rather than panicking.
    pub fn save_into(&self, snap: &mut MatSnapshot) {
        match (self, snap) {
            (RealSolver::Dense { mat, .. }, MatSnapshot::Dense(s)) => s.copy_from(mat),
            (RealSolver::Sparse { mat, .. }, MatSnapshot::Sparse(s)) => {
                s.copy_from_slice(mat.values());
            }
            (_, snap) => {
                debug_assert!(false, "snapshot backend mismatch");
                ape_probe::counter("spice.engine.snapshot_mismatch", 1);
                *snap = self.snapshot();
            }
        }
    }

    /// Restores matrix values from a snapshot taken on this solver.
    /// A backend-mismatched snapshot (a caller bug) leaves the matrix
    /// untouched rather than panicking.
    pub fn restore(&mut self, snap: &MatSnapshot) {
        match (self, snap) {
            (RealSolver::Dense { mat, .. }, MatSnapshot::Dense(s)) => mat.copy_from(s),
            (RealSolver::Sparse { mat, .. }, MatSnapshot::Sparse(s)) => mat.restore(s),
            _ => {
                debug_assert!(false, "snapshot backend mismatch");
                ape_probe::counter("spice.engine.snapshot_mismatch", 1);
            }
        }
    }

    /// Solves `A·x = rhs` in place (`rhs` becomes the solution). The dense
    /// backend factorises the assembled matrix destructively — every Newton
    /// iteration restores it from its snapshot before stamping, so nothing
    /// would read the factored values anyway, and the restore already pays
    /// the one matrix copy per iteration. `None` on a singular system.
    pub fn solve(&mut self, rhs: &mut [f64]) -> Option<()> {
        match self {
            RealSolver::Dense { mat } => mat.solve_in_place(rhs),
            RealSolver::Sparse { mat, factor } => {
                factor.factor(mat)?;
                factor.solve(rhs)
            }
        }
    }
}

impl Stamp<f64> for RealSolver {
    fn stamp(&mut self, r: usize, c: usize, v: f64) {
        match self {
            RealSolver::Dense { mat, .. } => mat.stamp(r, c, v),
            RealSolver::Sparse { mat, .. } => mat.stamp(r, c, v),
        }
    }
}
