//! Transient analysis.
//!
//! Trapezoidal integration with Newton-Raphson at every time point. MOS
//! intrinsic/junction capacitances are frozen at their DC operating-point
//! values (quasi-static small-capacitance approximation) — adequate for the
//! slew/settling/delay measurements the reproduction needs and documented in
//! `DESIGN.md`. Steps that fail to converge are halved recursively.

use crate::dc::{
    build_real_solver, rhs_sources, stamp_devices, stamp_linear_dc, DeviceScratch, OperatingPoint,
    SourceValue,
};
use crate::engine::{MatSnapshot, RealSolver};
use crate::error::SpiceError;
use crate::mna::Unknowns;
use crate::sparse::Backend;
use crate::stamp::Stamp;
use ape_netlist::{Circuit, ElementKind, NodeId, Technology};

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy)]
pub struct TranOptions {
    /// Output/base time step, seconds.
    pub tstep: f64,
    /// Stop time, seconds.
    pub tstop: f64,
    /// Maximum Newton iterations per time point.
    pub max_newton: usize,
    /// Maximum number of recursive step halvings before giving up.
    pub max_halvings: usize,
    /// Linear-solver backend selection.
    pub backend: Backend,
}

impl TranOptions {
    /// Creates options for a run to `tstop` with step `tstep`.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        TranOptions {
            tstep,
            tstop,
            max_newton: 60,
            max_halvings: 12,
            backend: Backend::Auto,
        }
    }
}

/// A completed transient simulation: node voltages sampled over time.
#[derive(Debug, Clone)]
pub struct Transient {
    /// Sample times, seconds.
    pub times: Vec<f64>,
    samples: Vec<Vec<f64>>,
    n_nodes: usize,
}

impl Transient {
    /// Voltage of `node` at sample `k`.
    pub fn voltage(&self, k: usize, node: NodeId) -> f64 {
        match node.matrix_row() {
            Some(r) if r < self.n_nodes => self.samples[k][r],
            _ => 0.0,
        }
    }

    /// The full `(t, v)` waveform of a node.
    pub fn waveform(&self, node: NodeId) -> Vec<(f64, f64)> {
        (0..self.times.len())
            .map(|k| (self.times[k], self.voltage(k, node)))
            .collect()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were stored.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// One linear capacitor-like companion element with trapezoidal state.
struct CapState {
    a: NodeId,
    b: NodeId,
    c: f64,
    v_prev: f64,
    i_prev: f64,
}

struct IndState {
    /// Branch-current row, resolved once at collection time.
    row: Option<usize>,
    l: f64,
    v_prev: f64,
    i_prev: f64,
}

/// Runs a transient analysis starting from the DC operating point `op`.
///
/// # Errors
///
/// * [`SpiceError::NoConvergence`] if a time step cannot converge even after
///   `max_halvings` halvings.
/// * [`SpiceError::SingularMatrix`] for singular systems.
pub fn transient(
    circuit: &Circuit,
    tech: &Technology,
    op: &OperatingPoint,
    opts: TranOptions,
) -> Result<Transient, SpiceError> {
    let _span = ape_probe::span("spice.tran");
    ape_probe::counter("spice.tran.runs", 1);
    // The stepping loop advances `t += tstep`; a zero, negative, or
    // non-finite step would spin forever (or terminate with a bogus
    // single sample), so reject degenerate windows up front.
    if !(opts.tstep.is_finite() && opts.tstep > 0.0 && opts.tstop.is_finite() && opts.tstop >= 0.0)
    {
        return Err(SpiceError::BadCircuit(format!(
            "invalid transient window: tstep={}, tstop={}",
            opts.tstep, opts.tstop
        )));
    }
    // A positive-but-microscopic step under a large stop time is as good as
    // an infinite loop (10^600 iterations); bound the output sample count.
    const MAX_STEPS: f64 = 10_000_000.0;
    if opts.tstop / opts.tstep > MAX_STEPS {
        return Err(SpiceError::BadCircuit(format!(
            "transient window needs {:.3e} steps, over the {MAX_STEPS:.0}-step limit",
            opts.tstop / opts.tstep
        )));
    }
    let u = Unknowns::for_circuit(circuit);
    let n = u.dim();
    let mut x = op.solution().to_vec();
    if x.len() != n {
        return Err(SpiceError::BadCircuit(
            "operating point does not match circuit".into(),
        ));
    }

    // Collect capacitive elements: explicit capacitors plus the five MOS
    // capacitances recorded in the operating point.
    let mut caps: Vec<CapState> = Vec::new();
    let mut inds: Vec<IndState> = Vec::new();
    for e in circuit.elements() {
        match &e.kind {
            ElementKind::Capacitor { farads } => caps.push(CapState {
                a: e.a,
                b: e.b,
                c: *farads,
                v_prev: 0.0,
                i_prev: 0.0,
            }),
            ElementKind::Inductor { henries } => inds.push(IndState {
                row: u.branch_row_by_name(&e.name),
                l: *henries,
                v_prev: 0.0,
                i_prev: 0.0,
            }),
            ElementKind::Mosfet { .. } => {
                if let Some(info) = op.mos.get(&e.name) {
                    let pairs = [
                        (info.gate, info.source, info.caps.cgs),
                        (info.gate, info.drain, info.caps.cgd),
                        (info.gate, info.bulk, info.caps.cgb),
                        (info.drain, info.bulk, info.caps.cdb),
                        (info.source, info.bulk, info.caps.csb),
                    ];
                    for (a, b, c) in pairs {
                        if c > 0.0 && a != b {
                            caps.push(CapState {
                                a,
                                b,
                                c,
                                v_prev: 0.0,
                                i_prev: 0.0,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Initialise companion states from the operating point.
    for cs in &mut caps {
        cs.v_prev = u.voltage(&x, cs.a) - u.voltage(&x, cs.b);
        cs.i_prev = 0.0;
    }
    for is in &mut inds {
        is.v_prev = 0.0;
        is.i_prev = is.row.map(|r| x[r]).unwrap_or(0.0);
    }

    let solver = build_real_solver(circuit, tech, &u, &x, opts.backend, |pb| {
        // Companion footprints on top of the shared DC pattern.
        for cs in &caps {
            let (a, b) = (u.node_row(cs.a), u.node_row(cs.b));
            if let Some(ra) = a {
                pb.add(ra, ra);
            }
            if let Some(rb) = b {
                pb.add(rb, rb);
            }
            if let (Some(ra), Some(rb)) = (a, b) {
                pb.add(ra, rb);
                pb.add(rb, ra);
            }
        }
        for is in &inds {
            if let Some(k) = is.row {
                pb.add(k, k);
            }
        }
    })?;
    let static_snap = solver.snapshot();
    let mut eng = TranEngine {
        circuit,
        tech,
        u: &u,
        solver,
        static_snap,
        snap_h: 0.0,
        rhs_base: vec![0.0; n],
        rhs: vec![0.0; n],
        caps,
        inds,
        scratch: DeviceScratch::default(),
    };

    let mut times = vec![0.0];
    let mut samples = vec![x[..u.n_nodes].to_vec()];
    let mut t = 0.0;

    while t < opts.tstop - 1e-18 {
        let h_out = opts.tstep.min(opts.tstop - t);
        eng.step_adaptive(&mut x, t, h_out, opts, 0)?;
        t += h_out;
        times.push(t);
        samples.push(x[..u.n_nodes].to_vec());
    }

    Ok(Transient {
        times,
        samples,
        n_nodes: u.n_nodes,
    })
}

/// Per-analysis transient state: the backend solver, the static matrix
/// snapshot for the current step size (linear elements + gmin + trapezoidal
/// companion conductances — everything that does not change across a
/// step's Newton iterations), and reusable right-hand-side buffers.
struct TranEngine<'a> {
    circuit: &'a Circuit,
    tech: &'a Technology,
    u: &'a Unknowns,
    solver: RealSolver,
    static_snap: MatSnapshot,
    /// Step size the snapshot was built for (companion conductances are
    /// `2C/h` / `-2L/h`); a different `h` triggers a rebuild.
    snap_h: f64,
    rhs_base: Vec<f64>,
    rhs: Vec<f64>,
    caps: Vec<CapState>,
    inds: Vec<IndState>,
    scratch: DeviceScratch,
}

impl TranEngine<'_> {
    /// Rebuilds the static matrix snapshot for step size `h`.
    fn rebuild_static(&mut self, h: f64) -> Result<(), SpiceError> {
        self.solver.clear();
        for r in 0..self.u.n_nodes {
            self.solver.stamp(r, r, 1e-12);
        }
        stamp_linear_dc(self.circuit, self.u, &mut self.solver)?;
        for cs in &self.caps {
            let geq = 2.0 * cs.c / h;
            let (a, b) = (self.u.node_row(cs.a), self.u.node_row(cs.b));
            if let Some(ra) = a {
                self.solver.stamp(ra, ra, geq);
            }
            if let Some(rb) = b {
                self.solver.stamp(rb, rb, geq);
            }
            if let (Some(ra), Some(rb)) = (a, b) {
                self.solver.stamp(ra, rb, -geq);
                self.solver.stamp(rb, ra, -geq);
            }
        }
        for is in &self.inds {
            if let Some(k) = is.row {
                self.solver.stamp(k, k, -2.0 * is.l / h);
            }
        }
        self.solver.save_into(&mut self.static_snap);
        self.snap_h = h;
        Ok(())
    }

    /// Advances the solution by `h`, recursively halving on failure.
    fn step_adaptive(
        &mut self,
        x: &mut Vec<f64>,
        t: f64,
        h: f64,
        opts: TranOptions,
        depth: usize,
    ) -> Result<(), SpiceError> {
        let saved_x = x.clone();
        let saved_caps: Vec<(f64, f64)> = self.caps.iter().map(|c| (c.v_prev, c.i_prev)).collect();
        let saved_inds: Vec<(f64, f64)> = self.inds.iter().map(|l| (l.v_prev, l.i_prev)).collect();

        match self.step_once(x, t + h, h, opts) {
            Ok(()) => Ok(()),
            Err(e) => {
                if depth >= opts.max_halvings {
                    ape_probe::counter("spice.tran.step_failures", 1);
                    return Err(e);
                }
                ape_probe::counter("spice.tran.halvings", 1);
                // Restore and take two half steps.
                *x = saved_x;
                for (c, (v, i)) in self.caps.iter_mut().zip(&saved_caps) {
                    c.v_prev = *v;
                    c.i_prev = *i;
                }
                for (l, (v, i)) in self.inds.iter_mut().zip(&saved_inds) {
                    l.v_prev = *v;
                    l.i_prev = *i;
                }
                let h2 = h / 2.0;
                self.step_adaptive(x, t, h2, opts, depth + 1)?;
                self.step_adaptive(x, t + h2, h2, opts, depth + 1)
            }
        }
    }

    /// One trapezoidal step to absolute time `t_new` with step `h`.
    fn step_once(
        &mut self,
        x: &mut [f64],
        t_new: f64,
        h: f64,
        opts: TranOptions,
    ) -> Result<(), SpiceError> {
        let n = self.u.dim();
        ape_probe::counter("spice.tran.steps", 1);
        if h != self.snap_h {
            self.rebuild_static(h)?;
        }
        // Per-step right-hand-side base: sources at t_new plus companion
        // history currents — constant across this step's Newton iterations.
        // i_new = geq·v_new − (geq·v_prev + i_prev) for capacitors;
        // inductor branch rows read v − (2L/h)·i = −v_prev − (2L/h)·i_prev.
        self.rhs_base.iter_mut().for_each(|v| *v = 0.0);
        rhs_sources(
            self.circuit,
            self.u,
            &mut self.rhs_base,
            SourceValue::AtTime(t_new),
        );
        for cs in &self.caps {
            let geq = 2.0 * cs.c / h;
            let ieq = -(geq * cs.v_prev + cs.i_prev);
            if let Some(ra) = self.u.node_row(cs.a) {
                self.rhs_base[ra] -= ieq;
            }
            if let Some(rb) = self.u.node_row(cs.b) {
                self.rhs_base[rb] += ieq;
            }
        }
        for is in &self.inds {
            if let Some(k) = is.row {
                let zl = 2.0 * is.l / h;
                self.rhs_base[k] += -is.v_prev - zl * is.i_prev;
            }
        }
        let mut converged = false;
        for _ in 0..opts.max_newton {
            ape_probe::counter("spice.tran.nr_iters", 1);
            self.solver.restore(&self.static_snap);
            self.rhs.copy_from_slice(&self.rhs_base);
            stamp_devices(
                self.circuit,
                self.tech,
                self.u,
                x,
                &mut self.solver,
                &mut self.rhs,
                &mut self.scratch,
            )?;
            self.solver
                .solve(&mut self.rhs)
                .ok_or(SpiceError::SingularMatrix { analysis: "tran" })?;
            let sol = &self.rhs;
            let mut worst = 0.0f64;
            for r in 0..n {
                let delta = sol[r] - x[r];
                let lim = if r < self.u.n_nodes {
                    0.6
                } else {
                    f64::INFINITY
                };
                x[r] += delta.clamp(-lim, lim);
                let scale = 1e-6 + 1e-6 * sol[r].abs();
                worst = worst.max(delta.abs() / scale);
            }
            if worst < 1.0 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(SpiceError::NoConvergence {
                analysis: "tran",
                detail: format!("time {t_new:.3e} step {h:.3e}"),
            });
        }
        // Update companion states with converged values.
        for cs in self.caps.iter_mut() {
            let v_new = self.u.voltage(x, cs.a) - self.u.voltage(x, cs.b);
            let geq = 2.0 * cs.c / h;
            let i_new = geq * (v_new - cs.v_prev) - cs.i_prev;
            cs.v_prev = v_new;
            cs.i_prev = i_new;
        }
        for is in self.inds.iter_mut() {
            let i_new = is.row.map(|r| x[r]).unwrap_or(0.0);
            let zl = 2.0 * is.l / h;
            let v_new = zl * (i_new - is.i_prev) - is.v_prev;
            is.v_prev = v_new;
            is.i_prev = i_new;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use ape_netlist::{Circuit, SourceWaveform, Technology};

    /// Degenerate windows — zero/negative/non-finite steps, and a
    /// microscopic step under a huge stop time — are rejected up front
    /// instead of spinning the stepping loop (quasi-)forever.
    #[test]
    fn rejects_degenerate_windows() {
        let tech = Technology::default_1p2um();
        let mut c = Circuit::new("rc");
        let i = c.node("in");
        c.add_vsource("V1", i, Circuit::GROUND, 1.0, 0.0, SourceWaveform::Dc)
            .unwrap();
        c.add_resistor("R1", i, Circuit::GROUND, 1e3).unwrap();
        let op = dc_operating_point(&c, &tech).unwrap();
        for (tstep, tstop) in [
            (0.0, 1e-3),
            (-1e-6, 1e-3),
            (f64::NAN, 1e-3),
            (1e-6, f64::INFINITY),
            (1e-300, 1e300), // 10^600 steps
        ] {
            let r = transient(&c, &tech, &op, TranOptions::new(tstep, tstop));
            assert!(
                matches!(r, Err(SpiceError::BadCircuit(_))),
                "tstep={tstep} tstop={tstop} gave {r:?}"
            );
        }
    }

    #[test]
    fn rc_charging_curve() {
        let mut c = Circuit::new("rc");
        let i = c.node("in");
        let o = c.node("out");
        c.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        c.add_resistor("R1", i, o, 1e3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let tau = 1e-6;
        let tr = transient(&c, &tech, &op, TranOptions::new(tau / 100.0, 3.0 * tau)).unwrap();
        // v(τ) ≈ 1 - 1/e.
        let idx = tr
            .times
            .iter()
            .position(|&t| (t - tau).abs() < tau / 150.0)
            .unwrap();
        let v_tau = tr.voltage(idx, o);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v_tau - expect).abs() < 0.01, "v(tau) = {v_tau}");
        // Fully settled by 3τ within 6 %.
        let v_end = tr.voltage(tr.len() - 1, o);
        assert!(v_end > 0.94, "v(3tau) = {v_end}");
    }

    #[test]
    fn sin_source_passes_through() {
        let mut c = Circuit::new("sin");
        let i = c.node("in");
        c.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e3,
                delay: 0.0,
            },
        )
        .unwrap();
        c.add_resistor("R1", i, Circuit::GROUND, 1e3).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let tr = transient(&c, &tech, &op, TranOptions::new(1e-5, 1e-3)).unwrap();
        // Peak near t = 0.25 ms.
        let peak = tr
            .waveform(i)
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::MIN, f64::max);
        assert!((peak - 1.0).abs() < 0.01, "peak {peak}");
    }

    #[test]
    fn lc_oscillation_period() {
        // Series RLC ringing: check the oscillation period ≈ 2π√(LC).
        let mut c = Circuit::new("rlc");
        let i = c.node("in");
        let m = c.node("mid");
        let o = c.node("out");
        c.add_vsource(
            "V1",
            i,
            Circuit::GROUND,
            0.0,
            0.0,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-9,
                fall: 1e-9,
                width: 1.0,
                period: f64::INFINITY,
            },
        )
        .unwrap();
        c.add_resistor("R1", i, m, 10.0).unwrap();
        c.add_inductor("L1", m, o, 1e-3).unwrap();
        c.add_capacitor("C1", o, Circuit::GROUND, 1e-9).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let t0 = 2.0 * std::f64::consts::PI * (1e-3f64 * 1e-9).sqrt(); // ≈6.28 µs
        let tr = transient(&c, &tech, &op, TranOptions::new(t0 / 200.0, 3.0 * t0)).unwrap();
        let wave = tr.waveform(o);
        // Find the first two maxima spacing.
        let mut peaks = Vec::new();
        for w in wave.windows(3) {
            if w[1].1 > w[0].1 && w[1].1 > w[2].1 && w[1].1 > 1.05 {
                peaks.push(w[1].0);
            }
        }
        assert!(peaks.len() >= 2, "found peaks {peaks:?}");
        let period = peaks[1] - peaks[0];
        assert!(
            (period - t0).abs() / t0 < 0.05,
            "period {period}, expect {t0}"
        );
    }

    #[test]
    fn transient_respects_initial_condition() {
        // A divider at DC stays put when nothing changes.
        let mut c = Circuit::new("static");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vdc("V1", a, Circuit::GROUND, 2.0).unwrap();
        c.add_resistor("R1", a, b, 1e3).unwrap();
        c.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        let tech = Technology::default_1p2um();
        let op = dc_operating_point(&c, &tech).unwrap();
        let tr = transient(&c, &tech, &op, TranOptions::new(1e-9, 1e-7)).unwrap();
        for k in 0..tr.len() {
            assert!((tr.voltage(k, b) - 1.0).abs() < 1e-4);
        }
    }
}
